#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the micro_kernels google-benchmark binary with JSON output and
compares per-benchmark CPU time against the committed baseline
(BENCH_kernels.json). Fails (exit 1) if any benchmark present in both
runs is more than --tolerance percent slower than the baseline.

Being faster never fails; benchmarks that exist on only one side are
reported but do not fail the gate (renames and new benches land with a
baseline refresh, see --update-baseline).

The baseline is machine-specific and shared runners drift, so the
comparison removes common-mode noise before gating: times are taken as
the *minimum* over --repetitions runs (minimum is the stable statistic
for timing), and each benchmark's slowdown is divided by the geometric
mean slowdown of the whole suite. A machine that is uniformly 40%
slower today passes; one kernel regressing 25% relative to its peers
fails. Pass --no-normalize on dedicated, pinned hardware to gate on
raw times instead. The common-mode factor itself is printed so a
suite-wide regression (e.g. a dropped -O2) is still visible.

Transient load spikes are filtered by retrying: any benchmark over
tolerance is re-measured (up to --retries times, flagged benchmarks
only) and its time is the minimum across attempts. A spike does not
reproduce; a real regression does.

Besides the micro-kernel comparison, the gate runs the transfer-overlap
fixture (`pipeline_throughput --xfer`) and requires the double-buffered
pipeline to beat serialized staging by --xfer-min-speedup on modeled
mapping time (0 disables). The fixture prints modeled seconds, so the
ratio is deterministic — no normalization or retries needed.

The sharding fixture (`shard_bench`) has its own gate: sharded mapping
must stay identical to monolithic (the fixture's exit code) and the
parallel shard build must beat the serial one by
--shard-min-build-speedup (0 disables; the CI shard tier passes 1.5).
Build speedup is real wall clock, so the floor only binds on machines
with >= 2 CPUs — on a single-core runner it degrades to the identity
check and says so. --only-shard runs just this gate (the CI shard tier
uses it so the micro-kernel suite is not re-run).

The mixed-length fixture (`mixed_bench`) gate: the bucketed pipeline
must emit byte-identical SAM to the fixed-length path on uniform input
(the fixture's exit code covers identity) and must reach
--mixed-min-ratio of the fixed path's throughput (0 disables; the CI
mixed tier passes 0.9). Both walls come from the same process on the
same machine, so the ratio needs no normalization. --only-mixed runs
just this gate.

Usage:
  ci/check_bench.py [--binary build/bench/micro_kernels]
                    [--baseline BENCH_kernels.json] [--tolerance 25]
                    [--min-time 0.01] [--repetitions 3] [--filter RE]
                    [--xfer-binary build/bench/pipeline_throughput]
                    [--xfer-min-speedup 1.15] [--update-baseline]
                    [--shard-binary build/bench/shard_bench]
                    [--shard-min-build-speedup 1.5] [--only-shard]
                    [--mixed-binary build/bench/mixed_bench]
                    [--mixed-min-ratio 0.9] [--only-mixed]
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys

# Cross-benchmark acceptance ratios, gated on the same (min-over-
# repetitions) times as the regression check. Unlike the baseline
# comparison these are absolute criteria — both sides run in the same
# process on the same machine, so no normalization is needed. Each
# entry: the scalar benchmark, its lane-batched counterpart, the items
# the batched bench processes per iteration, and the minimum required
# per-item speedup.
RATIO_GATES = [
    ("BM_Verify_MyersBanded", "BM_Verify_MyersBandedBatched", 8.0, 2.0),
]


def run_benchmarks(binary, min_time, repetitions, bench_filter):
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def cpu_times(report):
    """name -> minimum cpu_time in ns over all iteration entries."""
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t = bench["cpu_time"] * scale
        name = bench["name"]
        times[name] = min(times.get(name, t), t)
    return times


def regressed(baseline, current, tolerance, normalize):
    """Returns ({name: delta_pct}, common_mode) for shared benchmarks."""
    ratios = {
        name: current[name] / baseline[name]
        for name in set(baseline) & set(current)
        if baseline[name] > 0
    }
    common_mode = 1.0
    if ratios and normalize:
        log_sum = sum(math.log(r) for r in ratios.values())
        common_mode = math.exp(log_sum / len(ratios))
    deltas = {
        name: (r / common_mode - 1.0) * 100.0 for name, r in ratios.items()
    }
    over = {n: d for n, d in deltas.items() if d > tolerance}
    return over, deltas, common_mode


def run_xfer_gate(binary, min_speedup):
    """Runs the transfer-overlap fixture; returns True when it passes.

    The fixture itself byte-compares the SAM outputs (its exit code
    covers correctness); this gate additionally requires the printed
    modeled-time speedup to clear the floor.
    """
    if not os.path.exists(binary):
        print(f"xfer gate: FAIL — {binary} not built")
        return False
    proc = subprocess.run([binary, "--xfer"], capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"xfer gate: FAIL — {binary} --xfer exited {proc.returncode}")
        return False
    match = re.search(r"^xfer_speedup:\s*([0-9.]+)", proc.stdout, re.M)
    if not match:
        print("xfer gate: FAIL — no xfer_speedup line in output")
        return False
    speedup = float(match.group(1))
    ok = speedup >= min_speedup
    print(
        f"xfer gate: double-buffered staging {speedup:.3f}x over "
        f"serialized (need >= {min_speedup:.2f}x)"
        f"{'' if ok else '  << BELOW CRITERION'}"
    )
    return ok


def run_shard_gate(binary, min_speedup, out_path):
    """Runs the sharding fixture; returns True when it passes.

    The fixture itself compares every sharded mapping against the
    monolithic mapper (its exit code covers identity); this gate
    additionally requires the printed parallel-build speedup to clear
    the floor. The speedup is real wall clock — on a single-core
    machine parallel shard builds cannot beat serial ones, so the
    floor is only enforced when the machine has >= 2 CPUs.
    """
    if not os.path.exists(binary):
        print(f"shard gate: FAIL — {binary} not built")
        return False
    proc = subprocess.run(
        [binary, "--out", out_path], capture_output=True, text=True
    )
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"shard gate: FAIL — {binary} exited {proc.returncode}")
        return False
    match = re.search(
        r"^shard_build_speedup:\s*([0-9.]+)", proc.stdout, re.M
    )
    if not match:
        print("shard gate: FAIL — no shard_build_speedup line in output")
        return False
    speedup = float(match.group(1))
    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            f"shard gate: single-core machine — parallel build speedup "
            f"{speedup:.3f}x not gated (sharded/monolithic identity "
            f"checks passed)"
        )
        return True
    ok = speedup >= min_speedup
    print(
        f"shard gate: parallel shard build {speedup:.3f}x over serial "
        f"(need >= {min_speedup:.2f}x on {cores} cpus)"
        f"{'' if ok else '  << BELOW CRITERION'}"
    )
    return ok


def run_mixed_gate(binary, min_ratio, out_path):
    """Runs the mixed-length fixture; returns True when it passes.

    The fixture itself byte-compares bucketed vs fixed-path SAM on
    uniform input (its exit code covers identity); this gate
    additionally requires the printed throughput ratio to clear the
    floor. Both walls are measured in the same process run, so the
    ratio is gated raw.
    """
    if not os.path.exists(binary):
        print(f"mixed gate: FAIL — {binary} not built")
        return False
    proc = subprocess.run(
        [binary, "--out", out_path], capture_output=True, text=True
    )
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"mixed gate: FAIL — {binary} exited {proc.returncode}")
        return False
    match = re.search(
        r"^mixed_uniform_ratio:\s*([0-9.]+)", proc.stdout, re.M
    )
    if not match:
        print("mixed gate: FAIL — no mixed_uniform_ratio line in output")
        return False
    ratio = float(match.group(1))
    ok = ratio >= min_ratio
    print(
        f"mixed gate: bucketed pipeline at {ratio:.3f}x of the fixed "
        f"path on uniform input (need >= {min_ratio:.2f}x)"
        f"{'' if ok else '  << BELOW CRITERION'}"
    )
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/bench/micro_kernels")
    parser.add_argument("--baseline", default="BENCH_kernels.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPUTE_BENCH_TOLERANCE", 25.0)),
        help="max allowed slowdown, percent (default 25, or "
        "$REPUTE_BENCH_TOLERANCE)",
    )
    parser.add_argument("--min-time", type=float, default=0.01)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--filter", default="")
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="gate on raw times instead of dividing out the "
        "suite-wide (common-mode) slowdown",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-measure over-tolerance benchmarks this many times "
        "before declaring a regression (default 2)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the fresh run over --baseline instead of comparing",
    )
    parser.add_argument(
        "--xfer-binary",
        default="build/bench/pipeline_throughput",
        help="transfer-overlap fixture binary (run with --xfer)",
    )
    parser.add_argument(
        "--xfer-min-speedup",
        type=float,
        default=1.15,
        help="required double-buffered vs serialized staging speedup "
        "on the --xfer fixture (0 disables the gate)",
    )
    parser.add_argument(
        "--shard-binary",
        default="build/bench/shard_bench",
        help="reference-sharding fixture binary",
    )
    parser.add_argument(
        "--shard-min-build-speedup",
        type=float,
        default=0.0,
        help="required parallel-vs-serial shard build speedup on the "
        "sharding fixture (0 disables the gate; enforced only on "
        "machines with >= 2 CPUs)",
    )
    parser.add_argument(
        "--shard-out",
        default="BENCH_shard.json",
        help="where the sharding fixture writes its JSON report",
    )
    parser.add_argument(
        "--only-shard",
        action="store_true",
        help="run only the sharding gate (skip the micro-kernel "
        "comparison and the transfer-overlap gate)",
    )
    parser.add_argument(
        "--mixed-binary",
        default="build/bench/mixed_bench",
        help="mixed-length batching fixture binary",
    )
    parser.add_argument(
        "--mixed-min-ratio",
        type=float,
        default=0.0,
        help="required bucketed-vs-fixed throughput ratio on uniform "
        "input (0 disables the gate; the CI mixed tier passes 0.9)",
    )
    parser.add_argument(
        "--mixed-out",
        default="BENCH_mixed.json",
        help="where the mixed-length fixture writes its JSON report",
    )
    parser.add_argument(
        "--only-mixed",
        action="store_true",
        help="run only the mixed-length gate (skip the micro-kernel "
        "comparison and the other fixture gates)",
    )
    args = parser.parse_args()

    if args.only_shard:
        ok = run_shard_gate(
            args.shard_binary,
            args.shard_min_build_speedup,
            args.shard_out,
        )
        if not ok:
            print("\nFAIL: sharding gate below criterion")
            return 1
        print("\nOK: sharding gate passed")
        return 0

    if args.only_mixed:
        ok = run_mixed_gate(
            args.mixed_binary, args.mixed_min_ratio, args.mixed_out
        )
        if not ok:
            print("\nFAIL: mixed-length gate below criterion")
            return 1
        print("\nOK: mixed-length gate passed")
        return 0

    report = run_benchmarks(
        args.binary, args.min_time, args.repetitions, args.filter
    )
    if args.update_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    with open(args.baseline) as fh:
        baseline = cpu_times(json.load(fh))
    current = cpu_times(report)

    over, deltas, common_mode = regressed(
        baseline, current, args.tolerance, not args.no_normalize
    )
    for attempt in range(args.retries):
        if not over:
            break
        names = "|".join(re.escape(n) for n in sorted(over))
        print(
            f"retry {attempt + 1}: re-measuring {len(over)} "
            f"over-tolerance benchmark(s)"
        )
        retry = cpu_times(
            run_benchmarks(
                args.binary,
                args.min_time,
                args.repetitions,
                f"^({names})$",
            )
        )
        for name, t in retry.items():
            current[name] = min(current.get(name, t), t)
        over, deltas, common_mode = regressed(
            baseline, current, args.tolerance, not args.no_normalize
        )

    shared = sorted(set(baseline) & set(current))
    print(
        f"common-mode factor {common_mode:.3f}x over {len(deltas)} "
        f"benchmarks ({'divided out' if not args.no_normalize else 'raw gate'})"
    )
    regressions = sorted(over.items())
    print(f"{'benchmark':<40} {'base':>10} {'now':>10} {'delta':>8}")
    for name in shared:
        base, now = baseline[name], current[name]
        delta = deltas.get(name, 0.0)
        flag = "  << REGRESSION" if name in over else ""
        print(
            f"{name:<40} {base:>9.0f}n {now:>9.0f}n {delta:>+7.1f}%{flag}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<40} (in baseline only — not compared)")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<40} (new — no baseline, not compared)")

    ratio_failures = []
    for scalar, batched, lanes, min_speedup in RATIO_GATES:
        if scalar not in current or batched not in current:
            continue
        speedup = current[scalar] / (current[batched] / lanes)
        ok = speedup >= min_speedup
        print(
            f"ratio gate: {batched} vs {scalar}: {speedup:.2f}x "
            f"per item (need >= {min_speedup:.1f}x)"
            f"{'' if ok else '  << BELOW CRITERION'}"
        )
        if not ok:
            ratio_failures.append(batched)

    xfer_ok = True
    if args.xfer_min_speedup > 0:
        xfer_ok = run_xfer_gate(args.xfer_binary, args.xfer_min_speedup)

    shard_ok = True
    if args.shard_min_build_speedup > 0:
        shard_ok = run_shard_gate(
            args.shard_binary,
            args.shard_min_build_speedup,
            args.shard_out,
        )

    mixed_ok = True
    if args.mixed_min_ratio > 0:
        mixed_ok = run_mixed_gate(
            args.mixed_binary, args.mixed_min_ratio, args.mixed_out
        )

    if (
        regressions
        or ratio_failures
        or not xfer_ok
        or not shard_ok
        or not mixed_ok
    ):
        if regressions:
            print(
                f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
                f"than {args.tolerance:.0f}% vs {args.baseline}"
            )
        if ratio_failures:
            print(
                f"\nFAIL: {len(ratio_failures)} benchmark(s) below their "
                f"cross-benchmark speedup criterion"
            )
        if not xfer_ok:
            print("\nFAIL: transfer-overlap gate below criterion")
        if not shard_ok:
            print("\nFAIL: sharding gate below criterion")
        if not mixed_ok:
            print("\nFAIL: mixed-length gate below criterion")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.tolerance:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
