#!/usr/bin/env python3
"""Deterministic fixtures for the CI `mixed` tier.

Writes, into the directory given as argv[1] (created if needed):

  ref.fa            two-contig reference (30 kb + 20 kb)
  mixed.fq          three read-length classes (80/100/131 bp, 100 reads
                    each) interleaved record by record; read i is named
                    mix.<i>, so the name encodes the global input
                    ordinal
  mixed_len*.fq     the same reads split by length class, input order
                    preserved within each class — the per-length-split
                    oracle the bucketed pipeline must byte-match
  mixed.fq.gz       gzip twin of mixed.fq (mtime pinned to 0, so the
                    bytes are reproducible)
  r1.fq / r2.fq     150 proper FR mate pairs whose two sides draw their
                    lengths independently from the three classes
  r1.fq.gz, r2.fq.gz  gzip twins of the mate files

Everything derives from fixed seeds, and the whole set is stamped with
this script's own hash (.stamp): a rerun whose stamp matches is a
no-op, so CI can cache the directory keyed on the script hash and skip
generation entirely. Honors $REPUTE_FIXTURE_DIR as the default output
directory when no argument is given.
"""

import gzip
import hashlib
import os
import random
import sys

LENGTHS = [80, 100, 131]
READS_PER_CLASS = 100
N_PAIRS = 150
COMP = str.maketrans("ACGT", "TGCA")


def script_hash():
    with open(os.path.abspath(__file__), "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def write_fasta(path, seqs):
    with open(path, "w") as fh:
        for name, seq in seqs.items():
            fh.write(">%s\n" % name)
            for i in range(0, len(seq), 70):
                fh.write(seq[i : i + 70] + "\n")


def mutate(rng, read, max_subs=2):
    read = list(read)
    for _ in range(rng.randrange(max_subs + 1)):
        p = rng.randrange(len(read))
        read[p] = rng.choice("ACGT")
    return "".join(read)


def fastq_record(name, seq):
    return "@%s\n%s\n+\n%s\n" % (name, seq, "I" * len(seq))


def gzip_twin(path):
    with open(path, "rb") as fh:
        raw = fh.read()
    # mtime=0 keeps the member header — and so the cached fixture —
    # byte-stable across regenerations.
    with open(path + ".gz", "wb") as out:
        with gzip.GzipFile(
            filename="", mode="wb", fileobj=out, mtime=0
        ) as gz:
            gz.write(raw)


def main():
    out_dir = (
        sys.argv[1]
        if len(sys.argv) > 1
        else os.environ.get("REPUTE_FIXTURE_DIR", "")
    )
    if not out_dir:
        print(
            "usage: gen_mixed_fixtures.py OUTDIR "
            "(or set $REPUTE_FIXTURE_DIR)",
            file=sys.stderr,
        )
        return 2
    os.makedirs(out_dir, exist_ok=True)
    stamp_path = os.path.join(out_dir, ".stamp")
    stamp = script_hash()
    if os.path.exists(stamp_path):
        with open(stamp_path) as fh:
            if fh.read().strip() == stamp:
                print("fixtures up to date in %s (stamp match)" % out_dir)
                return 0

    rng = random.Random(20260809)
    seqs = {
        "chrA": "".join(rng.choice("ACGT") for _ in range(30000)),
        "chrB": "".join(rng.choice("ACGT") for _ in range(20000)),
    }
    write_fasta(os.path.join(out_dir, "ref.fa"), seqs)

    def sample(length):
        seq = seqs[rng.choice(list(seqs))]
        start = rng.randrange(len(seq) - length)
        return mutate(rng, seq[start : start + length])

    # Interleaved mixed-length single-end reads + the per-class splits.
    splits = {n: [] for n in LENGTHS}
    mixed = []
    ordinal = 0
    for _ in range(READS_PER_CLASS):
        for length in LENGTHS:
            rec = fastq_record("mix.%d" % ordinal, sample(length))
            mixed.append(rec)
            splits[length].append(rec)
            ordinal += 1
    mixed_path = os.path.join(out_dir, "mixed.fq")
    with open(mixed_path, "w") as fh:
        fh.write("".join(mixed))
    for length, records in splits.items():
        with open(
            os.path.join(out_dir, "mixed_len%d.fq" % length), "w"
        ) as fh:
            fh.write("".join(records))
    gzip_twin(mixed_path)

    # Proper FR pairs; each side draws its length independently, so the
    # paired reader sees several (len1, len2) tuple classes.
    r1_path = os.path.join(out_dir, "r1.fq")
    r2_path = os.path.join(out_dir, "r2.fq")
    with open(r1_path, "w") as f1, open(r2_path, "w") as f2:
        for i in range(N_PAIRS):
            len1, len2 = rng.choice(LENGTHS), rng.choice(LENGTHS)
            seq = seqs[rng.choice(list(seqs))]
            insert = rng.randrange(250, 450)
            start = rng.randrange(len(seq) - insert)
            m1 = mutate(rng, seq[start : start + len1])
            frag = seq[start + insert - len2 : start + insert]
            m2 = mutate(rng, frag.translate(COMP)[::-1])
            f1.write(fastq_record("p%d/1" % i, m1))
            f2.write(fastq_record("p%d/2" % i, m2))
    gzip_twin(r1_path)
    gzip_twin(r2_path)

    with open(stamp_path, "w") as fh:
        fh.write(stamp + "\n")
    print("fixtures written to %s" % out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
