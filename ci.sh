#!/usr/bin/env bash
# CI entry point. Tiers:
#   tier1         configure + build + full ctest (the gate every change
#                 must pass) + micro-benchmark smoke
#   bench         benchmark regression gate: micro_kernels vs
#                 BENCH_kernels.json via ci/check_bench.py (>25% fails)
#                 + the transfer-overlap gate (pipeline_throughput
#                 --xfer: double-buffered staging must beat serialized
#                 by >=1.15x on modeled time)
#   tsan          ThreadSanitizer build of the queue/scheduler-heavy
#                 tests plus the streaming pipeline and the
#                 double-buffered staging equivalence matrix
#   asan          AddressSanitizer build of the index/filter hot paths
#                 (rank-block and scratch-reuse pointer arithmetic), the
#                 verification funnel and the SIMD differential harness
#   ubsan         UndefinedBehaviorSanitizer build of the alignment
#                 kernels, funnel and SIMD differential harness
#                 (shift/overflow-dense bit-vector code)
#   simdoff       -DREPUTE_SIMD=OFF build: the portable scalar-fallback
#                 lane engine must pass the same differential harness
#                 and funnel equivalence as the vectorized build
#   serve         persistent-service smoke: `repute index build` ->
#                 `repute map --index` byte-compare, daemon round trip
#                 over the Unix socket + SIGTERM drain, and the .rix
#                 load-speedup gate (serve_bench --min-speedup 10,
#                 recorded in BENCH_serve.json)
#   shard         reference-sharding smoke: `repute index build
#                 --shards 4 --jobs 4` -> `repute map --index x.rixm`
#                 byte-compare against the monolithic index (single-end,
#                 paired, static and dynamic schedules), the
#                 parallel-build speedup gate (check_bench --only-shard,
#                 >=1.5x at --jobs 4 on multi-core machines, recorded in
#                 BENCH_shard.json) and the shard-merge tests under TSan
#   mixed         mixed-length + gzip smoke on generated real-shape
#                 fixtures (ci/gen_mixed_fixtures.py, cacheable keyed on
#                 the generator's own hash): CLI mapping of interleaved
#                 80/100/131 bp reads byte-compared against the
#                 per-length-split oracle, .gz input byte-identical to
#                 its plain twin (single-end, paired with one gz mate,
#                 and through the daemon), the bucketed-throughput gate
#                 (check_bench --only-mixed, >=0.9x of the fixed path on
#                 uniform input, recorded in BENCH_mixed.json) and
#                 test_mixed under TSan
#   zliboff       -DREPUTE_ZLIB=OFF build: plain input keeps working and
#                 gzip input is rejected with a clear error instead of
#                 being misparsed
#   format        clang-format --dry-run --Werror over the tree
#
# Usage: ./ci.sh [--quick] [tier...] [jobs]
#   ./ci.sh                 run everything (jobs = nproc)
#   ./ci.sh --quick         run everything, trimmed bench smoke
#   ./ci.sh tier1 8         one tier, 8 jobs
#   ./ci.sh --format-check  alias for the format tier
# GitHub Actions runs the tiers as parallel matrix jobs (see
# .github/workflows/ci.yml); this script is the single source of truth
# for what each job does.

set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
TIERS=()
JOBS=""
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --format-check) TIERS+=(format) ;;
        tier1|bench|tsan|asan|ubsan|simdoff|serve|shard|mixed|zliboff|format) TIERS+=("$arg") ;;
        ''|*[!0-9]*) echo "unknown argument: $arg" >&2; exit 2 ;;
        *) JOBS="$arg" ;;
    esac
done
[[ ${#TIERS[@]} -eq 0 ]] && TIERS=(tier1 bench tsan asan ubsan simdoff serve shard mixed zliboff format)
JOBS="${JOBS:-$(nproc)}"

# ccache transparently accelerates the CI matrix (each job re-runs the
# configure); harmless when absent.
LAUNCHER=()
if command -v ccache >/dev/null 2>&1; then
    LAUNCHER=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

has_tier() {
    local tier
    for tier in "${TIERS[@]}"; do
        [[ "$tier" == "$1" ]] && return 0
    done
    return 1
}

if has_tier tier1; then
    echo "== tier 1: configure + build + ctest =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"

    echo "== micro-benchmark smoke: kernels and verification funnel =="
    # Minimal min_time: this only proves the benchmarks still run; the
    # bench tier does the regression comparison. (The installed
    # google-benchmark wants a plain double here, not a '0.01s' suffix.)
    if [[ "$QUICK" == "1" ]]; then
        MIN_TIME=0.001
        REPS=1
    else
        MIN_TIME=0.01
        REPS=3
    fi
    ./build/bench/micro_kernels --benchmark_min_time="$MIN_TIME" \
        --benchmark_repetitions="$REPS" \
        --benchmark_filter='BM_Fm' >/dev/null
    ./build/bench/micro_kernels --benchmark_min_time="$MIN_TIME" \
        --benchmark_repetitions="$REPS" \
        --benchmark_filter='BM_Verify_Myers|BM_Verify_MyersBanded|BM_Prefilter|BM_VerifyFunnel' \
        >/dev/null
fi

if has_tier bench; then
    echo "== bench gate: micro_kernels vs BENCH_kernels.json + xfer overlap =="
    if [[ ! -x build/bench/micro_kernels || ! -x build/bench/pipeline_throughput ]]; then
        cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
        cmake --build build -j "$JOBS" --target micro_kernels pipeline_throughput
    fi
    # Even quick keeps >=2 repetitions: the gate's min-over-reps is what
    # absorbs scheduler noise on shared runners.
    if [[ "$QUICK" == "1" ]]; then
        python3 ci/check_bench.py --min-time 0.005 --repetitions 2
    else
        python3 ci/check_bench.py
    fi
fi

if has_tier tsan; then
    echo "== tier 2: ThreadSanitizer (queues, scheduler, pipeline) =="
    cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER[@]}"
    cmake --build build-tsan -j "$JOBS" \
          --target test_ocl test_scheduler test_determinism test_pipeline \
          test_xfer
    ./build-tsan/tests/test_ocl
    ./build-tsan/tests/test_scheduler
    ./build-tsan/tests/test_determinism
    # The streaming pipeline is three thread stages around two bounded
    # queues — exactly the code TSan exists for.
    ./build-tsan/tests/test_pipeline
    # Double-buffered staging: per-direction DMA clocks and event
    # wait-lists crossing the scheduler's worker threads.
    ./build-tsan/tests/test_xfer
fi

if has_tier asan; then
    echo "== tier 2: AddressSanitizer (index layout, filtration, funnel) =="
    cmake -B build-asan -S . -DREPUTE_SANITIZE=address \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER[@]}"
    cmake --build build-asan -j "$JOBS" \
          --target test_index test_filter test_funnel test_myers_simd \
          test_rix
    ./build-asan/tests/test_index
    ./build-asan/tests/test_filter
    # .rix round trip + corrupt-container rejection under ASan: the
    # mmap'd spans and the bounds-checked name-table cursor are pointer
    # arithmetic over foreign bytes.
    ./build-asan/tests/test_rix
    # Funnel equivalence (layer toggles byte-identical) under ASan: the
    # prefilter's packed-word sweep and the banded scan's segment
    # pointers are exactly the code most likely to read out of bounds.
    ./build-asan/tests/test_funnel
    # Lane-batched Myers differential harness: the column-major staging
    # transpose and per-lane arena pointers under ASan.
    ./build-asan/tests/test_myers_simd
fi

if has_tier ubsan; then
    echo "== tier 2: UndefinedBehaviorSanitizer (alignment kernels, funnel) =="
    cmake -B build-ubsan -S . -DREPUTE_SANITIZE=undefined \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER[@]}"
    cmake --build build-ubsan -j "$JOBS" \
          --target test_align test_funnel test_myers_simd
    # Myers bit-vector and banded DP are shift- and overflow-dense; UBSan
    # runs them standalone (the ASan tier already pairs ASan+UBSan, this
    # catches UB that only manifests without ASan's memory layout).
    ./build-ubsan/tests/test_align
    ./build-ubsan/tests/test_funnel
    # The lane engine's vector shifts/carries under UBSan.
    ./build-ubsan/tests/test_myers_simd
fi

if has_tier simdoff; then
    echo "== scalar fallback: -DREPUTE_SIMD=OFF differential + funnel =="
    cmake -B build-simdoff -S . -DREPUTE_SIMD=OFF \
          -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
    cmake --build build-simdoff -j "$JOBS" \
          --target test_align test_funnel test_myers_simd
    ./build-simdoff/tests/test_align
    ./build-simdoff/tests/test_funnel
    # The portable Lane8 engine must be byte-identical to the scalar
    # scan too — same harness, no vector ISA.
    ./build-simdoff/tests/test_myers_simd
fi

if has_tier serve; then
    echo "== serve smoke: index build -> map --index -> daemon round trip =="
    if [[ ! -x build/src/cli/repute || ! -x build/bench/serve_bench ]]; then
        cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
        cmake --build build -j "$JOBS" --target repute_cli serve_bench
    fi
    SMOKE="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $SMOKE now, not at exit
    trap "rm -rf '$SMOKE'" EXIT
    # Deterministic two-sequence FASTA + reads sampled from it (with a
    # sprinkle of substitutions so verification has work to do).
    python3 - "$SMOKE" <<'PY'
import random, sys
out = sys.argv[1]
rng = random.Random(20260808)
seqs = {"chrA": "".join(rng.choice("ACGT") for _ in range(24000)),
        "chrB": "".join(rng.choice("ACGT") for _ in range(16000))}
with open(out + "/ref.fa", "w") as f:
    for name, seq in seqs.items():
        f.write(">%s\n" % name)
        for i in range(0, len(seq), 70):
            f.write(seq[i:i + 70] + "\n")
with open(out + "/reads.fq", "w") as f:
    for i in range(400):
        name, seq = rng.choice(list(seqs.items()))
        start = rng.randrange(len(seq) - 100)
        read = list(seq[start:start + 100])
        for _ in range(rng.randrange(3)):
            p = rng.randrange(100)
            read[p] = rng.choice("ACGT")
        f.write("@r%d\n%s\n+\n%s\n" % (i, "".join(read), "I" * 100))
PY
    R=./build/src/cli/repute
    "$R" index build --ref "$SMOKE/ref.fa" --out "$SMOKE/ref.rix"
    "$R" map --ref "$SMOKE/ref.fa" --reads "$SMOKE/reads.fq" \
         --out "$SMOKE/direct.sam"
    "$R" map --index "$SMOKE/ref.rix" --reads "$SMOKE/reads.fq" \
         --out "$SMOKE/mapped.sam"
    cmp "$SMOKE/direct.sam" "$SMOKE/mapped.sam"
    echo "map --index output byte-identical to map --ref"

    "$R" serve --index "$SMOKE/ref.rix" --socket "$SMOKE/repute.sock" \
         >"$SMOKE/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -S "$SMOKE/repute.sock" ]] && break
        sleep 0.1
    done
    "$R" client --socket "$SMOKE/repute.sock" --reads "$SMOKE/reads.fq" \
         --out "$SMOKE/served.sam" --tenant ci
    cmp "$SMOKE/direct.sam" "$SMOKE/served.sam"
    echo "daemon round trip byte-identical"
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    grep -q "drained" "$SMOKE/serve.log"
    echo "SIGTERM drain clean"

    # The acceptance gate: a prebuilt container must mmap-load at least
    # 10x faster than in-process construction, byte-identically.
    if [[ "$QUICK" == "1" ]]; then
        ./build/bench/serve_bench --quick --repeats 3 --min-speedup 10 \
            --out "$SMOKE/BENCH_serve.json"
    else
        ./build/bench/serve_bench --min-speedup 10 \
            --out "$SMOKE/BENCH_serve.json"
    fi
fi

if has_tier shard; then
    echo "== shard smoke: sharded index vs monolithic byte-compare + build-speedup gate =="
    if [[ ! -x build/src/cli/repute || ! -x build/bench/shard_bench ]]; then
        cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
        cmake --build build -j "$JOBS" --target repute_cli shard_bench
    fi
    SHARD_TMP="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand now; also sweep the serve dir
    # when both tiers ran in this invocation (one trap per process).
    trap "rm -rf '$SHARD_TMP' '${SMOKE:-/nonexistent}'" EXIT
    # Five-contig FASTA (shard planning is contig-granular, 4 shards
    # need cut points), substitution-only single reads and proper
    # FR mate pairs sampled from it.
    python3 - "$SHARD_TMP" <<'PY'
import random, sys
out = sys.argv[1]
rng = random.Random(20260809)
comp = str.maketrans("ACGT", "TGCA")
names = ["chr%d" % i for i in range(5)]
seqs = {n: "".join(rng.choice("ACGT") for _ in range(9000 + 2500 * (i % 3)))
        for i, n in enumerate(names)}
with open(out + "/ref.fa", "w") as f:
    for name in names:
        f.write(">%s\n" % name)
        s = seqs[name]
        for i in range(0, len(s), 70):
            f.write(s[i:i + 70] + "\n")

def mutate(read):
    read = list(read)
    for _ in range(rng.randrange(3)):
        p = rng.randrange(len(read))
        read[p] = rng.choice("ACGT")
    return "".join(read)

with open(out + "/reads.fq", "w") as f:
    for i in range(300):
        seq = seqs[rng.choice(names)]
        start = rng.randrange(len(seq) - 100)
        f.write("@r%d\n%s\n+\n%s\n" % (i, mutate(seq[start:start + 100]), "I" * 100))
with open(out + "/r1.fq", "w") as f1, open(out + "/r2.fq", "w") as f2:
    for i in range(150):
        seq = seqs[rng.choice(names)]
        insert = rng.randrange(250, 450)
        start = rng.randrange(len(seq) - insert)
        m1 = mutate(seq[start:start + 100])
        frag = seq[start + insert - 100:start + insert]
        m2 = mutate(frag.translate(comp)[::-1])
        f1.write("@p%d/1\n%s\n+\n%s\n" % (i, m1, "I" * 100))
        f2.write("@p%d/2\n%s\n+\n%s\n" % (i, m2, "I" * 100))
PY
    R=./build/src/cli/repute
    "$R" index build --ref "$SHARD_TMP/ref.fa" --out "$SHARD_TMP/mono.rix"
    "$R" index build --ref "$SHARD_TMP/ref.fa" --out "$SHARD_TMP/ref.rixm" \
         --shards 4 --jobs 4
    # Single-end, static schedule.
    "$R" map --index "$SHARD_TMP/mono.rix" --reads "$SHARD_TMP/reads.fq" \
         --out "$SHARD_TMP/mono.sam"
    "$R" map --index "$SHARD_TMP/ref.rixm" --reads "$SHARD_TMP/reads.fq" \
         --out "$SHARD_TMP/shard.sam"
    cmp "$SHARD_TMP/mono.sam" "$SHARD_TMP/shard.sam"
    echo "sharded single-end SAM byte-identical (static)"
    # Single-end, dynamic work-stealing over a heterogeneous trio.
    "$R" map --index "$SHARD_TMP/mono.rix" --reads "$SHARD_TMP/reads.fq" \
         --devices i7-2600,gtx590-0,gtx590-1 --schedule dynamic \
         --out "$SHARD_TMP/mono_dyn.sam"
    "$R" map --index "$SHARD_TMP/ref.rixm" --reads "$SHARD_TMP/reads.fq" \
         --devices i7-2600,gtx590-0,gtx590-1 --schedule dynamic \
         --out "$SHARD_TMP/shard_dyn.sam"
    cmp "$SHARD_TMP/mono_dyn.sam" "$SHARD_TMP/shard_dyn.sam"
    echo "sharded single-end SAM byte-identical (dynamic trio)"
    # Paired-end with rescue.
    "$R" map --index "$SHARD_TMP/mono.rix" --reads "$SHARD_TMP/r1.fq" \
         --reads2 "$SHARD_TMP/r2.fq" --out "$SHARD_TMP/mono_pe.sam"
    "$R" map --index "$SHARD_TMP/ref.rixm" --reads "$SHARD_TMP/r1.fq" \
         --reads2 "$SHARD_TMP/r2.fq" --out "$SHARD_TMP/shard_pe.sam"
    cmp "$SHARD_TMP/mono_pe.sam" "$SHARD_TMP/shard_pe.sam"
    echo "sharded paired-end SAM byte-identical"
    # The daemon accepts the manifest too: all shards mmap'd resident.
    "$R" serve --index "$SHARD_TMP/ref.rixm" \
         --socket "$SHARD_TMP/repute.sock" \
         >"$SHARD_TMP/serve.log" 2>&1 &
    SHARD_SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -S "$SHARD_TMP/repute.sock" ]] && break
        sleep 0.1
    done
    "$R" client --socket "$SHARD_TMP/repute.sock" \
         --reads "$SHARD_TMP/reads.fq" --out "$SHARD_TMP/served.sam" \
         --tenant ci
    cmp "$SHARD_TMP/mono.sam" "$SHARD_TMP/served.sam"
    echo "daemon over .rixm manifest byte-identical"
    kill -TERM "$SHARD_SERVE_PID"
    wait "$SHARD_SERVE_PID"

    # The acceptance gate: sharded mapping identical to monolithic at
    # every shard count and the 4-way parallel build >=1.5x faster than
    # serial (wall clock — enforced on machines with >=2 CPUs).
    python3 ci/check_bench.py --only-shard --shard-min-build-speedup 1.5 \
        --shard-binary build/bench/shard_bench \
        --shard-out "$SHARD_TMP/BENCH_shard.json"

    # Shard merge and the parallel build under TSan: the per-device
    # scatter threads, the shard-build ThreadPool and the gather-side
    # merge are exactly the concurrency this tier exists for.
    cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER[@]}"
    cmake --build build-tsan -j "$JOBS" --target test_shard
    ./build-tsan/tests/test_shard
fi

if has_tier mixed; then
    echo "== mixed smoke: length-bucketed mapping vs per-length split + gzip twins =="
    if [[ ! -x build/src/cli/repute || ! -x build/bench/mixed_bench ]]; then
        cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
        cmake --build build -j "$JOBS" --target repute_cli mixed_bench
    fi
    MIXED_TMP="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand now; also sweep earlier tiers'
    # tmpdirs when they ran in this invocation (one trap per process).
    trap "rm -rf '$MIXED_TMP' '${SHARD_TMP:-/nonexistent}' '${SMOKE:-/nonexistent}'" EXIT
    # Fixture generation self-caches on the generator's hash, so CI can
    # restore $REPUTE_FIXTURE_DIR from a cache and skip this entirely.
    FIXDIR="${REPUTE_FIXTURE_DIR:-$MIXED_TMP/fixtures}"
    python3 ci/gen_mixed_fixtures.py "$FIXDIR"
    R=./build/src/cli/repute

    # Mixed-length input end to end: 80/100/131 bp reads interleaved
    # record by record, mapped in one pass.
    "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/mixed.fq" \
         --out "$MIXED_TMP/mixed.sam"
    # The gzip twin must be byte-identical to the plain file.
    "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/mixed.fq.gz" \
         --out "$MIXED_TMP/mixed_gz.sam"
    cmp "$MIXED_TMP/mixed.sam" "$MIXED_TMP/mixed_gz.sam"
    echo "gz input byte-identical to plain twin"

    # The oracle: map each length class on its own (uniform batches, no
    # bucketing in play) and re-merge the records in input order — the
    # qname encodes the global ordinal. Bucketed output must match.
    for LEN in 80 100 131; do
        "$R" map --delta 3 --ref "$FIXDIR/ref.fa" \
             --reads "$FIXDIR/mixed_len$LEN.fq" \
             --out "$MIXED_TMP/split$LEN.sam"
    done
    python3 - "$MIXED_TMP/mixed.sam" "$MIXED_TMP"/split{80,100,131}.sam <<'PY'
import sys
mixed_path, *split_paths = sys.argv[1:]

def load(path):
    header, records = [], {}
    for line in open(path):
        if line.startswith("@"):
            header.append(line)
        else:
            records.setdefault(line.split("\t", 1)[0], []).append(line)
    return "".join(header), records

headers, merged = set(), {}
for path in split_paths:
    header, records = load(path)
    headers.add(header)
    merged.update(records)
assert len(headers) == 1, "split runs disagree on the SAM header"
expected = headers.pop() + "".join(
    "".join(merged["mix.%d" % i]) for i in range(len(merged))
)
actual = open(mixed_path).read()
if actual != expected:
    sys.exit("bucketed SAM diverged from the per-length-split oracle")
print("bucketed SAM byte-identical to the per-length-split oracle")
PY

    # Paired mates with per-pair mixed lengths; the second file gzipped
    # independently of the first (compression is sniffed per stream).
    "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/r1.fq" \
         --reads2 "$FIXDIR/r2.fq" --out "$MIXED_TMP/pe_plain.sam"
    "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/r1.fq" \
         --reads2 "$FIXDIR/r2.fq.gz" --out "$MIXED_TMP/pe_gz.sam"
    cmp "$MIXED_TMP/pe_plain.sam" "$MIXED_TMP/pe_gz.sam"
    echo "paired gz mate byte-identical to plain"

    # The daemon serves heterogeneous-length gz requests too: the blob
    # ships compressed and the resident session inflates it.
    "$R" index build --ref "$FIXDIR/ref.fa" --out "$MIXED_TMP/ref.rix"
    "$R" serve --index "$MIXED_TMP/ref.rix" \
         --socket "$MIXED_TMP/repute.sock" \
         >"$MIXED_TMP/serve.log" 2>&1 &
    MIXED_SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -S "$MIXED_TMP/repute.sock" ]] && break
        sleep 0.1
    done
    "$R" client --delta 3 --socket "$MIXED_TMP/repute.sock" \
         --reads "$FIXDIR/mixed.fq.gz" --out "$MIXED_TMP/served.sam" \
         --tenant ci
    cmp "$MIXED_TMP/mixed.sam" "$MIXED_TMP/served.sam"
    echo "daemon round trip over gz mixed-length reads byte-identical"
    kill -TERM "$MIXED_SERVE_PID"
    wait "$MIXED_SERVE_PID"

    # The acceptance gate: on uniform input the bucketed pipeline must
    # hold >=0.9x of the fixed path's throughput (and stay
    # byte-identical — the fixture exits nonzero otherwise).
    python3 ci/check_bench.py --only-mixed --mixed-min-ratio 0.9 \
        --mixed-binary build/bench/mixed_bench \
        --mixed-out "$MIXED_TMP/BENCH_mixed.json"

    # Bucket accumulation, the reorder writer and the bucketed pipelines
    # under TSan: interleaved class streams cross the map workers.
    cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER[@]}"
    cmake --build build-tsan -j "$JOBS" --target test_mixed
    ./build-tsan/tests/test_mixed
fi

if has_tier zliboff; then
    echo "== zliboff: -DREPUTE_ZLIB=OFF build + graceful gz rejection =="
    cmake -B build-zliboff -S . -DREPUTE_ZLIB=OFF \
          -DCMAKE_BUILD_TYPE=Release "${LAUNCHER[@]}"
    cmake --build build-zliboff -j "$JOBS" --target repute_cli test_mixed
    # The gz-dependent tests skip themselves; the no-zlib rejection test
    # only runs in this build.
    ./build-zliboff/tests/test_mixed
    ZOFF_TMP="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand now; chain earlier tmpdirs
    trap "rm -rf '$ZOFF_TMP' '${MIXED_TMP:-/nonexistent}' '${SHARD_TMP:-/nonexistent}' '${SMOKE:-/nonexistent}'" EXIT
    FIXDIR="${REPUTE_FIXTURE_DIR:-$ZOFF_TMP/fixtures}"
    python3 ci/gen_mixed_fixtures.py "$FIXDIR"
    R=./build-zliboff/src/cli/repute
    # Plain input still maps...
    "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/mixed.fq" \
         --out "$ZOFF_TMP/plain.sam"
    echo "plain input maps without zlib"
    # ...and gz input is refused loudly instead of misparsed.
    if "$R" map --delta 3 --ref "$FIXDIR/ref.fa" --reads "$FIXDIR/mixed.fq.gz" \
         --out "$ZOFF_TMP/gz.sam" 2>"$ZOFF_TMP/err.log"; then
        echo "FAIL: gz input was accepted by a zlib-less build" >&2
        exit 1
    fi
    grep -q "without zlib" "$ZOFF_TMP/err.log"
    echo "gz input rejected with a clear error"
fi

if has_tier format; then
    echo "== format: clang-format --dry-run --Werror =="
    if command -v clang-format >/dev/null 2>&1; then
        find src tests bench examples \
            \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
            xargs -0 clang-format --dry-run --Werror
        echo "format clean"
    else
        echo "clang-format not installed — skipping format check" >&2
    fi
fi

echo "== ci.sh: all green (${TIERS[*]}) =="
