#!/usr/bin/env bash
# Tier-1 gate plus the concurrency story: a plain build + full ctest
# run, then a ThreadSanitizer build of the queue/scheduler-heavy tests.
# Usage: ./ci.sh [jobs]   (defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 2: ThreadSanitizer (queues, scheduler, determinism) =="
cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" \
      --target test_ocl test_scheduler test_determinism
./build-tsan/tests/test_ocl
./build-tsan/tests/test_scheduler
./build-tsan/tests/test_determinism

echo "== ci.sh: all green =="
