#!/usr/bin/env bash
# Tier-1 gate plus the concurrency and memory stories: a plain build +
# full ctest run + micro-benchmark smoke, then a ThreadSanitizer build
# of the queue/scheduler-heavy tests and an AddressSanitizer build of
# the index/filter hot paths (rank-block and scratch-reuse pointer
# arithmetic lives there).
# Usage: ./ci.sh [jobs]   (defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== micro-benchmark smoke: kernels build and run =="
# Minimal min_time: this only proves the benchmarks still run; compare
# against BENCH_kernels.json manually for perf tracking. (The installed
# google-benchmark wants a plain double here, not a '0.01s' suffix.)
./build/bench/micro_kernels --benchmark_min_time=0.01 \
    --benchmark_filter='BM_Fm' >/dev/null

echo "== tier 2: ThreadSanitizer (queues, scheduler, determinism) =="
cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" \
      --target test_ocl test_scheduler test_determinism
./build-tsan/tests/test_ocl
./build-tsan/tests/test_scheduler
./build-tsan/tests/test_determinism

echo "== tier 2: AddressSanitizer (index layout, filtration) =="
cmake -B build-asan -S . -DREPUTE_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" --target test_index test_filter
./build-asan/tests/test_index
./build-asan/tests/test_filter

echo "== ci.sh: all green =="
