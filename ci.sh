#!/usr/bin/env bash
# Tier-1 gate plus the concurrency and memory stories: a plain build +
# full ctest run + micro-benchmark smoke, then a ThreadSanitizer build
# of the queue/scheduler-heavy tests and an AddressSanitizer build of
# the index/filter hot paths (rank-block and scratch-reuse pointer
# arithmetic lives there) plus the verification funnel (prefilter and
# banded-Myers pointer arithmetic).
# Usage: ./ci.sh [--quick] [jobs]   (jobs defaults to nproc)
#   --quick  trims the micro-benchmark smoke to a single rep per bench;
#            builds and tests are unaffected.

set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
    shift
fi
JOBS="${1:-$(nproc)}"

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== micro-benchmark smoke: kernels and verification funnel =="
# Minimal min_time: this only proves the benchmarks still run; compare
# against BENCH_kernels.json / BENCH_verify.json manually for perf
# tracking. (The installed google-benchmark wants a plain double here,
# not a '0.01s' suffix.)
if [[ "$QUICK" == "1" ]]; then
    MIN_TIME=0.001
    REPS=1
else
    MIN_TIME=0.01
    REPS=3
fi
./build/bench/micro_kernels --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions="$REPS" \
    --benchmark_filter='BM_Fm' >/dev/null
./build/bench/micro_kernels --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions="$REPS" \
    --benchmark_filter='BM_Verify_Myers|BM_Verify_MyersBanded|BM_Prefilter|BM_VerifyFunnel' \
    >/dev/null

echo "== tier 2: ThreadSanitizer (queues, scheduler, determinism) =="
cmake -B build-tsan -S . -DREPUTE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" \
      --target test_ocl test_scheduler test_determinism
./build-tsan/tests/test_ocl
./build-tsan/tests/test_scheduler
./build-tsan/tests/test_determinism

echo "== tier 2: AddressSanitizer (index layout, filtration, funnel) =="
cmake -B build-asan -S . -DREPUTE_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" \
      --target test_index test_filter test_funnel
./build-asan/tests/test_index
./build-asan/tests/test_filter
# Funnel equivalence (layer toggles byte-identical) under ASan: the
# prefilter's packed-word sweep and the banded scan's segment pointers
# are exactly the code most likely to read out of bounds.
./build-asan/tests/test_funnel

echo "== ci.sh: all green =="
