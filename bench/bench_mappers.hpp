#pragma once
// Construction of the paper's mapper line-up against a workload, shared
// by the table benches.

#include <functional>
#include <memory>
#include <vector>

#include "baselines/bwamem_like.hpp"
#include "baselines/gem_like.hpp"
#include "baselines/hobbes3_like.hpp"
#include "baselines/razers3_like.hpp"
#include "baselines/yara_like.hpp"
#include "bench_common.hpp"

namespace repute::bench {

/// The paper's per-configuration choice of REPUTE/CORAL minimum k-mer
/// length ("the best performances ... taking into consideration the
/// k-mer lengths", §IV): a few bases below the feasibility ceiling
/// n/(delta+1), clamped to [10, 22] (Fig. 4 sweet-spot region).
inline std::uint32_t best_s_min(std::size_t n, std::uint32_t delta) {
    const auto ceiling = static_cast<std::uint32_t>(n / (delta + 1));
    const std::uint32_t preferred = ceiling > 2 ? ceiling - 2 : 1;
    return std::clamp<std::uint32_t>(preferred, 10, 22);
}

/// Named factory: builds a fresh mapper for one (n, delta) cell.
struct MapperSpec {
    std::string name;
    std::function<std::unique_ptr<core::Mapper>(std::size_t n,
                                                std::uint32_t delta)>
        make;
};

/// Hash-mapper q-gram length scaled so that the random hit density per
/// q-gram on the bench genome matches what the tool would see on chr21
/// (46.7 Mbp): 4^q ~ genome / target_hits.
std::uint32_t scaled_q(std::size_t genome_length, double target_hits);

/// The paper's gold standard: RazerS3 with 100 locations/read, q scaled
/// to the bench genome.
std::unique_ptr<baselines::RazerS3Like> make_gold_standard(
    const Workload& w, ocl::Device& device);

/// The five baseline tools, configured as in §III-A (RazerS3 capped at
/// 100 locations; Hobbes3 at 1000; Yara and BWA-MEM report all).
std::vector<MapperSpec> baseline_specs(const Workload& w,
                                       ocl::Device& cpu);

/// REPUTE / CORAL on the given device shares, capped at 1000 locations.
/// `toggles` applies the --no-prefilter/--no-band/--no-coalesce escape
/// hatches to every kernel the spec builds.
MapperSpec repute_spec(const Workload& w,
                       std::vector<core::DeviceShare> shares,
                       const std::string& name,
                       FunnelToggles toggles = {});
MapperSpec coral_spec(const Workload& w,
                      std::vector<core::DeviceShare> shares,
                      const std::string& name,
                      FunnelToggles toggles = {});

} // namespace repute::bench
