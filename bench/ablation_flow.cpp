// Ablation: kernel flow — collapsed vs streaming verification
// (DESIGN.md §5, paper §I "the REPUTE kernel flow has been modified").
//
// Runs the SAME DP seeder under both flows so the effect of collapsing
// duplicate diagonals before verification is isolated from filtration
// quality, then adds CORAL (heuristic + streaming) for the combined
// picture. Reported per delta: verified windows per read, verification
// share of total ops, and modeled time.

#include <cstdio>

#include "bench_common.hpp"
#include "bench_mappers.hpp"
#include "core/kernels.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    WorkloadConfig config = parse_workload_config(args);
    config.n_reads = std::min<std::size_t>(config.n_reads, 2000);
    const auto workload = make_workload(config);

    ocl::DeviceProfile profile;
    profile.name = "ablation-cpu";
    profile.compute_units = 8;
    profile.ops_per_unit_per_second = 1e9;
    profile.global_memory_bytes = 1ULL << 32;
    profile.private_memory_per_unit = 1 << 22;
    profile.dispatch_overhead_seconds = 0.0;
    ocl::Device device(profile);

    const std::size_t n = 150;
    std::printf("\n== Ablation: kernel flow (n=%zu, %zu reads) ==\n", n,
                workload.reads(n).batch.size());
    std::printf("%-26s %5s | %12s %12s %10s\n", "configuration", "delta",
                "windows/read", "verify-share", "T(s)");

    for (const std::uint32_t delta : {5u, 6u, 7u}) {
        const std::uint32_t s_min = best_s_min(n, delta);
        struct Variant {
            const char* label;
            bool dp;
            bool collapse;
        };
        const Variant variants[] = {
            {"REPUTE (DP + collapse)", true, true},
            {"DP + streaming", true, false},
            {"CORAL (greedy+streaming)", false, false},
        };
        for (const auto& v : variants) {
            core::HeterogeneousMapperConfig mapper_config;
            mapper_config.kernel.s_min = s_min;
            mapper_config.kernel.max_locations_per_read = 1000;
            mapper_config.kernel.collapse_candidates = v.collapse;
            std::unique_ptr<core::Mapper> mapper;
            if (v.dp) {
                mapper = core::make_repute(workload.reference(),
                                           workload.fm(),
                                           {{&device, 1.0}},
                                           mapper_config);
            } else {
                // make_coral forces streaming (v.collapse is false here
                // anyway).
                mapper = core::make_coral(workload.reference(),
                                          workload.fm(),
                                          {{&device, 1.0}},
                                          mapper_config);
            }
            const auto result =
                mapper->map(workload.reads(n).batch, delta);
            const auto& run = result.device_runs[0];
            const double per_read =
                static_cast<double>(run.stage.candidates) /
                static_cast<double>(run.reads);
            const double share =
                static_cast<double>(run.stage.verify_ops) /
                static_cast<double>(run.stats.total_ops);
            std::printf("%-26s %5u | %12.1f %11.0f%% %10.4f\n", v.label,
                        delta, per_read, share * 100,
                        result.mapping_seconds);
        }
        std::printf("\n");
    }
    std::printf("windows/read: verification invocations after (collapse) "
                "or without (streaming) diagonal dedup.\n");
    return 0;
}
