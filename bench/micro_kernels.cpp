// Microbenchmarks and ablations (google-benchmark).
//
// Covers the design choices DESIGN.md calls out:
//   * filtration ablation: uniform vs heuristic (CORAL) vs full OSS vs
//     REPUTE's memory-optimized DP — time AND produced candidate count;
//   * verification ablation: Myers bit-vector vs banded DP vs full DP;
//   * index primitives: exact backward search, locate, approximate
//     search tree growth with the error budget (the Yara cost driver);
//   * suffix-array construction.

#include <benchmark/benchmark.h>

#include <memory>

#include "align/edit_distance.hpp"
#include "align/myers.hpp"
#include "filter/frequency_scanner.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/optimal_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/approx_search.hpp"
#include "index/bi_fm_index.hpp"
#include "index/fm_index.hpp"
#include "index/suffix_array.hpp"
#include "util/prng.hpp"

namespace {

using namespace repute;

struct MicroWorkload {
    genomics::Reference reference;
    std::unique_ptr<index::FmIndex> fm;
    genomics::SimulatedReads reads;
};

const MicroWorkload& workload() {
    static const MicroWorkload w = [] {
        genomics::GenomeSimConfig gconfig;
        gconfig.length = 1'000'000;
        gconfig.seed = 7;
        MicroWorkload mw{genomics::simulate_genome(gconfig), nullptr, {}};
        mw.fm = std::make_unique<index::FmIndex>(mw.reference, 4);
        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 512;
        rconfig.read_length = 100;
        rconfig.max_errors = 5;
        mw.reads = genomics::simulate_reads(mw.reference, rconfig);
        return mw;
    }();
    return w;
}

// ------------------------------------------------- filtration ablation

template <typename SeederT>
void bm_seeder(benchmark::State& state) {
    const auto& w = workload();
    const SeederT seeder(static_cast<std::uint32_t>(state.range(0)));
    const std::uint32_t delta = 5;
    std::size_t i = 0;
    std::uint64_t candidates = 0, reads = 0;
    for (auto _ : state) {
        const auto& read = w.reads.batch.reads[i++ % w.reads.batch.size()];
        const auto plan = seeder.select(*w.fm, read.codes, delta);
        benchmark::DoNotOptimize(plan.total_candidates);
        candidates += plan.total_candidates;
        ++reads;
    }
    state.counters["candidates/read"] =
        static_cast<double>(candidates) / static_cast<double>(reads);
}

void BM_Seeder_Uniform(benchmark::State& state) {
    bm_seeder<filter::UniformSeeder>(state);
}
void BM_Seeder_Heuristic(benchmark::State& state) {
    bm_seeder<filter::HeuristicSeeder>(state);
}
void BM_Seeder_OssFull(benchmark::State& state) {
    bm_seeder<filter::OptimalSeeder>(state);
}
void BM_Seeder_ReputeDp(benchmark::State& state) {
    bm_seeder<filter::MemoryOptimizedSeeder>(state);
}
BENCHMARK(BM_Seeder_Uniform)->Arg(12);
BENCHMARK(BM_Seeder_Heuristic)->Arg(12);
BENCHMARK(BM_Seeder_OssFull)->Arg(12);
BENCHMARK(BM_Seeder_ReputeDp)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

// ----------------------------------------------- verification ablation

void BM_Verify_Myers(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const align::MyersMatcher matcher(read.codes);
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matcher.best_in(window).distance);
    }
}
void BM_Verify_BandedDp(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            align::banded_semiglobal_distance(read.codes, window, 5));
    }
}
void BM_Verify_FullDp(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            align::semiglobal_distance(read.codes, window));
    }
}
BENCHMARK(BM_Verify_Myers);
BENCHMARK(BM_Verify_BandedDp);
BENCHMARK(BM_Verify_FullDp);

// ------------------------------------------------------ index primitives

// FM hot path: the filtration stage is dominated by occ()/extend(), so
// these four benches are the recorded perf baseline (BENCH_kernels.json)
// that every index-layout change is judged against.

void BM_FmOcc(benchmark::State& state) {
    const auto& w = workload();
    util::Xoshiro256 rng(11);
    const auto rows = static_cast<std::uint32_t>(w.fm->size() + 1);
    std::vector<std::uint32_t> where(1024);
    for (auto& r : where) {
        r = static_cast<std::uint32_t>(rng.bounded(rows + 1));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.fm->occ(static_cast<std::uint8_t>(i & 3), where[i & 1023]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FmOcc);

void BM_FmBackwardExtend(benchmark::State& state) {
    // Full backward search of read-length patterns one extend at a time
    // (2 occ per extend) — the suffix-frequency scan inner loop.
    const auto& w = workload();
    util::Xoshiro256 rng(12);
    std::vector<std::vector<std::uint8_t>> patterns;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 100);
        patterns.push_back(w.reference.sequence().extract(pos, 100));
    }
    std::size_t i = 0;
    std::int64_t extends = 0;
    for (auto _ : state) {
        const auto& p = patterns[i++ & 63];
        auto range = w.fm->whole_range();
        for (std::size_t k = p.size(); k-- > 0 && !range.empty();) {
            range = w.fm->extend(range, p[k]);
            ++extends;
        }
        benchmark::DoNotOptimize(range);
    }
    state.SetItemsProcessed(extends);
}
BENCHMARK(BM_FmBackwardExtend);

void BM_FmSuffixFrequencies(benchmark::State& state) {
    // One memopt-DP-style scan: frequencies of every suffix of
    // read[12, 60) ending at 60 — the per-iteration unit of work of the
    // paper's filtration DP.
    const auto& w = workload();
    std::size_t i = 0;
    std::vector<std::uint32_t> freqs(48);
    for (auto _ : state) {
        const auto& read = w.reads.batch.reads[i++ % w.reads.batch.size()];
        const filter::FrequencyScanner scanner(*w.fm, read.codes);
        scanner.suffix_frequencies(12, 60, freqs);
        benchmark::DoNotOptimize(freqs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FmSuffixFrequencies);

void BM_FmExactSearch(benchmark::State& state) {
    const auto& w = workload();
    const auto len = static_cast<std::size_t>(state.range(0));
    util::Xoshiro256 rng(3);
    std::vector<std::vector<std::uint8_t>> patterns;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - len);
        patterns.push_back(w.reference.sequence().extract(pos, len));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.fm->search(patterns[i++ % patterns.size()]).count());
    }
}
BENCHMARK(BM_FmExactSearch)->Arg(12)->Arg(20)->Arg(32);

void BM_FmLocate(benchmark::State& state) {
    const auto& w = workload();
    util::Xoshiro256 rng(4);
    std::vector<index::FmIndex::Range> ranges;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 16);
        ranges.push_back(
            w.fm->search(w.reference.sequence().extract(pos, 16)));
    }
    std::vector<std::uint32_t> hits;
    std::size_t i = 0;
    for (auto _ : state) {
        hits.clear();
        w.fm->locate_range(ranges[i++ % ranges.size()], 16, hits);
        benchmark::DoNotOptimize(hits.data());
    }
}
BENCHMARK(BM_FmLocate);

void BM_ApproxSearch(benchmark::State& state) {
    const auto& w = workload();
    const auto errors = static_cast<std::uint32_t>(state.range(0));
    util::Xoshiro256 rng(5);
    std::vector<std::vector<std::uint8_t>> segments;
    for (int i = 0; i < 32; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 33);
        segments.push_back(w.reference.sequence().extract(pos, 33));
    }
    std::size_t i = 0;
    std::uint64_t nodes = 0, calls = 0;
    for (auto _ : state) {
        index::ApproxSearchStats stats;
        benchmark::DoNotOptimize(index::approximate_search(
            *w.fm, segments[i++ % segments.size()], errors, &stats));
        nodes += stats.visited_nodes;
        ++calls;
    }
    state.counters["nodes/call"] =
        static_cast<double>(nodes) / static_cast<double>(calls);
}
BENCHMARK(BM_ApproxSearch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_BidiSearch(benchmark::State& state) {
    const auto& w = workload();
    static const index::BiFmIndex bidi(w.reference);
    const auto errors = static_cast<std::uint32_t>(state.range(0));
    util::Xoshiro256 rng(5); // same segments as BM_ApproxSearch
    std::vector<std::vector<std::uint8_t>> segments;
    for (int i = 0; i < 32; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 33);
        segments.push_back(w.reference.sequence().extract(pos, 33));
    }
    std::size_t i = 0;
    std::uint64_t nodes = 0, calls = 0;
    for (auto _ : state) {
        index::ApproxSearchStats stats;
        benchmark::DoNotOptimize(index::bidirectional_approximate_search(
            bidi, segments[i++ % segments.size()], errors, &stats));
        nodes += stats.visited_nodes;
        ++calls;
    }
    state.counters["nodes/call"] =
        static_cast<double>(nodes) / static_cast<double>(calls);
}
BENCHMARK(BM_BidiSearch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// ---------------------------------------------------------- construction

void BM_SuffixArraySais(benchmark::State& state) {
    genomics::GenomeSimConfig config;
    config.length = static_cast<std::size_t>(state.range(0));
    const auto ref = genomics::simulate_genome(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            index::build_suffix_array(ref.sequence()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(100'000)->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

} // namespace
