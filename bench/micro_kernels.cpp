// Microbenchmarks and ablations (google-benchmark).
//
// Covers the design choices DESIGN.md calls out:
//   * filtration ablation: uniform vs heuristic (CORAL) vs full OSS vs
//     REPUTE's memory-optimized DP — time AND produced candidate count;
//   * verification ablation: Myers bit-vector vs banded DP vs full DP;
//   * index primitives: exact backward search, locate, approximate
//     search tree growth with the error budget (the Yara cost driver);
//   * suffix-array construction.

#include <benchmark/benchmark.h>

#include <memory>
#include <span>

#include "align/edit_distance.hpp"
#include "align/myers.hpp"
#include "align/myers_simd.hpp"
#include "align/prefilter.hpp"
#include "filter/candidates.hpp"
#include "filter/frequency_scanner.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/optimal_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/approx_search.hpp"
#include "index/bi_fm_index.hpp"
#include "index/fm_index.hpp"
#include "index/suffix_array.hpp"
#include "util/packed_dna.hpp"
#include "util/prng.hpp"

namespace {

using namespace repute;

struct MicroWorkload {
    genomics::Reference reference;
    std::unique_ptr<index::FmIndex> fm;
    genomics::SimulatedReads reads;
};

const MicroWorkload& workload() {
    static const MicroWorkload w = [] {
        genomics::GenomeSimConfig gconfig;
        gconfig.length = 1'000'000;
        gconfig.seed = 7;
        MicroWorkload mw{genomics::simulate_genome(gconfig), nullptr, {}};
        mw.fm = std::make_unique<index::FmIndex>(mw.reference, 4);
        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 512;
        rconfig.read_length = 100;
        rconfig.max_errors = 5;
        mw.reads = genomics::simulate_reads(mw.reference, rconfig);
        return mw;
    }();
    return w;
}

// ------------------------------------------------- filtration ablation

template <typename SeederT>
void bm_seeder(benchmark::State& state) {
    const auto& w = workload();
    const SeederT seeder(static_cast<std::uint32_t>(state.range(0)));
    const std::uint32_t delta = 5;
    std::size_t i = 0;
    std::uint64_t candidates = 0, reads = 0;
    for (auto _ : state) {
        const auto& read = w.reads.batch.reads[i++ % w.reads.batch.size()];
        const auto plan = seeder.select(*w.fm, read.codes, delta);
        benchmark::DoNotOptimize(plan.total_candidates);
        candidates += plan.total_candidates;
        ++reads;
    }
    state.counters["candidates/read"] =
        static_cast<double>(candidates) / static_cast<double>(reads);
}

void BM_Seeder_Uniform(benchmark::State& state) {
    bm_seeder<filter::UniformSeeder>(state);
}
void BM_Seeder_Heuristic(benchmark::State& state) {
    bm_seeder<filter::HeuristicSeeder>(state);
}
void BM_Seeder_OssFull(benchmark::State& state) {
    bm_seeder<filter::OptimalSeeder>(state);
}
void BM_Seeder_ReputeDp(benchmark::State& state) {
    bm_seeder<filter::MemoryOptimizedSeeder>(state);
}
BENCHMARK(BM_Seeder_Uniform)->Arg(12);
BENCHMARK(BM_Seeder_Heuristic)->Arg(12);
BENCHMARK(BM_Seeder_OssFull)->Arg(12);
BENCHMARK(BM_Seeder_ReputeDp)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

// ----------------------------------------------- verification ablation

void BM_Verify_Myers(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const align::MyersMatcher matcher(read.codes);
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matcher.best_in(window).distance);
    }
}
void BM_Verify_BandedDp(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            align::banded_semiglobal_distance(read.codes, window, 5));
    }
}
void BM_Verify_FullDp(benchmark::State& state) {
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            align::semiglobal_distance(read.codes, window));
    }
}
BENCHMARK(BM_Verify_Myers);
BENCHMARK(BM_Verify_BandedDp);
BENCHMARK(BM_Verify_FullDp);

// ---------------------------------------------- verification funnel

void BM_Verify_MyersBanded(benchmark::State& state) {
    // Same accept-case window as BM_Verify_Myers, δ-banded.
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const align::MyersMatcher matcher(read.codes);
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            matcher.best_in_bounded(window, 5).distance);
    }
}
BENCHMARK(BM_Verify_MyersBanded);

void BM_Verify_MyersBandedBatched(benchmark::State& state) {
    // The same accept-case window in all MyersSimdEngine::kLanes lanes:
    // identical per-lane work to BM_Verify_MyersBanded, so
    //   speedup = scalar_time / (batched_time / kLanes)
    // is the honest per-candidate gain of the lane-batched engine (the
    // ci/check_bench.py ratio gate holds it at >= 2x).
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const align::MyersSimdEngine engine(read.codes);
    constexpr std::size_t kLanes = align::MyersSimdEngine::kLanes;
    const auto window = w.reference.sequence().extract(
        w.reads.origins[3].position, 110);
    const std::uint8_t* texts[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) texts[l] = window.data();
    align::MyersMatcher::BoundedHit hits[kLanes];
    for (auto _ : state) {
        engine.best_in_bounded_multi(texts, kLanes, window.size(), 5,
                                     hits);
        benchmark::DoNotOptimize(hits[0].distance);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kLanes));
    state.SetLabel(align::myers_simd_backend());
}
BENCHMARK(BM_Verify_MyersBandedBatched);

void BM_Verify_MyersBatchedMixedLengths(benchmark::State& state) {
    // The dispatch path under length fragmentation: a candidate mix
    // whose clamped window lengths are deliberately varied (reference-
    // edge clamps in miniature), run through bucket_by_length + full
    // batches + scalar tail exactly as the kernel dispatches. Items are
    // verified windows, so ns/item is comparable with the pure-batch
    // and pure-scalar benches; the gap between them is the cost of
    // partial-bucket tails at this occupancy.
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    const align::MyersSimdEngine engine(read.codes);
    const align::MyersMatcher matcher(read.codes);
    constexpr std::size_t kLanes = align::MyersSimdEngine::kLanes;
    // 29 windows over 4 clamped lengths, interleaved: buckets of 13,
    // 9, 5 and 2 jobs — three full batches, every bucket with a tail.
    const std::uint32_t mix_lengths[] = {110, 107, 110, 103, 110, 97,
                                         107, 110, 103, 110};
    std::vector<std::vector<std::uint8_t>> windows;
    std::vector<std::uint32_t> lengths;
    util::Xoshiro256 rng(29);
    for (int i = 0; i < 29; ++i) {
        const std::uint32_t len = mix_lengths[i % 10];
        windows.push_back(w.reference.sequence().extract(
            w.reads.origins[3].position + rng.bounded(4), len));
        lengths.push_back(len);
    }
    std::vector<std::uint32_t> order;
    std::vector<align::LengthBucket> buckets;
    const std::uint8_t* texts[kLanes];
    align::MyersMatcher::BoundedHit hits[kLanes];
    std::uint64_t accepted = 0;
    for (auto _ : state) {
        align::bucket_by_length(lengths, order, buckets);
        for (const auto& bucket : buckets) {
            std::uint32_t i = 0;
            while (bucket.count - i >= kLanes) {
                for (std::size_t l = 0; l < kLanes; ++l) {
                    texts[l] = windows[order[bucket.first + i + l]].data();
                }
                engine.best_in_bounded_multi(texts, kLanes, bucket.length,
                                             5, hits);
                for (std::size_t l = 0; l < kLanes; ++l) {
                    accepted += hits[l].distance <= 5 ? 1 : 0;
                }
                i += kLanes;
            }
            for (; i < bucket.count; ++i) {
                const auto& win = windows[order[bucket.first + i]];
                accepted +=
                    matcher.best_in_bounded(win, 5).distance <= 5 ? 1 : 0;
            }
        }
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 29);
}
BENCHMARK(BM_Verify_MyersBatchedMixedLengths);

void BM_Prefilter_RejectRandom(benchmark::State& state) {
    // The prefilter's money case: a false-positive candidate window,
    // killed without running Myers at all.
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    align::Prefilter filter;
    filter.set_pattern(read.codes);
    // A window the read does NOT come from (origin of another read).
    std::vector<std::uint64_t> words(util::PackedDna::packed_word_count(110));
    w.reference.sequence().extract_words(w.reads.origins[200].position,
                                         110, words.data());
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter.admits(words.data(), 0, 110, 5));
    }
}
BENCHMARK(BM_Prefilter_RejectRandom);

void BM_Prefilter_AcceptPlanted(benchmark::State& state) {
    // True-positive window: the early accept exit fires on the group
    // containing the real alignment.
    const auto& w = workload();
    const auto& read = w.reads.batch.reads[3];
    align::Prefilter filter;
    filter.set_pattern(read.codes);
    std::vector<std::uint64_t> words(util::PackedDna::packed_word_count(110));
    w.reference.sequence().extract_words(w.reads.origins[3].position, 110,
                                         words.data());
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter.admits(words.data(), 0, 110, 5));
    }
}
BENCHMARK(BM_Prefilter_AcceptPlanted);

// The table1-workload candidate mix: every candidate window the DP
// seeder produces for the first 64 reads on BOTH strands, exactly as
// the kernel verifies them (the reverse-complement pass contributes
// most of the false positives — true hits and false candidates appear
// in their real ~1:1 ratio). _Baseline is the pre-funnel path (byte
// window + full best_in per candidate); _Full is the three-layer
// funnel. The BENCH_kernels.json acceptance gate compares these two.
struct FunnelMix {
    struct PerStrand {
        std::vector<std::uint8_t> codes;
        filter::CandidateSet candidates;
    };
    std::vector<PerStrand> jobs;
};

const FunnelMix& funnel_mix() {
    static const FunnelMix mix = [] {
        const auto& w = workload();
        const filter::MemoryOptimizedSeeder seeder(12);
        filter::CandidateConfig cand_config;
        cand_config.max_hits_per_seed = 2048;
        cand_config.coalesce_windows = true;
        FunnelMix m;
        std::vector<std::uint8_t> rc;
        for (std::size_t r = 0; r < 64; ++r) {
            const auto& read = w.reads.batch.reads[r];
            read.reverse_complement(rc);
            const auto& rc_ref = rc;
            for (const auto* codes : {&read.codes, &rc_ref}) {
                const auto plan = seeder.select(*w.fm, *codes, 5);
                FunnelMix::PerStrand job;
                job.codes = *codes;
                job.candidates = filter::gather_candidates(
                    *w.fm, plan,
                    static_cast<std::uint32_t>(codes->size()), 5,
                    cand_config);
                m.jobs.push_back(std::move(job));
            }
        }
        return m;
    }();
    return mix;
}

void BM_VerifyFunnel_Baseline(benchmark::State& state) {
    const auto& w = workload();
    const auto& mix = funnel_mix();
    const auto text_len = static_cast<std::uint32_t>(w.fm->size());
    align::MyersMatcher matcher;
    std::vector<std::uint8_t> window;
    std::size_t i = 0;
    std::int64_t verified = 0;
    std::uint64_t accepted = 0;
    for (auto _ : state) {
        const auto& pr = mix.jobs[i++ % mix.jobs.size()];
        matcher.set_pattern(pr.codes);
        const auto n = static_cast<std::uint32_t>(pr.codes.size());
        for (const std::uint32_t start : pr.candidates.positions) {
            const std::uint32_t win_lo = start >= 5 ? start - 5 : 0;
            const std::uint32_t win_len =
                std::min<std::uint32_t>(n + 10, text_len - win_lo);
            if (win_len + 5 < n) continue;
            window.resize(win_len);
            w.reference.sequence().extract(win_lo, win_len, window.data());
            const auto hit = matcher.best_in(window);
            accepted += hit.distance <= 5 ? 1 : 0;
            ++verified;
        }
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(verified);
}
BENCHMARK(BM_VerifyFunnel_Baseline);

void BM_VerifyFunnel_Full(benchmark::State& state) {
    const auto& w = workload();
    const auto& mix = funnel_mix();
    const auto text_len = static_cast<std::uint32_t>(w.fm->size());
    align::MyersMatcher matcher;
    align::Prefilter filter;
    std::vector<std::uint8_t> window;
    std::vector<std::uint64_t> words;
    std::size_t i = 0;
    std::int64_t verified = 0;
    std::uint64_t accepted = 0;
    for (auto _ : state) {
        const auto& pr = mix.jobs[i++ % mix.jobs.size()];
        filter.set_pattern(pr.codes);
        bool matcher_set = false; // deferred, as in the kernel
        const auto n = static_cast<std::uint32_t>(pr.codes.size());
        for (const auto& group : pr.candidates.groups) {
            bool have_words = false, have_bytes = false;
            for (std::uint32_t ci = 0; ci < group.count; ++ci) {
                const std::uint32_t start =
                    pr.candidates.positions[group.first + ci];
                const std::uint32_t win_lo = start >= 5 ? start - 5 : 0;
                const std::uint32_t win_len =
                    std::min<std::uint32_t>(n + 10, text_len - win_lo);
                if (win_len + 5 < n) continue;
                ++verified;
                if (!have_words) {
                    words.resize(
                        util::PackedDna::packed_word_count(group.len));
                    w.reference.sequence().extract_words(
                        group.lo, group.len, words.data());
                    have_words = true;
                }
                if (!filter.admits(words.data(), win_lo - group.lo,
                                   win_len, 5)) {
                    continue;
                }
                if (filter.last_exact()) {
                    ++accepted; // certified distance 0, Myers skipped
                    continue;
                }
                if (!have_bytes) {
                    window.resize(group.len);
                    w.reference.sequence().extract(group.lo, group.len,
                                                   window.data());
                    have_bytes = true;
                }
                const std::span<const std::uint8_t> text{
                    window.data() + (win_lo - group.lo), win_len};
                if (!matcher_set) {
                    matcher.set_pattern(pr.codes);
                    matcher_set = true;
                }
                const auto hit = matcher.best_in_bounded(text, 5);
                accepted += hit.distance <= 5 ? 1 : 0;
            }
        }
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(verified);
}
BENCHMARK(BM_VerifyFunnel_Full);

void BM_VerifyFunnel_FullSimd(benchmark::State& state) {
    // BM_VerifyFunnel_Full with the kernel's deferred lane-batched
    // verification on top: Myers survivors queue as jobs, are bucketed
    // by clamped length, and run kLanes at a time with a scalar tail.
    // On this real candidate mix most strands carry a single window
    // (only multimapping repeat reads fill batches), so the value of
    // this bench is pinning the dispatch overhead at realistic — low —
    // occupancy; BM_Verify_MyersBandedBatched shows the full-lane gain.
    const auto& w = workload();
    const auto& mix = funnel_mix();
    const auto text_len = static_cast<std::uint32_t>(w.fm->size());
    constexpr std::size_t kLanes = align::MyersSimdEngine::kLanes;
    align::MyersSimdEngine engine;
    align::MyersMatcher matcher;
    align::Prefilter filter;
    std::vector<std::uint8_t> arena;
    std::vector<std::uint64_t> words;
    struct Job {
        std::uint32_t arena_off, win_len;
    };
    std::vector<Job> jobs;
    std::vector<std::uint32_t> lengths, order;
    std::vector<align::LengthBucket> buckets;
    std::size_t i = 0;
    std::int64_t verified = 0;
    std::uint64_t accepted = 0;
    for (auto _ : state) {
        const auto& pr = mix.jobs[i++ % mix.jobs.size()];
        filter.set_pattern(pr.codes);
        bool engine_set = false, matcher_set = false;
        const auto n = static_cast<std::uint32_t>(pr.codes.size());
        arena.clear();
        jobs.clear();
        for (const auto& group : pr.candidates.groups) {
            bool have_words = false, have_bytes = false;
            std::uint32_t group_off = 0;
            for (std::uint32_t ci = 0; ci < group.count; ++ci) {
                const std::uint32_t start =
                    pr.candidates.positions[group.first + ci];
                const std::uint32_t win_lo = start >= 5 ? start - 5 : 0;
                const std::uint32_t win_len =
                    std::min<std::uint32_t>(n + 10, text_len - win_lo);
                if (win_len + 5 < n) continue;
                ++verified;
                if (!have_words) {
                    words.resize(
                        util::PackedDna::packed_word_count(group.len));
                    w.reference.sequence().extract_words(
                        group.lo, group.len, words.data());
                    have_words = true;
                }
                if (!filter.admits(words.data(), win_lo - group.lo,
                                   win_len, 5)) {
                    continue;
                }
                if (filter.last_exact()) {
                    ++accepted;
                    continue;
                }
                if (!have_bytes) {
                    group_off = static_cast<std::uint32_t>(arena.size());
                    arena.resize(arena.size() + group.len);
                    w.reference.sequence().extract(
                        group.lo, group.len, arena.data() + group_off);
                    have_bytes = true;
                }
                jobs.push_back({group_off + (win_lo - group.lo), win_len});
            }
        }
        lengths.clear();
        for (const auto& job : jobs) lengths.push_back(job.win_len);
        align::bucket_by_length(lengths, order, buckets);
        const std::uint8_t* texts[kLanes];
        align::MyersMatcher::BoundedHit hits[kLanes];
        for (const auto& bucket : buckets) {
            std::uint32_t k = 0;
            while (bucket.count - k >= kLanes) {
                for (std::size_t l = 0; l < kLanes; ++l) {
                    texts[l] = arena.data() +
                               jobs[order[bucket.first + k + l]].arena_off;
                }
                if (!engine_set) {
                    engine.set_pattern(pr.codes);
                    engine_set = true;
                }
                engine.best_in_bounded_multi(texts, kLanes, bucket.length,
                                             5, hits);
                for (std::size_t l = 0; l < kLanes; ++l) {
                    accepted += hits[l].distance <= 5 ? 1 : 0;
                }
                k += kLanes;
            }
            for (; k < bucket.count; ++k) {
                const auto& job = jobs[order[bucket.first + k]];
                if (!matcher_set) {
                    matcher.set_pattern(pr.codes);
                    matcher_set = true;
                }
                const std::span<const std::uint8_t> text{
                    arena.data() + job.arena_off, job.win_len};
                accepted +=
                    matcher.best_in_bounded(text, 5).distance <= 5 ? 1 : 0;
            }
        }
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(verified);
}
BENCHMARK(BM_VerifyFunnel_FullSimd);

// ------------------------------------------------------ index primitives

// FM hot path: the filtration stage is dominated by occ()/extend(), so
// these four benches are the recorded perf baseline (BENCH_kernels.json)
// that every index-layout change is judged against.

void BM_FmOcc(benchmark::State& state) {
    const auto& w = workload();
    util::Xoshiro256 rng(11);
    const auto rows = static_cast<std::uint32_t>(w.fm->size() + 1);
    std::vector<std::uint32_t> where(1024);
    for (auto& r : where) {
        r = static_cast<std::uint32_t>(rng.bounded(rows + 1));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.fm->occ(static_cast<std::uint8_t>(i & 3), where[i & 1023]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FmOcc);

void BM_FmBackwardExtend(benchmark::State& state) {
    // Full backward search of read-length patterns one extend at a time
    // (2 occ per extend) — the suffix-frequency scan inner loop.
    const auto& w = workload();
    util::Xoshiro256 rng(12);
    std::vector<std::vector<std::uint8_t>> patterns;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 100);
        patterns.push_back(w.reference.sequence().extract(pos, 100));
    }
    std::size_t i = 0;
    std::int64_t extends = 0;
    for (auto _ : state) {
        const auto& p = patterns[i++ & 63];
        auto range = w.fm->whole_range();
        for (std::size_t k = p.size(); k-- > 0 && !range.empty();) {
            range = w.fm->extend(range, p[k]);
            ++extends;
        }
        benchmark::DoNotOptimize(range);
    }
    state.SetItemsProcessed(extends);
}
BENCHMARK(BM_FmBackwardExtend);

void BM_FmSuffixFrequencies(benchmark::State& state) {
    // One memopt-DP-style scan: frequencies of every suffix of
    // read[12, 60) ending at 60 — the per-iteration unit of work of the
    // paper's filtration DP.
    const auto& w = workload();
    std::size_t i = 0;
    std::vector<std::uint32_t> freqs(48);
    for (auto _ : state) {
        const auto& read = w.reads.batch.reads[i++ % w.reads.batch.size()];
        const filter::FrequencyScanner scanner(*w.fm, read.codes);
        scanner.suffix_frequencies(12, 60, freqs);
        benchmark::DoNotOptimize(freqs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FmSuffixFrequencies);

void BM_FmExactSearch(benchmark::State& state) {
    const auto& w = workload();
    const auto len = static_cast<std::size_t>(state.range(0));
    util::Xoshiro256 rng(3);
    std::vector<std::vector<std::uint8_t>> patterns;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - len);
        patterns.push_back(w.reference.sequence().extract(pos, len));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.fm->search(patterns[i++ % patterns.size()]).count());
    }
}
BENCHMARK(BM_FmExactSearch)->Arg(12)->Arg(20)->Arg(32);

void BM_FmLocate(benchmark::State& state) {
    const auto& w = workload();
    util::Xoshiro256 rng(4);
    std::vector<index::FmIndex::Range> ranges;
    for (int i = 0; i < 64; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 16);
        ranges.push_back(
            w.fm->search(w.reference.sequence().extract(pos, 16)));
    }
    std::vector<std::uint32_t> hits;
    std::size_t i = 0;
    for (auto _ : state) {
        hits.clear();
        w.fm->locate_range(ranges[i++ % ranges.size()], 16, hits);
        benchmark::DoNotOptimize(hits.data());
    }
}
BENCHMARK(BM_FmLocate);

void BM_ApproxSearch(benchmark::State& state) {
    const auto& w = workload();
    const auto errors = static_cast<std::uint32_t>(state.range(0));
    util::Xoshiro256 rng(5);
    std::vector<std::vector<std::uint8_t>> segments;
    for (int i = 0; i < 32; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 33);
        segments.push_back(w.reference.sequence().extract(pos, 33));
    }
    std::size_t i = 0;
    std::uint64_t nodes = 0, calls = 0;
    for (auto _ : state) {
        index::ApproxSearchStats stats;
        benchmark::DoNotOptimize(index::approximate_search(
            *w.fm, segments[i++ % segments.size()], errors, &stats));
        nodes += stats.visited_nodes;
        ++calls;
    }
    state.counters["nodes/call"] =
        static_cast<double>(nodes) / static_cast<double>(calls);
}
BENCHMARK(BM_ApproxSearch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_BidiSearch(benchmark::State& state) {
    const auto& w = workload();
    static const index::BiFmIndex bidi(w.reference);
    const auto errors = static_cast<std::uint32_t>(state.range(0));
    util::Xoshiro256 rng(5); // same segments as BM_ApproxSearch
    std::vector<std::vector<std::uint8_t>> segments;
    for (int i = 0; i < 32; ++i) {
        const std::size_t pos = rng.bounded(w.reference.size() - 33);
        segments.push_back(w.reference.sequence().extract(pos, 33));
    }
    std::size_t i = 0;
    std::uint64_t nodes = 0, calls = 0;
    for (auto _ : state) {
        index::ApproxSearchStats stats;
        benchmark::DoNotOptimize(index::bidirectional_approximate_search(
            bidi, segments[i++ % segments.size()], errors, &stats));
        nodes += stats.visited_nodes;
        ++calls;
    }
    state.counters["nodes/call"] =
        static_cast<double>(nodes) / static_cast<double>(calls);
}
BENCHMARK(BM_BidiSearch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// ---------------------------------------------------------- construction

void BM_SuffixArraySais(benchmark::State& state) {
    genomics::GenomeSimConfig config;
    config.length = static_cast<std::size_t>(state.range(0));
    const auto ref = genomics::simulate_genome(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            index::build_suffix_array(ref.sequence()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(100'000)->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

} // namespace
