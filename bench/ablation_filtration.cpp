// Ablation: filtration strategies (DESIGN.md §5).
//
// Sweeps the four seeders over s_min and reports, per read: filtration
// work (FM extensions + DP cells), candidate locations before and after
// diagonal dedup, and the static kernel scratch bound. This isolates
// the two claims behind REPUTE's design:
//   1. DP seed selection produces fewer candidates than greedy/naive
//      partitions (quality);
//   2. the bounded exploration space cuts the scratch footprint vs the
//      full OSS at identical output (memory) — at the price of
//      recomputed frequency scans (time).

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "filter/candidates.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/optimal_seeder.hpp"
#include "filter/uniform_seeder.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    WorkloadConfig config = parse_workload_config(args);
    // Filtration-only sweep: a smaller read set suffices.
    config.n_reads = std::min<std::size_t>(config.n_reads, 1500);
    const auto workload = make_workload(config);

    const std::size_t n = 150;
    const std::uint32_t delta = 6;
    const auto& reads = workload.reads(n).batch.reads;

    std::printf("\n== Ablation: filtration strategies "
                "(n=%zu, delta=%u, %zu reads) ==\n",
                n, delta, reads.size());
    std::printf("%-12s %6s | %12s %10s | %11s %11s | %10s\n", "seeder",
                "s_min", "extends/read", "cells/read", "cand/read",
                "dedup/read", "scratch(B)");

    for (const std::uint32_t s_min : {12u, 16u, 20u}) {
        if ((delta + 1) * s_min > n) continue;
        std::vector<std::unique_ptr<filter::Seeder>> seeders;
        seeders.push_back(std::make_unique<filter::UniformSeeder>(s_min));
        seeders.push_back(
            std::make_unique<filter::HeuristicSeeder>(s_min));
        seeders.push_back(std::make_unique<filter::OptimalSeeder>(s_min));
        seeders.push_back(
            std::make_unique<filter::MemoryOptimizedSeeder>(s_min));

        for (const auto& seeder : seeders) {
            std::uint64_t extends = 0, cells = 0, cands = 0, dedup = 0;
            for (const auto& read : reads) {
                const auto plan = seeder->select(workload.fm(),
                                                 read.codes, delta);
                extends += plan.fm_extends;
                cells += plan.dp_cells;
                cands += plan.total_candidates;
                const auto set = filter::gather_candidates(
                    workload.fm(), plan, static_cast<std::uint32_t>(n),
                    delta, {});
                dedup += set.positions.size();
            }
            const auto count = static_cast<double>(reads.size());
            std::printf("%-12s %6u | %12.0f %10.0f | %11.1f %11.1f | "
                        "%10llu\n",
                        std::string(seeder->name()).c_str(), s_min,
                        static_cast<double>(extends) / count,
                        static_cast<double>(cells) / count,
                        static_cast<double>(cands) / count,
                        static_cast<double>(dedup) / count,
                        static_cast<unsigned long long>(
                            seeder->scratch_bound(n, delta)));
        }
        std::printf("\n");
    }
    std::printf("note: oss-full and repute-dp must agree on cand/read "
                "(identical partitions); repute-dp's scratch is the "
                "paper's memory optimization.\n");
    return 0;
}
