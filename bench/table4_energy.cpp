// Table IV — power and energy (§III-D / §IV).
//
// Two configurations, (n=100, delta=3) and (n=150, delta=5), on both
// systems. Protocol: average wall power during mapping minus idle,
// times mapping time. On System 1, REPUTE-all/CORAL-all split reads so
// the CPU and GPUs finish together (the paper picks splits mapping
// 480k/500k of 1M reads on the GPUs).
//
// Paper reference: System 1 mappers draw 240-490 W and burn 1.4-5.7 kJ;
// the HiKey970 tools draw ~8 W and burn 79-494 J — REPUTE-HiKey is the
// most frugal at 78.6 J / 212.6 J, a ~20-27x saving over the
// workstation.

#include <cstdio>

#include "bench_mappers.hpp"
#include "core/kernels.hpp"
#include "energy/energy_meter.hpp"
#include "filter/memopt_seeder.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    struct CaseSpec {
        std::size_t n;
        std::uint32_t delta;
    };
    const CaseSpec cases[] = {{100, 3}, {150, 5}};

    std::printf("\n== Table IV: power & energy per Sec. III-D ==\n");

    for (int system = 1; system <= 2; ++system) {
        auto platform = system == 1 ? ocl::Platform::system1()
                                    : ocl::Platform::system2();
        std::printf("-- %s (idle %.1f W) --\n", platform.name().c_str(),
                    platform.idle_watts());
        std::printf("%-14s", "mapper");
        for (const auto& c : cases) {
            std::printf(" | n=%zu d=%u: %8s %10s", c.n, c.delta, "P(W)",
                        "E(J)");
        }
        std::printf("\n");

        // Mapper line-up per system (Table IV compares the tools that
        // ran on both systems, plus the -all variants on System 1).
        struct Entry {
            std::string name;
            std::function<std::unique_ptr<core::Mapper>(std::size_t,
                                                        std::uint32_t)>
                make;
        };
        std::vector<Entry> entries;
        if (system == 1) {
            auto& cpu = platform.device("i7-2600");
            auto& gpu0 = platform.device("gtx590-0");
            auto& gpu1 = platform.device("gtx590-1");
            entries.push_back({"RazerS3",
                               [&](std::size_t, std::uint32_t) {
                                   return make_gold_standard(workload,
                                                              cpu);
                               }});
            entries.push_back({"Hobbes3",
                               [&](std::size_t, std::uint32_t) {
                                   return std::make_unique<
                                       baselines::Hobbes3Like>(
                                       workload.reference(), cpu, 1000,
                                       scaled_q(workload.reference().size(),
                                                11.0));
                               }});
            auto cpu_only = [&](bool dp) {
                return [&, dp](std::size_t n, std::uint32_t delta)
                           -> std::unique_ptr<core::Mapper> {
                    core::HeterogeneousMapperConfig config;
                    config.kernel.s_min = best_s_min(n, delta);
                    config.kernel.max_locations_per_read = 1000;
                    if (dp) {
                        return core::make_repute(workload.reference(),
                                                 workload.fm(),
                                                 {{&cpu, 1.0}}, config);
                    }
                    return core::make_coral(workload.reference(),
                                            workload.fm(), {{&cpu, 1.0}},
                                            config);
                };
            };
            auto hetero = [&](bool dp) {
                return [&, dp](std::size_t n, std::uint32_t delta)
                           -> std::unique_ptr<core::Mapper> {
                    core::HeterogeneousMapperConfig config;
                    config.kernel.s_min = best_s_min(n, delta);
                    config.kernel.max_locations_per_read = 1000;
                    const filter::MemoryOptimizedSeeder probe(
                        config.kernel.s_min);
                    const auto scratch =
                        core::kernel_scratch_bytes(probe, n, delta);
                    auto shares = core::balanced_shares(
                        {&cpu, &gpu0, &gpu1}, scratch);
                    if (dp) {
                        return core::make_repute(
                            workload.reference(), workload.fm(),
                            std::move(shares), config);
                    }
                    return core::make_coral(workload.reference(),
                                            workload.fm(),
                                            std::move(shares), config);
                };
            };
            entries.push_back({"CORAL-cpu", cpu_only(false)});
            entries.push_back({"CORAL-all", hetero(false)});
            entries.push_back({"REPUTE-cpu", cpu_only(true)});
            entries.push_back({"REPUTE-all", hetero(true)});
        } else {
            auto& a73 = platform.device("hikey970-a73");
            auto& a53 = platform.device("hikey970-a53");
            entries.push_back({"RazerS3",
                               [&](std::size_t, std::uint32_t) {
                                   return make_gold_standard(workload,
                                                              a73);
                               }});
            entries.push_back({"Hobbes3",
                               [&](std::size_t, std::uint32_t) {
                                   return std::make_unique<
                                       baselines::Hobbes3Like>(
                                       workload.reference(), a73, 1000,
                                       scaled_q(workload.reference().size(),
                                                11.0));
                               }});
            auto hetero = [&](bool dp) {
                return [&, dp](std::size_t n, std::uint32_t delta)
                           -> std::unique_ptr<core::Mapper> {
                    core::HeterogeneousMapperConfig config;
                    config.kernel.s_min = best_s_min(n, delta);
                    config.kernel.max_locations_per_read = 1000;
                    const filter::MemoryOptimizedSeeder probe(
                        config.kernel.s_min);
                    const auto scratch =
                        core::kernel_scratch_bytes(probe, n, delta);
                    auto shares =
                        core::balanced_shares({&a73, &a53}, scratch);
                    if (dp) {
                        return core::make_repute(
                            workload.reference(), workload.fm(),
                            std::move(shares), config);
                    }
                    return core::make_coral(workload.reference(),
                                            workload.fm(),
                                            std::move(shares), config);
                };
            };
            entries.push_back({"CORAL-HiKey", hetero(false)});
            entries.push_back({"REPUTE-HiKey", hetero(true)});
        }

        for (const auto& entry : entries) {
            std::printf("%-14s", entry.name.c_str());
            for (const auto& c : cases) {
                auto mapper = entry.make(c.n, c.delta);
                const auto result =
                    mapper->map(workload.reads(c.n).batch, c.delta);
                std::vector<energy::DeviceUsage> usage;
                for (const auto& run : result.device_runs) {
                    usage.push_back({platform.find(run.device_name),
                                     run.stats.seconds,
                                     run.power_scale});
                }
                const auto report = energy::measure(
                    result.mapping_seconds, usage, platform.idle_watts());
                std::printf(" |            %8.1f %10.2f",
                            report.average_power_watts,
                            report.energy_joules);
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    return 0;
}
