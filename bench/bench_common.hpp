#pragma once
// Shared workload and reporting plumbing for the paper-reproduction
// benches.
//
// Scale note: the paper maps 1M reads per read-length against human
// chromosome 21 (46.7 Mbp). The default bench workload is a 4 Mbp
// repeat-rich synthetic chromosome ("chr21-sim") and 20k reads per
// read-length so that the whole suite finishes in minutes; every bench
// accepts --genome/--reads/--seed to scale toward the paper. Reported
// times are *modeled device seconds* (see ocl::Device) — deterministic
// and host-independent; compare ratios and shapes against the paper,
// not absolute values.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/mapping.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "pipeline/mapping_api.hpp"
#include "util/args.hpp"

namespace repute::obs {
class TraceSession;
}

namespace repute::bench {

struct Workload {
    /// The reference + index fixture is built through the public
    /// MappingSession API (the same construction path the CLI and the
    /// daemon use); benches that drive mappers by hand borrow the
    /// session's reference and index via the accessors below.
    std::unique_ptr<pipeline::MappingSession> session;
    /// ERR012100_1 stand-in: n=100, errors up to 5 (mapped at delta 3-5).
    genomics::SimulatedReads reads100;
    /// SRR826460_1 stand-in: n=150, errors up to 7 (mapped at delta 5-7).
    genomics::SimulatedReads reads150;

    const genomics::Reference& reference() const {
        return session->multi().concatenated();
    }
    const index::FmIndex& fm() const { return session->fm(); }

    const genomics::SimulatedReads& reads(std::size_t n) const {
        return n == 100 ? reads100 : reads150;
    }
};

struct WorkloadConfig {
    std::size_t genome_length = 6'000'000;
    std::size_t n_reads = 4'000;
    std::uint64_t seed = 21;
    /// Repeat structure: chr21 is ~46% repeat-derived with young Alu
    /// families well under 5% divergence — the multiplicity those
    /// repeats give k-mers is what separates the filtration strategies.
    double repeat_fraction = 0.50;
    double repeat_divergence = 0.025;
};

/// Parses --genome/--reads/--seed (and --quick, which shrinks both by
/// 4x) into a WorkloadConfig.
WorkloadConfig parse_workload_config(const util::Args& args);

/// Verification-funnel escape hatches: --no-prefilter, --no-band,
/// --no-coalesce and --no-simd turn off individual layers (see
/// DESIGN.md "Verification funnel"). Every layer is output-neutral, so
/// these only exist for before/after timing and for debugging a
/// suspected funnel bug in the field.
struct FunnelToggles {
    bool prefilter = true;
    bool banded_verification = true;
    bool coalesce_windows = true;
    bool simd_verification = true;

    void apply(core::KernelConfig& kernel) const {
        kernel.prefilter = prefilter;
        kernel.banded_verification = banded_verification;
        kernel.coalesce_windows = coalesce_windows;
        kernel.simd_verification = simd_verification;
    }
};
FunnelToggles parse_funnel_toggles(const util::Args& args);

/// Installs host<->device link models on the devices: discrete GPUs get
/// a PCIe-gen2-class link (6 GB/s, 20 us latency), CPUs and embedded
/// SoCs a shared-memory-class link (12 GB/s, 5 us). Sweep benches call
/// this so modeled times include staging cost and the double-buffer
/// path actually has transfers to hide.
void apply_transfer_specs(const std::vector<ocl::Device*>& devices);
void apply_transfer_specs(ocl::Platform& platform);

/// Parses --no-double-buffer (default: double buffering on).
bool parse_double_buffer(const util::Args& args);

/// Builds the genome, index and both read sets. Prints progress to
/// stdout (benches are interactive tools).
Workload make_workload(const WorkloadConfig& config);

/// The paper's sweep: (read length, delta) cells of Tables I-III.
struct Cell {
    std::size_t read_length;
    std::uint32_t delta;
};
inline const std::vector<Cell>& paper_cells() {
    static const std::vector<Cell> cells = {{100, 3}, {100, 4}, {100, 5},
                                            {150, 5}, {150, 6}, {150, 7}};
    return cells;
}

/// One mapper row of a table: modeled time and accuracy per cell.
struct Row {
    std::string name;
    std::vector<double> time_s;
    std::vector<double> accuracy_pct;
};

/// Prints a paper-style table: header with the cells, one row per
/// mapper, "T(s) A(%)" pairs.
void print_table(const std::string& title, const std::vector<Row>& rows);

/// Prints a two-column series (figures 3/4).
void print_series(const std::string& title, const std::string& x_label,
                  const std::vector<double>& x,
                  const std::string& y_label,
                  const std::vector<double>& y);

/// `--trace out.json` support: when the flag is present, installs a
/// global obs::TraceSession for the scope's lifetime; the destructor
/// writes the Chrome-trace JSON (load in chrome://tracing or Perfetto)
/// to the given path and prints the per-stage summary to stdout.
/// Without the flag this is inert and the instrumented code keeps its
/// no-recorder fast path. Construct once at the top of main().
class ScopedTrace {
public:
    explicit ScopedTrace(const util::Args& args);
    ~ScopedTrace();
    ScopedTrace(const ScopedTrace&) = delete;
    ScopedTrace& operator=(const ScopedTrace&) = delete;

    bool active() const noexcept { return session_ != nullptr; }

private:
    std::string path_;
    std::unique_ptr<obs::TraceSession> session_;
};

} // namespace repute::bench
