#include "bench_common.hpp"

#include <cstdio>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace repute::bench {

WorkloadConfig parse_workload_config(const util::Args& args) {
    WorkloadConfig config;
    config.genome_length = static_cast<std::size_t>(
        args.get_int("genome", static_cast<std::int64_t>(
                                   config.genome_length)));
    config.n_reads = static_cast<std::size_t>(args.get_int(
        "reads", static_cast<std::int64_t>(config.n_reads)));
    config.seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(config.seed)));
    config.repeat_fraction =
        args.get_double("repeat-frac", config.repeat_fraction);
    config.repeat_divergence =
        args.get_double("divergence", config.repeat_divergence);
    if (args.get_bool("quick", false)) {
        config.genome_length /= 4;
        config.n_reads /= 4;
    }
    return config;
}

FunnelToggles parse_funnel_toggles(const util::Args& args) {
    FunnelToggles toggles;
    toggles.prefilter = !args.get_bool("no-prefilter", false);
    toggles.banded_verification = !args.get_bool("no-band", false);
    toggles.coalesce_windows = !args.get_bool("no-coalesce", false);
    toggles.simd_verification = !args.get_bool("no-simd", false);
    if (!toggles.prefilter || !toggles.banded_verification ||
        !toggles.coalesce_windows || !toggles.simd_verification) {
        std::printf(
            "# funnel layers: prefilter=%s banded=%s coalesce=%s simd=%s\n",
            toggles.prefilter ? "on" : "OFF",
            toggles.banded_verification ? "on" : "OFF",
            toggles.coalesce_windows ? "on" : "OFF",
            toggles.simd_verification ? "on" : "OFF");
    }
    return toggles;
}

void apply_transfer_specs(const std::vector<ocl::Device*>& devices) {
    ocl::TransferSpec pcie;
    pcie.bytes_per_second = 6e9; // PCIe gen2 x16 effective
    pcie.latency_seconds = 20e-6;
    ocl::TransferSpec shared;
    shared.bytes_per_second = 12e9; // host-visible / unified memory
    shared.latency_seconds = 5e-6;
    for (ocl::Device* device : devices) {
        device->set_transfer_spec(
            device->profile().type == ocl::DeviceType::Gpu ? pcie
                                                           : shared);
    }
}

void apply_transfer_specs(ocl::Platform& platform) {
    apply_transfer_specs(platform.devices());
}

bool parse_double_buffer(const util::Args& args) {
    const bool on = !args.get_bool("no-double-buffer", false);
    if (!on) std::printf("# double-buffered staging: OFF\n");
    return on;
}

Workload make_workload(const WorkloadConfig& config) {
    util::Stopwatch timer;
    std::printf("# workload: genome=%zu bp, reads=%zu per set, seed=%llu\n",
                config.genome_length, config.n_reads,
                static_cast<unsigned long long>(config.seed));

    genomics::GenomeSimConfig gconfig;
    gconfig.length = config.genome_length;
    gconfig.seed = config.seed;
    gconfig.interspersed_fraction = config.repeat_fraction;
    gconfig.repeat_divergence = config.repeat_divergence;
    gconfig.n_repeat_families = 16;
    genomics::Reference reference = genomics::simulate_genome(gconfig);
    std::printf("# genome simulated in %.1fs\n", timer.seconds());

    Workload w;
    w.session = pipeline::MappingSession::from_multi(
        genomics::MultiReference(std::move(reference)));
    std::printf("# FM-index built in %.1fs (%.1f MB)\n",
                w.session->index_seconds(),
                static_cast<double>(w.fm().memory_bytes()) / 1e6);

    genomics::ReadSimConfig r100;
    r100.n_reads = config.n_reads;
    r100.read_length = 100;
    r100.max_errors = 5;
    r100.seed = config.seed * 1000 + 100;
    w.reads100 = genomics::simulate_reads(w.reference(), r100);

    genomics::ReadSimConfig r150;
    r150.n_reads = config.n_reads;
    r150.read_length = 150;
    r150.max_errors = 7;
    r150.seed = config.seed * 1000 + 150;
    w.reads150 = genomics::simulate_reads(w.reference(), r150);
    return w;
}

void print_table(const std::string& title, const std::vector<Row>& rows) {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-14s", "mapper");
    for (const Cell& cell : paper_cells()) {
        std::printf(" | n=%zu d=%u        ", cell.read_length, cell.delta);
    }
    std::printf("\n%-14s", "");
    for (std::size_t i = 0; i < paper_cells().size(); ++i) {
        std::printf(" | %8s %8s", "T(s)", "A(%)");
    }
    std::printf("\n");
    for (const Row& row : rows) {
        std::printf("%-14s", row.name.c_str());
        for (std::size_t i = 0; i < row.time_s.size(); ++i) {
            std::printf(" | %8.3f %8.2f", row.time_s[i],
                        row.accuracy_pct[i]);
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

ScopedTrace::ScopedTrace(const util::Args& args)
    : path_(args.get_string("trace", "")) {
    if (!path_.empty()) {
        session_ = std::make_unique<obs::TraceSession>();
        std::printf("# tracing enabled, writing %s on exit\n",
                    path_.c_str());
    }
}

ScopedTrace::~ScopedTrace() {
    if (!session_) return;
    const std::string json = obs::chrome_trace_json(session_->recorder());
    if (std::FILE* f = std::fopen(path_.c_str(), "wb")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\n# trace written to %s (%zu bytes) — open in "
                    "chrome://tracing or https://ui.perfetto.dev\n",
                    path_.c_str(), json.size());
    } else {
        std::fprintf(stderr, "# ERROR: cannot write trace to %s\n",
                     path_.c_str());
    }
    std::printf("\n== per-stage summary ==\n%s",
                obs::stage_summary(session_->recorder(),
                                   &session_->registry())
                    .c_str());
    const std::string xfer = obs::xfer_summary(session_->registry());
    if (!xfer.empty()) {
        std::printf("\n== host<->device transfers ==\n%s", xfer.c_str());
    }
    std::fflush(stdout);
}

void print_series(const std::string& title, const std::string& x_label,
                  const std::vector<double>& x,
                  const std::string& y_label,
                  const std::vector<double>& y) {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%16s %16s\n", x_label.c_str(), y_label.c_str());
    for (std::size_t i = 0; i < x.size(); ++i) {
        std::printf("%16.0f %16.4f\n", x[i], y[i]);
    }
    std::fflush(stdout);
}

} // namespace repute::bench
