// Table III — embedded scenario on the HiKey970 SoC (§III-C / §IV).
//
// Only the tools the authors could run on the board are compared:
// RazerS3, Hobbes3 (on the SoC's CPU clusters) and CORAL/REPUTE (OpenCL
// across the A73 and A53 clusters). Accuracy protocol as in Table II.
//
// Paper reference: REPUTE is up to 4x faster than RazerS3 and beats or
// matches Hobbes3 and CORAL; everything is ~3-5x slower than the
// workstation, but (Table IV) at ~30x lower power.

#include <cstdio>

#include "bench_mappers.hpp"
#include "core/accuracy.hpp"
#include "core/kernels.hpp"
#include "filter/memopt_seeder.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system2();
    apply_transfer_specs(platform);
    const bool double_buffer = parse_double_buffer(args);
    auto& a73 = platform.device("hikey970-a73");
    auto& a53 = platform.device("hikey970-a53");

    // The hand-threaded baselines schedule across all eight cores; the
    // closest device model is both clusters sharing the reads in
    // proportion to their throughput. We run them on the A73 cluster
    // plus the A53 via the same time model the OpenCL tools use.
    auto cluster_shares = [&](std::uint64_t scratch) {
        return core::balanced_shares({&a73, &a53}, scratch);
    };

    std::vector<MapperSpec> specs;
    // RazerS3 and Hobbes3 use a single-device chassis; model the SoC's
    // eight cores with the A73+A53 balanced split applied to REPUTE and
    // CORAL, and the big cluster alone for the pthread tools (they pin
    // to the fast cores under Linux's scheduler for compute-bound work,
    // with the A53s contributing little).
    specs.push_back(
        {"RazerS3", [&workload, &a73](std::size_t, std::uint32_t) {
             return make_gold_standard(workload, a73);
         }});
    specs.push_back(
        {"Hobbes3", [&workload, &a73](std::size_t, std::uint32_t) {
             return std::make_unique<baselines::Hobbes3Like>(
                 workload.reference(), a73, 1000,
                 scaled_q(workload.reference().size(), 11.0));
         }});
    const FunnelToggles toggles = parse_funnel_toggles(args);
    auto hetero_spec = [&](const std::string& name, bool dp) {
        return MapperSpec{
            name, [&workload, cluster_shares, dp, toggles,
                   double_buffer](std::size_t n, std::uint32_t delta)
                      -> std::unique_ptr<core::Mapper> {
                const std::uint32_t s_min = best_s_min(n, delta);
                const filter::MemoryOptimizedSeeder probe(s_min);
                const auto scratch =
                    core::kernel_scratch_bytes(probe, n, delta);
                core::HeterogeneousMapperConfig config;
                config.kernel.s_min = s_min;
                config.kernel.max_locations_per_read = 1000;
                config.double_buffer = double_buffer;
                toggles.apply(config.kernel);
                if (dp) {
                    return core::make_repute(
                        workload.reference(), workload.fm(),
                        cluster_shares(scratch), config);
                }
                return core::make_coral(workload.reference(), workload.fm(),
                                        cluster_shares(scratch), config);
            }};
    };
    specs.push_back(hetero_spec("CORAL-HiKey", /*dp=*/false));
    specs.push_back(hetero_spec("REPUTE-HiKey", /*dp=*/true));

    std::vector<core::MapResult> gold;
    {
        auto razers = make_gold_standard(workload, a73);
        for (const Cell& cell : paper_cells()) {
            gold.push_back(
                razers->map(workload.reads(cell.read_length).batch,
                           cell.delta));
        }
    }

    std::vector<Row> rows;
    for (const MapperSpec& spec : specs) {
        Row row{spec.name, {}, {}};
        for (std::size_t c = 0; c < paper_cells().size(); ++c) {
            const Cell& cell = paper_cells()[c];
            auto mapper = spec.make(cell.read_length, cell.delta);
            const auto result = mapper->map(
                workload.reads(cell.read_length).batch, cell.delta);
            core::AccuracyConfig acc;
            acc.position_tolerance = cell.delta;
            row.time_s.push_back(result.mapping_seconds);
            row.accuracy_pct.push_back(
                core::any_best_accuracy(gold[c], result, acc));
            std::printf("# %-12s n=%zu d=%u  T=%.3fs A=%.2f%%\n",
                        spec.name.c_str(), cell.read_length, cell.delta,
                        result.mapping_seconds, row.accuracy_pct.back());
            std::fflush(stdout);
        }
        rows.push_back(std::move(row));
    }

    print_table("Table III: embedded HiKey970 SoC, modeled seconds, "
                "any-best accuracy per Sec. III-C",
                rows);
    return 0;
}
