// Streaming pipeline vs monolithic wall clock.
//
//   pipeline_throughput [--quick] [--genome N] [--reads N] [--seed S]
//                       [--n 100|150] [--delta D] [--batch-size N]
//                       [--queue-depth N] [--threads N] [--repeats N]
//                       [--trace out.json] [--xfer]
//
// --xfer switches to the transfer-overlap fixture: a transfer-heavy
// single-device workload (link bandwidth calibrated so staging a chunk
// costs as much as computing it) mapped twice — double-buffered and
// with --no-double-buffer semantics — byte-comparing the SAM and
// printing the modeled-time ratio as `xfer_speedup:` (CI gates on it).
//
// Both paths do the same end-to-end work on the table 1 workload —
// parse FASTQ, map, emit SAM — and their outputs are byte-compared
// (the run fails if they ever diverge). The monolithic path is
// examples/map_fastq's shape: read everything, one map() call, one
// emit pass. The streaming path is the repute CLI's shape: chunked
// parsing, --threads mapper workers, ordered emission, all overlapped
// through bounded queues. The difference is real host wall clock, so
// the win scales with available cores (parse/map/emit overlap); on a
// single-core host expect parity, not regression.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/paired.hpp"
#include "genomics/multi_reference.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

std::string to_fastq_text(const genomics::SimulatedReads& sim) {
    std::ostringstream out;
    genomics::write_fastq(out, genomics::to_fastq_records(sim));
    return out.str();
}

/// Transfer-overlap fixture (--xfer): same mapping twice on a modeled
/// slow link, with and without double-buffered staging. The fixture
/// keeps the resident image small (tiny genome) and the chunk count
/// high (fixed 256-read chunks) so steady-state staging dominates, and
/// calibrates the link so staging a chunk costs exactly one chunk's
/// compute — the regime double buffering is built for.
int run_xfer_bench(const util::Args& args) {
    bench::WorkloadConfig wconfig;
    wconfig.genome_length = 200'000;
    wconfig.n_reads = 8'000;
    wconfig.seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
    if (args.get_bool("quick", false)) {
        wconfig.genome_length /= 4;
        wconfig.n_reads /= 4;
    }
    const auto workload = bench::make_workload(wconfig);
    const std::size_t n = 100;
    const std::uint32_t delta = 5;
    const auto& batch = workload.reads100.batch;

    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = 14;
    // Small output cap keeps the d2h drain below the h2d stage, so the
    // calibrated link's bottleneck is the staging we want to overlap.
    config.kernel.max_locations_per_read = 4;
    config.schedule = core::ScheduleMode::Dynamic;
    config.scheduler.chunk_items = 256;

    const genomics::MultiReference multi(
        {{workload.reference().name(),
          workload.reference().sequence().to_string()}});
    pipeline::SamEmitterConfig emit_config;
    emit_config.delta = delta;

    const auto run_once = [&](const ocl::TransferSpec& spec,
                              bool double_buffer, std::string* sam_out) {
        ocl::Device device(ocl::profile_i7_2600());
        device.set_transfer_spec(spec);
        auto cfg = config;
        cfg.double_buffer = double_buffer;
        auto mapper =
            core::make_repute(workload.reference(), workload.fm(),
                              {{&device, 1.0}}, cfg);
        auto result = mapper->map(batch, delta);
        if (sam_out != nullptr) {
            std::ostringstream sam;
            pipeline::SamEmitter emitter(sam, multi, emit_config);
            emitter.write_header();
            emitter.emit(batch, result);
            *sam_out = sam.str();
        }
        return result;
    };

    // Calibration: an unmodeled run gives the pure per-chunk compute
    // time; pick the link speed that makes staging a chunk cost the
    // same (modeled time is deterministic, so this is reproducible).
    std::string sam_reference;
    const auto baseline =
        run_once(ocl::TransferSpec{}, true, &sam_reference);
    const std::size_t chunks = baseline.schedule->chunks;
    const double per_chunk =
        baseline.mapping_seconds / static_cast<double>(chunks);
    ocl::TransferSpec link;
    link.bytes_per_second =
        static_cast<double>(config.scheduler.chunk_items * n) / per_chunk;
    std::printf("xfer fixture: %zu reads, %zu chunks, %.4fs compute, "
                "link %.2f MB/s\n",
                batch.size(), chunks, baseline.mapping_seconds,
                link.bytes_per_second / 1e6);

    std::string sam_serial, sam_double;
    const auto serial = run_once(link, false, &sam_serial);
    const auto doubled = run_once(link, true, &sam_double);

    if (sam_serial != sam_reference || sam_double != sam_reference) {
        std::fprintf(stderr,
                     "FAIL: staged SAM diverges from the unmodeled "
                     "reference (serial %zu, double %zu, ref %zu "
                     "bytes)\n",
                     sam_serial.size(), sam_double.size(),
                     sam_reference.size());
        return 1;
    }
    std::printf("outputs byte-identical across staging modes (%zu "
                "bytes)  [OK]\n",
                sam_reference.size());
    std::printf("staged %.1f MB h2d, drained %.1f MB d2h per run\n",
                static_cast<double>(doubled.bytes_staged()) / 1e6,
                static_cast<double>(doubled.bytes_drained()) / 1e6);
    std::printf("serialized      T=%.4fs  overlap=%.3f\n",
                serial.mapping_seconds, serial.transfer_overlap_ratio());
    std::printf("double-buffered T=%.4fs  overlap=%.3f\n",
                doubled.mapping_seconds,
                doubled.transfer_overlap_ratio());
    std::printf("xfer_speedup: %.3f\n",
                serial.mapping_seconds / doubled.mapping_seconds);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const bench::ScopedTrace trace(args);
    if (args.get_bool("xfer", false)) return run_xfer_bench(args);
    const auto workload_config = bench::parse_workload_config(args);
    const auto n = static_cast<std::size_t>(args.get_int("n", 100));
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const auto batch_size =
        static_cast<std::size_t>(args.get_int("batch-size", 2048));
    const auto threads =
        static_cast<std::size_t>(args.get_int("threads", 2));
    const auto repeats =
        static_cast<std::size_t>(args.get_int("repeats", 3));
    pipeline::PipelineConfig pipe_config;
    pipe_config.queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth", 4));

    const auto workload = bench::make_workload(workload_config);
    const genomics::MultiReference multi(
        {{workload.reference().name(),
          workload.reference().sequence().to_string()}});
    const std::string fastq = to_fastq_text(workload.reads(n));
    std::printf("workload: n=%zu delta=%u, %zu reads, FASTQ %.1f MB, "
                "batch %zu, %zu worker(s), queue depth %zu\n",
                n, delta, workload.reads(n).batch.size(),
                static_cast<double>(fastq.size()) / 1e6, batch_size,
                threads, pipe_config.queue_depth);

    core::HeterogeneousMapperConfig mapper_config;
    mapper_config.kernel.s_min = 14;
    const auto make_mapper = [&](ocl::Device& device) {
        return core::make_repute(workload.reference(), workload.fm(),
                                 {{&device, 1.0}}, mapper_config);
    };
    pipeline::SamEmitterConfig emit_config;
    emit_config.delta = delta;

    // Monolithic: parse everything, then map, then emit.
    double mono_best = 1e300;
    std::string mono_sam;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        ocl::Device device(ocl::profile_i7_2600());
        auto mapper = make_mapper(device);
        std::ostringstream sam;
        util::Stopwatch timer;
        std::istringstream in(fastq);
        const auto batch =
            genomics::to_read_batch(genomics::read_fastq(in));
        const auto result = mapper->map(batch, delta);
        pipeline::SamEmitter emitter(sam, multi, emit_config);
        emitter.write_header();
        emitter.emit(batch, result);
        mono_best = std::min(mono_best, timer.seconds());
        mono_sam = sam.str();
    }

    // Streaming: the same work overlapped through the pipeline.
    double stream_best = 1e300;
    std::string stream_sam;
    pipeline::PipelineStats stream_stats;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::vector<std::unique_ptr<ocl::Device>> devices;
        std::vector<std::unique_ptr<core::HeterogeneousMapper>> owned;
        std::vector<core::Mapper*> mappers;
        for (std::size_t t = 0; t < threads; ++t) {
            devices.push_back(
                std::make_unique<ocl::Device>(ocl::profile_i7_2600()));
            owned.push_back(make_mapper(*devices.back()));
            mappers.push_back(owned.back().get());
        }
        std::ostringstream sam;
        util::Stopwatch timer;
        std::istringstream in(fastq);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = batch_size;
        pipeline::StreamingFastxReader reader(in, reader_config);
        pipeline::SamEmitter emitter(sam, multi, emit_config);
        emitter.write_header();
        const auto stats = pipeline::run_mapping_pipeline(
            reader, mappers, delta,
            [&](std::size_t, const genomics::ReadBatch& batch,
                const core::MapResult& result) {
                emitter.emit(batch, result);
            },
            pipe_config);
        stream_best = std::min(stream_best, timer.seconds());
        stream_sam = sam.str();
        stream_stats = stats;
    }

    if (mono_sam != stream_sam) {
        std::fprintf(stderr,
                     "FAIL: streaming SAM diverges from monolithic "
                     "(%zu vs %zu bytes)\n",
                     stream_sam.size(), mono_sam.size());
        return 1;
    }
    std::printf("outputs byte-identical (%zu bytes)  [OK]\n",
                mono_sam.size());
    std::printf("%s", stream_stats.format().c_str());
    const double speedup =
        mono_best > 0.0 ? (mono_best / stream_best - 1.0) * 100.0 : 0.0;
    std::printf("monolithic  best of %zu: %8.3f s\n", repeats, mono_best);
    std::printf("streaming   best of %zu: %8.3f s  (%+.1f%% throughput)\n",
                repeats, stream_best, speedup);
    return 0;
}
