// Streaming pipeline vs monolithic wall clock.
//
//   pipeline_throughput [--quick] [--genome N] [--reads N] [--seed S]
//                       [--n 100|150] [--delta D] [--batch-size N]
//                       [--queue-depth N] [--threads N] [--repeats N]
//                       [--trace out.json]
//
// Both paths do the same end-to-end work on the table 1 workload —
// parse FASTQ, map, emit SAM — and their outputs are byte-compared
// (the run fails if they ever diverge). The monolithic path is
// examples/map_fastq's shape: read everything, one map() call, one
// emit pass. The streaming path is the repute CLI's shape: chunked
// parsing, --threads mapper workers, ordered emission, all overlapped
// through bounded queues. The difference is real host wall clock, so
// the win scales with available cores (parse/map/emit overlap); on a
// single-core host expect parity, not regression.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/paired.hpp"
#include "genomics/multi_reference.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

std::string to_fastq_text(const genomics::SimulatedReads& sim) {
    std::ostringstream out;
    genomics::write_fastq(out, genomics::to_fastq_records(sim));
    return out.str();
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const bench::ScopedTrace trace(args);
    const auto workload_config = bench::parse_workload_config(args);
    const auto n = static_cast<std::size_t>(args.get_int("n", 100));
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const auto batch_size =
        static_cast<std::size_t>(args.get_int("batch-size", 2048));
    const auto threads =
        static_cast<std::size_t>(args.get_int("threads", 2));
    const auto repeats =
        static_cast<std::size_t>(args.get_int("repeats", 3));
    pipeline::PipelineConfig pipe_config;
    pipe_config.queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth", 4));

    const auto workload = bench::make_workload(workload_config);
    const genomics::MultiReference multi(
        {{workload.reference().name(),
          workload.reference().sequence().to_string()}});
    const std::string fastq = to_fastq_text(workload.reads(n));
    std::printf("workload: n=%zu delta=%u, %zu reads, FASTQ %.1f MB, "
                "batch %zu, %zu worker(s), queue depth %zu\n",
                n, delta, workload.reads(n).batch.size(),
                static_cast<double>(fastq.size()) / 1e6, batch_size,
                threads, pipe_config.queue_depth);

    core::HeterogeneousMapperConfig mapper_config;
    mapper_config.kernel.s_min = 14;
    const auto make_mapper = [&](ocl::Device& device) {
        return core::make_repute(workload.reference(), workload.fm(),
                                 {{&device, 1.0}}, mapper_config);
    };
    pipeline::SamEmitterConfig emit_config;
    emit_config.delta = delta;

    // Monolithic: parse everything, then map, then emit.
    double mono_best = 1e300;
    std::string mono_sam;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        ocl::Device device(ocl::profile_i7_2600());
        auto mapper = make_mapper(device);
        std::ostringstream sam;
        util::Stopwatch timer;
        std::istringstream in(fastq);
        const auto batch =
            genomics::to_read_batch(genomics::read_fastq(in));
        const auto result = mapper->map(batch, delta);
        pipeline::SamEmitter emitter(sam, multi, emit_config);
        emitter.write_header();
        emitter.emit(batch, result);
        mono_best = std::min(mono_best, timer.seconds());
        mono_sam = sam.str();
    }

    // Streaming: the same work overlapped through the pipeline.
    double stream_best = 1e300;
    std::string stream_sam;
    pipeline::PipelineStats stream_stats;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::vector<std::unique_ptr<ocl::Device>> devices;
        std::vector<std::unique_ptr<core::HeterogeneousMapper>> owned;
        std::vector<core::Mapper*> mappers;
        for (std::size_t t = 0; t < threads; ++t) {
            devices.push_back(
                std::make_unique<ocl::Device>(ocl::profile_i7_2600()));
            owned.push_back(make_mapper(*devices.back()));
            mappers.push_back(owned.back().get());
        }
        std::ostringstream sam;
        util::Stopwatch timer;
        std::istringstream in(fastq);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = batch_size;
        pipeline::StreamingFastxReader reader(in, reader_config);
        pipeline::SamEmitter emitter(sam, multi, emit_config);
        emitter.write_header();
        const auto stats = pipeline::run_mapping_pipeline(
            reader, mappers, delta,
            [&](std::size_t, const genomics::ReadBatch& batch,
                const core::MapResult& result) {
                emitter.emit(batch, result);
            },
            pipe_config);
        stream_best = std::min(stream_best, timer.seconds());
        stream_sam = sam.str();
        stream_stats = stats;
    }

    if (mono_sam != stream_sam) {
        std::fprintf(stderr,
                     "FAIL: streaming SAM diverges from monolithic "
                     "(%zu vs %zu bytes)\n",
                     stream_sam.size(), mono_sam.size());
        return 1;
    }
    std::printf("outputs byte-identical (%zu bytes)  [OK]\n",
                mono_sam.size());
    std::printf("%s", stream_stats.format().c_str());
    const double speedup =
        mono_best > 0.0 ? (mono_best / stream_best - 1.0) * 100.0 : 0.0;
    std::printf("monolithic  best of %zu: %8.3f s\n", repeats, mono_best);
    std::printf("streaming   best of %zu: %8.3f s  (%+.1f%% throughput)\n",
                repeats, stream_best, speedup);
    return 0;
}
