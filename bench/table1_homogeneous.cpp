// Table I — homogeneous scenario (§III-A / §IV).
//
// Every mapper runs on the workstation CPU alone. The gold standard is
// RazerS3 (all-mapper, lossless q-gram filter, 100 locations/read);
// accuracy is the §III-A protocol: the percentage of gold-standard
// locations (position within delta, same strand) the mapper also
// reports. Times are modeled i7-2600 seconds.
//
// Paper reference (2M real reads, chr21): REPUTE-cpu beats RazerS3,
// Yara, BWA-MEM at every cell (up to 13x vs Yara), beats Hobbes3/GEM
// except (100,5), and beats CORAL especially at long reads / high
// delta, with accuracy >= 99.9%.

#include <cstdio>

#include "bench_mappers.hpp"
#include "core/accuracy.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");

    const FunnelToggles toggles = parse_funnel_toggles(args);
    std::vector<MapperSpec> specs = baseline_specs(workload, cpu);
    specs.push_back(
        coral_spec(workload, {{&cpu, 1.0}}, "CORAL-cpu", toggles));
    specs.push_back(
        repute_spec(workload, {{&cpu, 1.0}}, "REPUTE-cpu", toggles));

    // Gold standard per cell (RazerS3 result, reused for every mapper).
    std::vector<core::MapResult> gold;
    {
        auto razers = make_gold_standard(workload, cpu);
        for (const Cell& cell : paper_cells()) {
            gold.push_back(
                razers->map(workload.reads(cell.read_length).batch,
                           cell.delta));
        }
    }

    std::vector<Row> rows;
    for (const MapperSpec& spec : specs) {
        Row row{spec.name, {}, {}};
        for (std::size_t c = 0; c < paper_cells().size(); ++c) {
            const Cell& cell = paper_cells()[c];
            auto mapper = spec.make(cell.read_length, cell.delta);
            const auto result = mapper->map(
                workload.reads(cell.read_length).batch, cell.delta);
            core::AccuracyConfig acc;
            acc.position_tolerance = cell.delta;
            row.time_s.push_back(result.mapping_seconds);
            row.accuracy_pct.push_back(
                core::all_locations_accuracy(gold[c], result, acc));
            std::printf("# %-10s n=%zu d=%u  T=%.3fs A=%.2f%%\n",
                        spec.name.c_str(), cell.read_length, cell.delta,
                        result.mapping_seconds, row.accuracy_pct.back());
            std::fflush(stdout);
        }
        rows.push_back(std::move(row));
    }

    print_table("Table I: homogeneous (CPU-only), modeled i7-2600 "
                "seconds, accuracy per Sec. III-A",
                rows);
    return 0;
}
