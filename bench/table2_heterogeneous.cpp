// Table II — heterogeneous scenario (§III-B / §IV).
//
// REPUTE-all and CORAL-all distribute the reads across the CPU and both
// GTX 590s (task-parallel queues); the other tools remain CPU-bound.
// Accuracy switches to the Rabema-style any-best protocol: a read
// counts when at least one gold-standard location+strand is recovered.
//
// Paper reference: REPUTE-all gains up to ~2x over REPUTE-cpu from the
// GPUs (7x total vs Hobbes3 at long reads / low error), with any-best
// accuracy ~100%; Yara/BWA also score ~95-100% here (unlike Table I)
// because they do find the best location.

#include <cstdio>

#include "bench_mappers.hpp"
#include "core/accuracy.hpp"
#include "core/kernels.hpp"
#include "filter/memopt_seeder.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system1();
    apply_transfer_specs(platform);
    const bool double_buffer = parse_double_buffer(args);
    auto& cpu = platform.device("i7-2600");
    auto& gpu0 = platform.device("gtx590-0");
    auto& gpu1 = platform.device("gtx590-1");

    const FunnelToggles toggles = parse_funnel_toggles(args);
    std::vector<MapperSpec> specs = baseline_specs(workload, cpu);
    specs.push_back(
        coral_spec(workload, {{&cpu, 1.0}}, "CORAL-cpu", toggles));
    specs.push_back(
        repute_spec(workload, {{&cpu, 1.0}}, "REPUTE-cpu", toggles));

    // Heterogeneous line-up: shares balanced by occupancy-adjusted
    // throughput for each cell's kernel scratch requirement.
    auto hetero_spec = [&](const std::string& name, bool dp) {
        return MapperSpec{
            name, [&workload, &cpu, &gpu0, &gpu1, dp, name, toggles,
                   double_buffer](std::size_t n, std::uint32_t delta)
                      -> std::unique_ptr<core::Mapper> {
                const std::uint32_t s_min = best_s_min(n, delta);
                const filter::MemoryOptimizedSeeder probe(s_min);
                const auto scratch =
                    core::kernel_scratch_bytes(probe, n, delta);
                auto shares = core::balanced_shares(
                    {&cpu, &gpu0, &gpu1}, scratch);
                core::HeterogeneousMapperConfig config;
                config.kernel.s_min = s_min;
                config.kernel.max_locations_per_read = 1000;
                config.double_buffer = double_buffer;
                toggles.apply(config.kernel);
                if (dp) {
                    return core::make_repute(workload.reference(),
                                             workload.fm(),
                                             std::move(shares), config);
                }
                return core::make_coral(workload.reference(), workload.fm(),
                                        std::move(shares), config);
            }};
    };
    specs.push_back(hetero_spec("CORAL-all", /*dp=*/false));
    specs.push_back(hetero_spec("REPUTE-all", /*dp=*/true));

    std::vector<core::MapResult> gold;
    {
        auto razers = make_gold_standard(workload, cpu);
        for (const Cell& cell : paper_cells()) {
            gold.push_back(
                razers->map(workload.reads(cell.read_length).batch,
                           cell.delta));
        }
    }

    std::vector<Row> rows;
    for (const MapperSpec& spec : specs) {
        Row row{spec.name, {}, {}};
        for (std::size_t c = 0; c < paper_cells().size(); ++c) {
            const Cell& cell = paper_cells()[c];
            auto mapper = spec.make(cell.read_length, cell.delta);
            const auto result = mapper->map(
                workload.reads(cell.read_length).batch, cell.delta);
            core::AccuracyConfig acc;
            acc.position_tolerance = cell.delta;
            row.time_s.push_back(result.mapping_seconds);
            row.accuracy_pct.push_back(
                core::any_best_accuracy(gold[c], result, acc));
            std::printf("# %-10s n=%zu d=%u  T=%.3fs A=%.2f%%\n",
                        spec.name.c_str(), cell.read_length, cell.delta,
                        result.mapping_seconds, row.accuracy_pct.back());
            std::fflush(stdout);
        }
        rows.push_back(std::move(row));
    }

    print_table("Table II: heterogeneous (CPU + 2x GTX 590), modeled "
                "seconds, any-best accuracy per Sec. III-B",
                rows);
    return 0;
}
