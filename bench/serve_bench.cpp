// Persistent-service load bench: in-process index construction vs
// zero-copy .rix mmap load (DESIGN.md "Serving mode").
//
//   serve_bench [--quick] [--genome N] [--reads N] [--seed S]
//               [--delta D] [--repeats N] [--min-speedup X]
//               [--out BENCH_serve.json] [--trace out.json]
//
// Builds the bench workload through MappingSession::from_multi (timing
// the index construction), serializes the session's index to a .rix
// container, then opens it with MappingSession::from_rix `--repeats`
// times (timing mmap + checksum validation, best-of). Both sessions map
// the same FASTQ payload and the SAM outputs are byte-compared — the
// run fails on any divergence. Results land in --out as flat JSON; with
// --min-speedup the run additionally fails when load is not at least
// that many times faster than construction (the CI serve tier passes
// 10, the acceptance floor).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "genomics/read_sim.hpp"
#include "index/rix.hpp"
#include "pipeline/mapping_api.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

std::string to_fastq_text(const genomics::SimulatedReads& sim) {
    std::ostringstream out;
    genomics::write_fastq(out, genomics::to_fastq_records(sim));
    return out.str();
}

std::string map_all(pipeline::MappingSession& session,
                    const std::string& fastq, std::uint32_t delta,
                    pipeline::MapResponse* response_out = nullptr) {
    std::istringstream in(fastq);
    pipeline::MapRequest request;
    request.reads = &in;
    request.delta = delta;
    std::ostringstream sam;
    const auto response = session.map(request, sam);
    if (response_out != nullptr) *response_out = response;
    return sam.str();
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const bench::ScopedTrace trace(args);
    bench::WorkloadConfig config = bench::parse_workload_config(args);
    config.n_reads = std::min<std::size_t>(config.n_reads, 2000);
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const auto repeats =
        static_cast<std::size_t>(args.get_int("repeats", 5));
    const double min_speedup = args.get_double("min-speedup", 0.0);
    const std::string out_path =
        args.get_string("out", "BENCH_serve.json");

    // Construction path: MappingSession::from_multi builds the FM-index
    // in-process and reports the build time.
    const auto workload = bench::make_workload(config);
    const double build_seconds = workload.session->index_seconds();

    const std::string rix_path = out_path + ".rix";
    util::Stopwatch timer;
    index::write_rix(rix_path, workload.session->multi(),
                     workload.fm());
    const double write_seconds = timer.seconds();

    // Serving path: mmap + checksum the container, best-of `repeats`.
    double load_seconds = 1e300;
    std::unique_ptr<pipeline::MappingSession> served;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        served = pipeline::MappingSession::from_rix(rix_path);
        load_seconds = std::min(load_seconds, served->index_seconds());
    }

    const std::string fastq = to_fastq_text(workload.reads100);
    const std::string built_sam =
        map_all(*workload.session, fastq, delta);
    // Steady-state request on the serving session: its staged/drained
    // bytes are what every request of this shape moves over the
    // host<->device link.
    pipeline::MapResponse served_response;
    const std::string served_sam =
        map_all(*served, fastq, delta, &served_response);
    const bool byte_identical = built_sam == served_sam;

    const double speedup =
        load_seconds > 0.0 ? build_seconds / load_seconds : 0.0;
    std::printf("\n== serve_bench: .rix load vs in-process build ==\n");
    std::printf("genome          %12zu bp\n",
                workload.reference().size());
    std::printf("index build     %12.4f s\n", build_seconds);
    std::printf(".rix write      %12.4f s\n", write_seconds);
    std::printf(".rix mmap load  %12.4f s   (best of %zu)\n",
                load_seconds, repeats);
    std::printf("load speedup    %12.1fx\n", speedup);
    std::printf("mapped bytes    %12zu\n", served->mapped_bytes());
    std::printf("resident bytes  %12zu\n", served->resident_bytes());
    std::printf("SAM identical   %12s   (%zu bytes, %zu reads)\n",
                byte_identical ? "yes" : "NO",
                built_sam.size(), workload.reads100.batch.size());
    std::printf("request h2d     %12llu bytes staged\n",
                static_cast<unsigned long long>(
                    served_response.xfer_bytes_staged));
    std::printf("request d2h     %12llu bytes drained\n",
                static_cast<unsigned long long>(
                    served_response.xfer_bytes_drained));

    if (std::FILE* f = std::fopen(out_path.c_str(), "wb")) {
        std::fprintf(
            f,
            "{\n"
            "  \"genome_bp\": %zu,\n"
            "  \"reads\": %zu,\n"
            "  \"delta\": %u,\n"
            "  \"build_seconds\": %.6f,\n"
            "  \"rix_write_seconds\": %.6f,\n"
            "  \"load_seconds\": %.6f,\n"
            "  \"load_speedup\": %.2f,\n"
            "  \"mapped_bytes\": %zu,\n"
            "  \"resident_bytes\": %zu,\n"
            "  \"request_xfer_bytes_staged\": %llu,\n"
            "  \"request_xfer_bytes_drained\": %llu,\n"
            "  \"sam_byte_identical\": %s\n"
            "}\n",
            workload.reference().size(),
            workload.reads100.batch.size(), delta, build_seconds,
            write_seconds, load_seconds, speedup,
            served->mapped_bytes(), served->resident_bytes(),
            static_cast<unsigned long long>(
                served_response.xfer_bytes_staged),
            static_cast<unsigned long long>(
                served_response.xfer_bytes_drained),
            byte_identical ? "true" : "false");
        std::fclose(f);
        std::printf("# wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "serve_bench: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::remove(rix_path.c_str());

    if (!byte_identical) {
        std::fprintf(stderr,
                     "serve_bench: FAIL — served SAM diverges from "
                     "in-process SAM\n");
        return 1;
    }
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "serve_bench: FAIL — load speedup %.1fx below "
                     "required %.1fx\n",
                     speedup, min_speedup);
        return 1;
    }
    return 0;
}
