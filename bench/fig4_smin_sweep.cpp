// Figure 4 — mapping time vs minimum k-mer length (§IV).
//
// Configuration from the paper: n=100, delta=4, fixed split (820k reads
// on the CPU, 90k on each GPU, scaled here). Small s_min => a large DP
// exploration space: better seeds but more filtration work and a larger
// kernel footprint (lower GPU occupancy). Large s_min => the DP has no
// room to optimize, candidate counts grow and verification dominates.
// The paper's curve is high at s_min=14, dips around 16-18, and rises
// again at 20.

#include <cstdio>

#include "bench_common.hpp"
#include "bench_mappers.hpp"
#include "core/kernels.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");
    auto& gpu0 = platform.device("gtx590-0");
    auto& gpu1 = platform.device("gtx590-1");

    const std::size_t n = 100;
    const std::uint32_t delta = 4;
    const auto& batch = workload.reads(n).batch;

    // Paper split: 82% CPU, 9% per GPU.
    const std::vector<core::DeviceShare> shares = {
        {&cpu, 0.82}, {&gpu0, 0.09}, {&gpu1, 0.09}};

    std::vector<double> x, y;
    for (std::uint32_t s_min = 10; s_min * (delta + 1) <= n; s_min += 2) {
        core::HeterogeneousMapperConfig config;
        config.kernel.s_min = s_min;
        config.kernel.max_locations_per_read = 1000;
        auto mapper = core::make_repute(workload.reference(), workload.fm(),
                                        shares, config);
        const auto result = mapper->map(batch, delta);
        x.push_back(s_min);
        y.push_back(result.mapping_seconds);
        std::printf("# s_min=%u  T=%.3fs (gpu util %.2f)\n", s_min,
                    result.mapping_seconds,
                    result.device_runs.size() > 1
                        ? result.device_runs[1].stats.utilization
                        : 1.0);
        std::fflush(stdout);
    }

    print_series("Fig. 4: REPUTE mapping time vs minimum k-mer length "
                 "(n=100, d=4, split 82/9/9)",
                 "s_min", x, "T(s)", y);
    return 0;
}
