// Figure 3 — mapping time vs CPU/GPU workload distribution (§IV).
//
// Configuration from the paper: n=150, delta=5, minimum k-mer length 22,
// 1M reads (scaled here). The x-axis is the number of reads mapped by
// *each* GPU; the rest go to the CPU. The paper's curve falls from the
// CPU-only point, bottoms out at a balanced split, and rises again as
// the GPUs become the bottleneck.
//
// A second section goes beyond the figure: on a skewed fleet (one fast
// GPU + two slow CPUs) it compares the split strategies the codebase
// offers — naive equal static split, tuned static split, and the
// dynamic work-stealing scheduler warm-started from the tuned shares —
// and repeats the dynamic run with one CPU dying mid-batch to show
// fault recovery does not change the mapping output.

#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "bench_mappers.hpp"
#include "core/kernels.hpp"
#include "core/tuner.hpp"

using namespace repute;
using namespace repute::bench;

namespace {

ocl::DeviceProfile skew_profile(const char* name, ocl::DeviceType type,
                                std::uint32_t units, double ops_per_unit,
                                std::uint32_t min_resident) {
    ocl::DeviceProfile p;
    p.name = name;
    p.type = type;
    p.compute_units = units;
    p.ops_per_unit_per_second = ops_per_unit;
    p.global_memory_bytes = 1ULL << 31;
    p.private_memory_per_unit = 1 << 20;
    p.min_resident_items = min_resident;
    p.dispatch_overhead_seconds = 1e-4;
    return p;
}

/// Static-vs-dynamic comparison on a deliberately skewed fleet. Returns
/// nonzero when the fault-injected dynamic run diverges from the
/// fault-free reference output.
int run_skewed_fleet(const Workload& workload, std::size_t n,
                     std::uint32_t delta, std::uint32_t s_min,
                     bool double_buffer) {
    const auto& batch = workload.reads(n).batch;
    const double total = static_cast<double>(batch.size());

    ocl::Device fast_gpu(skew_profile("fast-gpu", ocl::DeviceType::Gpu,
                                      16, 6e8, 4));
    ocl::Device cpu_a(skew_profile("slow-cpu-a", ocl::DeviceType::Cpu,
                                   4, 2e8, 1));
    ocl::Device cpu_b(skew_profile("slow-cpu-b", ocl::DeviceType::Cpu,
                                   4, 2e8, 1));
    std::vector<ocl::Device*> fleet = {&fast_gpu, &cpu_a, &cpu_b};
    apply_transfer_specs(fleet);

    std::printf("\n# Skewed fleet: 1 fast GPU + 2 slow CPUs, %zu reads "
                "(n=%zu, delta=%u, s_min=%u)\n",
                batch.size(), n, delta, s_min);

    // Fault-free single-device reference output (equivalence oracle).
    ocl::Device oracle(skew_profile("oracle", ocl::DeviceType::Cpu,
                                    8, 1e9, 1));
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = s_min;
    config.double_buffer = double_buffer;
    const auto expected =
        core::make_repute(workload.reference(), workload.fm(),
                          {{&oracle, 1.0}}, config)
            ->map(batch, delta);

    std::vector<double> x, y;
    auto report = [&](const char* label, const core::MapResult& result) {
        std::printf("#   %-22s T=%.4fs  throughput=%.0f reads/s\n",
                    label, result.mapping_seconds,
                    total / result.mapping_seconds);
        x.push_back(static_cast<double>(x.size()));
        y.push_back(result.mapping_seconds);
    };

    // 1. Naive static: equal thirds, committed up front.
    const auto naive =
        core::make_repute(workload.reference(), workload.fm(),
                          {{&fast_gpu, 1.0}, {&cpu_a, 1.0}, {&cpu_b, 1.0}},
                          config)
            ->map(batch, delta);
    report("naive-static (1:1:1)", naive);

    // 2. Tuned static: probe-measured finish-together shares. The probe
    // is kept cheap (16 reads/device) — exactly the regime where a
    // static split inherits the probe's sampling noise while the
    // dynamic scheduler below treats it as a warm start and corrects.
    core::TuneConfig probe;
    probe.probe_reads = 16;
    probe.double_buffer = double_buffer;
    const auto tuned =
        core::tune_shares(workload.reference(), workload.fm(), batch, delta,
                          s_min, fleet, probe);
    const auto tuned_static =
        core::make_repute(workload.reference(), workload.fm(), tuned.shares,
                          config)
            ->map(batch, delta);
    report("tuned-static", tuned_static);

    // 3. Dynamic work stealing, warm-started from the tuned shares.
    core::HeterogeneousMapperConfig dyn = config;
    dyn.schedule = core::ScheduleMode::Dynamic;
    const auto dynamic =
        core::make_repute(workload.reference(), workload.fm(), tuned.shares,
                          dyn)
            ->map(batch, delta);
    report("dynamic (tuned warm)", dynamic);
    std::printf("#   dynamic schedule: %zu chunks, %zu steals, "
                "%zu retries\n",
                dynamic.schedule->chunks, dynamic.schedule->steals,
                dynamic.schedule->retries);
    for (const auto& dev : dynamic.schedule->per_device) {
        std::printf("#     %-12s %4zu items %2zu chunks %zu steals "
                    "busy=%.4fs\n",
                    dev.device_name.c_str(), dev.items, dev.chunks,
                    dev.steals, dev.busy_seconds);
    }

    // 4. Dynamic again with slow-cpu-b dying mid-batch: the fleet must
    // absorb its chunks and produce identical output.
    ocl::FaultPlan plan;
    plan.fail_on_launch = 2;
    plan.fail_forever = true;
    cpu_b.inject_faults(plan);
    const auto faulted =
        core::make_repute(workload.reference(), workload.fm(), tuned.shares,
                          dyn)
            ->map(batch, delta);
    cpu_b.clear_faults();
    report("dynamic + device loss", faulted);
    std::printf("#   after loss: retries=%zu quarantined=%s\n",
                faulted.schedule->retries,
                faulted.schedule->per_device.back().quarantined ? "yes"
                                                                : "no");

    int failures = 0;
    if (faulted.per_read != expected.per_read) {
        std::printf("#   ERROR: fault-injected output differs from the "
                    "single-device reference!\n");
        ++failures;
    } else {
        std::printf("#   fault-injected output identical to the "
                    "single-device reference.\n");
    }
    if (dynamic.per_read != expected.per_read) {
        std::printf("#   ERROR: dynamic output differs from the "
                    "single-device reference!\n");
        ++failures;
    }
    std::printf("#   dynamic vs tuned-static speedup: %.3fx\n",
                tuned_static.mapping_seconds / dynamic.mapping_seconds);

    print_series("Fig. 3b: skewed-fleet split strategies "
                 "(0=naive-static, 1=tuned-static, 2=dynamic, "
                 "3=dynamic+device-loss)",
                 "strategy", x, "T(s)", y);
    return failures;
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system1();
    apply_transfer_specs(platform);
    const bool double_buffer = parse_double_buffer(args);
    auto& cpu = platform.device("i7-2600");
    auto& gpu0 = platform.device("gtx590-0");
    auto& gpu1 = platform.device("gtx590-1");

    const std::size_t n = 150;
    const std::uint32_t delta = 5;
    const std::uint32_t s_min = 22; // fixed, per the figure caption
    const auto& batch = workload.reads(n).batch;
    const std::size_t total = batch.size();

    std::vector<double> x, y;
    const int steps = static_cast<int>(args.get_int("steps", 10));
    for (int step = 0; step <= steps; ++step) {
        // reads per GPU: 0 .. total/2 (both GPUs take everything).
        const std::size_t per_gpu = total * static_cast<std::size_t>(step) /
                                    (2 * static_cast<std::size_t>(steps));
        const std::size_t cpu_reads = total - 2 * per_gpu;

        core::HeterogeneousMapperConfig config;
        config.kernel.s_min = s_min;
        config.kernel.max_locations_per_read = 1000;
        config.double_buffer = double_buffer;
        std::vector<core::DeviceShare> shares;
        if (cpu_reads > 0) {
            shares.push_back(
                {&cpu, static_cast<double>(cpu_reads)});
        }
        if (per_gpu > 0) {
            shares.push_back({&gpu0, static_cast<double>(per_gpu)});
            shares.push_back({&gpu1, static_cast<double>(per_gpu)});
        }
        auto mapper = core::make_repute(workload.reference(), workload.fm(),
                                        std::move(shares), config);
        const auto result = mapper->map(batch, delta);
        x.push_back(static_cast<double>(per_gpu));
        y.push_back(result.mapping_seconds);
        std::printf("# per-gpu=%zu cpu=%zu  T=%.3fs\n", per_gpu,
                    cpu_reads, result.mapping_seconds);
        std::fflush(stdout);
    }

    print_series(
        "Fig. 3: REPUTE mapping time vs workload split (n=150, d=5, "
        "s_min=22); x = reads mapped by EACH GTX 590",
        "reads/GPU", x, "T(s)", y);

    if (args.get_int("skewed", 1) != 0) {
        return run_skewed_fleet(workload, n, delta, s_min,
                                double_buffer) == 0
                   ? EXIT_SUCCESS
                   : EXIT_FAILURE;
    }
    return 0;
}
