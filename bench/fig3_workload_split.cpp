// Figure 3 — mapping time vs CPU/GPU workload distribution (§IV).
//
// Configuration from the paper: n=150, delta=5, minimum k-mer length 22,
// 1M reads (scaled here). The x-axis is the number of reads mapped by
// *each* GPU; the rest go to the CPU. The paper's curve falls from the
// CPU-only point, bottoms out at a balanced split, and rises again as
// the GPUs become the bottleneck.

#include <cstdio>

#include "bench_common.hpp"
#include "bench_mappers.hpp"
#include "core/kernels.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const auto workload = make_workload(parse_workload_config(args));

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");
    auto& gpu0 = platform.device("gtx590-0");
    auto& gpu1 = platform.device("gtx590-1");

    const std::size_t n = 150;
    const std::uint32_t delta = 5;
    const std::uint32_t s_min = 22; // fixed, per the figure caption
    const auto& batch = workload.reads(n).batch;
    const std::size_t total = batch.size();

    std::vector<double> x, y;
    const int steps = static_cast<int>(args.get_int("steps", 10));
    for (int step = 0; step <= steps; ++step) {
        // reads per GPU: 0 .. total/2 (both GPUs take everything).
        const std::size_t per_gpu = total * static_cast<std::size_t>(step) /
                                    (2 * static_cast<std::size_t>(steps));
        const std::size_t cpu_reads = total - 2 * per_gpu;

        core::KernelConfig kernel;
        kernel.max_locations_per_read = 1000;
        std::vector<core::DeviceShare> shares;
        if (cpu_reads > 0) {
            shares.push_back(
                {&cpu, static_cast<double>(cpu_reads)});
        }
        if (per_gpu > 0) {
            shares.push_back({&gpu0, static_cast<double>(per_gpu)});
            shares.push_back({&gpu1, static_cast<double>(per_gpu)});
        }
        auto mapper = core::make_repute(workload.reference, *workload.fm,
                                        s_min, std::move(shares), kernel);
        const auto result = mapper->map(batch, delta);
        x.push_back(static_cast<double>(per_gpu));
        y.push_back(result.mapping_seconds);
        std::printf("# per-gpu=%zu cpu=%zu  T=%.3fs\n", per_gpu,
                    cpu_reads, result.mapping_seconds);
        std::fflush(stdout);
    }

    print_series(
        "Fig. 3: REPUTE mapping time vs workload split (n=150, d=5, "
        "s_min=22); x = reads mapped by EACH GTX 590",
        "reads/GPU", x, "T(s)", y);
    return 0;
}
