// Reference-sharding bench: scatter-gather mapping vs the monolithic
// index (DESIGN.md §5g).
//
//   shard_bench [--quick] [--genome N] [--reads N] [--seed S]
//               [--delta D] [--jobs J] [--min-build-speedup X]
//               [--out BENCH_shard.json] [--trace out.json]
//
// Two sweeps over one multi-contig workload:
//
//   1. Shard count K in {1, 2, 4, 8}: build a K-shard index, map the
//      read set through the sharded scatter-gather path and compare
//      every mapping against the monolithic mapper — the run fails on
//      any divergence. Reports modeled throughput and the transfer
//      overlap ratio per K (shard restaging rides the same
//      double-buffered channels as read staging, so the ratio shows
//      what the extra image traffic costs).
//
//   2. Build parallelism: the 8-shard index built serially vs with
//      --jobs threads (shard index builds are independent). The last
//      stdout line is `shard_build_speedup: X.XXX`, the line
//      ci/check_bench.py gates on (the CI shard tier requires 1.5x at
//      --jobs 4); --min-build-speedup makes the bench itself fail
//      below the floor.
//
// Results land in --out as flat JSON. Reads are substitution-only so
// sharded/monolithic identity is exact (see the seed-plan caveat in
// DESIGN.md §5g).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sharded_mapper.hpp"
#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "index/rixm.hpp"
#include "ocl/platform.hpp"

using namespace repute;

namespace {

constexpr std::size_t kContigs = 8;

/// Contigs of staggered lengths carved from one clean random text —
/// shard planning is contig-granular, so the fixture needs real cut
/// points for every K in the sweep.
genomics::MultiReference make_contigs(std::size_t total,
                                      std::uint64_t seed) {
    genomics::GenomeSimConfig config;
    config.length = total;
    config.seed = seed;
    config.interspersed_fraction = 0.0;
    config.tandem_fraction = 0.0;
    const std::string text =
        genomics::simulate_genome(config).sequence().to_string();
    std::vector<genomics::FastaRecord> records;
    std::size_t at = 0;
    for (std::size_t i = 0; i < kContigs; ++i) {
        const std::size_t unit = total / (kContigs + 1);
        const std::size_t want = i + 1 == kContigs
                                     ? text.size() - at
                                     : unit + (i % 3) * (unit / 4);
        records.push_back(
            {"chr" + std::to_string(i), text.substr(at, want)});
        at += want;
    }
    return genomics::MultiReference(records);
}

struct Trio {
    ocl::Device cpu;
    ocl::Device gpu0;
    ocl::Device gpu1;

    Trio()
        : cpu(ocl::profile_i7_2600()), gpu0(ocl::profile_gtx590(0)),
          gpu1(ocl::profile_gtx590(1)) {
        bench::apply_transfer_specs({&cpu, &gpu0, &gpu1});
    }

    std::vector<core::DeviceShare> shares() {
        return {{&cpu, 2.0}, {&gpu0, 1.0}, {&gpu1, 1.0}};
    }
};

bool identical(const core::MapResult& a, const core::MapResult& b) {
    return a.per_read == b.per_read;
}

struct SweepPoint {
    std::uint32_t shards = 0;
    double build_seconds = 0.0; // serial (--jobs 1)
    double mapping_seconds = 0.0;
    double reads_per_second = 0.0;
    double overlap_ratio = 0.0;
    std::uint64_t max_estimated_bytes = 0;
    bool identical = false;
};

void remove_build(const index::ShardBuildResult& built) {
    for (const std::string& p : built.shard_paths)
        std::remove(p.c_str());
    std::remove(built.manifest_path.c_str());
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const bench::ScopedTrace trace(args);
    bench::WorkloadConfig config = bench::parse_workload_config(args);
    config.genome_length =
        std::min<std::size_t>(config.genome_length, 3'000'000);
    config.n_reads = std::min<std::size_t>(config.n_reads, 2'000);
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 4));
    const auto jobs =
        static_cast<std::uint32_t>(args.get_int("jobs", 4));
    const double min_build_speedup =
        args.get_double("min-build-speedup", 0.0);
    const std::string out_path =
        args.get_string("out", "BENCH_shard.json");

    std::printf("shard_bench: %zu bp in %zu contigs, %zu reads, "
                "delta %u\n",
                config.genome_length, kContigs, config.n_reads, delta);
    const auto multi = make_contigs(config.genome_length, config.seed);

    genomics::ReadSimConfig read_config;
    read_config.n_reads = config.n_reads;
    read_config.read_length = 100;
    read_config.max_errors = 4;
    read_config.indel_fraction = 0.0; // see the file comment
    read_config.seed = config.seed + 1;
    const auto sim =
        genomics::simulate_reads(multi.concatenated(), read_config);

    std::printf("building monolithic index...\n");
    const index::FmIndex fm(multi.concatenated(), 4);
    Trio mono_trio;
    auto mono = core::make_repute(multi.concatenated(), fm,
                                  mono_trio.shares());
    const auto mono_result = mono->map(sim.batch, delta);
    const double mono_reads_per_s =
        static_cast<double>(sim.batch.size()) /
        mono_result.mapping_seconds;
    std::printf("monolithic        map %8.3f s  %10.0f reads/s  "
                "overlap %.2f\n",
                mono_result.mapping_seconds, mono_reads_per_s,
                mono_result.transfer_overlap_ratio());

    // Sweep 1: shard count, serial builds (the jobs sweep below reuses
    // the K=8 serial time as its baseline).
    const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
    std::vector<SweepPoint> sweep;
    bool all_identical = true;
    double serial8_seconds = 0.0;
    for (const auto k : shard_counts) {
        index::ShardBuildConfig build;
        build.plan.shard_count = k;
        build.plan.overlap = 512;
        build.jobs = 1;
        const std::string manifest =
            out_path + ".k" + std::to_string(k) + ".rixm";
        const auto built =
            index::build_sharded_index(multi, manifest, build);
        const auto opened = index::ShardedIndex::open(manifest);

        Trio trio;
        auto sharded = core::make_sharded_repute(
            core::shard_views_of(opened), trio.shares());
        const auto result = sharded->map(sim.batch, delta);

        SweepPoint point;
        point.shards = static_cast<std::uint32_t>(
            built.plan.shards.size());
        point.build_seconds = built.build_seconds;
        point.mapping_seconds = result.mapping_seconds;
        point.reads_per_second =
            static_cast<double>(sim.batch.size()) /
            result.mapping_seconds;
        point.overlap_ratio = result.transfer_overlap_ratio();
        point.max_estimated_bytes = built.plan.max_estimated_bytes;
        point.identical = identical(mono_result, result);
        sweep.push_back(point);
        all_identical = all_identical && point.identical;
        if (k == 8) serial8_seconds = built.build_seconds;

        std::printf("%2u shard(s)       map %8.3f s  %10.0f reads/s  "
                    "overlap %.2f  build %6.2f s  identical %s\n",
                    point.shards, point.mapping_seconds,
                    point.reads_per_second, point.overlap_ratio,
                    point.build_seconds,
                    point.identical ? "yes" : "NO");
        remove_build(built);
    }

    // Sweep 2: parallel shard builds of the 8-shard plan.
    std::vector<std::pair<std::uint32_t, double>> build_sweep = {
        {1, serial8_seconds}};
    for (const std::uint32_t j : {2u, jobs}) {
        if (j <= build_sweep.back().first) continue;
        index::ShardBuildConfig build;
        build.plan.shard_count = 8;
        build.plan.overlap = 512;
        build.jobs = j;
        const auto built = index::build_sharded_index(
            multi, out_path + ".jobs.rixm", build);
        build_sweep.emplace_back(j, built.build_seconds);
        std::printf("build --jobs %-2u   %8.2f s\n", j,
                    built.build_seconds);
        remove_build(built);
    }
    const double parallel_seconds = build_sweep.back().second;
    const double build_speedup =
        parallel_seconds > 0.0 ? serial8_seconds / parallel_seconds
                               : 0.0;

    if (std::FILE* f = std::fopen(out_path.c_str(), "wb")) {
        std::fprintf(f,
                     "{\n"
                     "  \"genome_bp\": %zu,\n"
                     "  \"contigs\": %zu,\n"
                     "  \"reads\": %zu,\n"
                     "  \"delta\": %u,\n"
                     "  \"overlap_bp\": 512,\n"
                     "  \"monolithic\": {\"mapping_seconds\": %.6f, "
                     "\"reads_per_second\": %.1f, "
                     "\"overlap_ratio\": %.4f},\n"
                     "  \"shard_sweep\": [\n",
                     config.genome_length, kContigs, sim.batch.size(),
                     delta, mono_result.mapping_seconds,
                     mono_reads_per_s,
                     mono_result.transfer_overlap_ratio());
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const auto& p = sweep[i];
            std::fprintf(
                f,
                "    {\"shards\": %u, \"build_seconds\": %.6f, "
                "\"mapping_seconds\": %.6f, "
                "\"reads_per_second\": %.1f, "
                "\"overlap_ratio\": %.4f, "
                "\"max_estimated_bytes\": %llu, "
                "\"identical\": %s}%s\n",
                p.shards, p.build_seconds, p.mapping_seconds,
                p.reads_per_second, p.overlap_ratio,
                static_cast<unsigned long long>(p.max_estimated_bytes),
                p.identical ? "true" : "false",
                i + 1 == sweep.size() ? "" : ",");
        }
        std::fprintf(f, "  ],\n  \"build_jobs_sweep\": [\n");
        for (std::size_t i = 0; i < build_sweep.size(); ++i) {
            std::fprintf(f,
                         "    {\"jobs\": %u, \"build_seconds\": "
                         "%.6f}%s\n",
                         build_sweep[i].first, build_sweep[i].second,
                         i + 1 == build_sweep.size() ? "" : ",");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"shard_build_speedup\": %.3f,\n"
                     "  \"all_identical\": %s\n"
                     "}\n",
                     build_speedup, all_identical ? "true" : "false");
        std::fclose(f);
        std::printf("# wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "shard_bench: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    if (!all_identical) {
        std::fprintf(stderr,
                     "shard_bench: FAIL — sharded mapping diverges "
                     "from monolithic\n");
        return 1;
    }
    if (min_build_speedup > 0.0 && build_speedup < min_build_speedup) {
        std::fprintf(stderr,
                     "shard_bench: FAIL — build speedup %.2fx below "
                     "required %.2fx at --jobs %u\n",
                     build_speedup, min_build_speedup, jobs);
        return 1;
    }
    // The line ci/check_bench.py run_shard_gate parses — keep last.
    std::printf("shard_build_speedup: %.3f\n", build_speedup);
    return 0;
}
