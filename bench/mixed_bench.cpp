// Mixed-length batching bench: what does the length-bucketed path cost
// on input the fixed path could already handle? (DESIGN.md §5h).
//
//   mixed_bench [--quick] [--genome N] [--reads N] [--seed S]
//               [--delta D] [--batch B] [--min-ratio X]
//               [--out BENCH_mixed.json] [--trace out.json]
//
// Two measurements over one workload:
//
//   1. Uniform input (every read 100 bp) through the fixed-length
//      pipeline (next_batch + ordered emit) and through the bucketed
//      pipeline (next_bucket + per-read render + reorder writer). Both
//      walls are host time — modeled device seconds are identical by
//      construction — so the ratio isolates the bucketing overhead:
//      quantization, ordinal bookkeeping and the reorder buffer. The
//      two SAM outputs must be byte-identical; the run fails otherwise.
//      The last stdout line is `mixed_uniform_ratio: X.XXX`, the line
//      ci/check_bench.py gates on (the CI mixed tier requires 0.9);
//      --min-ratio makes the bench itself fail below the floor.
//
//   2. Genuinely mixed input (100 bp and 150 bp reads interleaved
//      record by record) through the bucketed pipeline — the workload
//      the fixed path cannot serve at all. Reported for context along
//      with the virtual-padding stats.
//
// Results land in --out as flat JSON.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ocl/platform.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

std::string fastq_text(const genomics::ReadBatch& batch) {
    std::string out;
    for (const auto& read : batch.reads) {
        out += '@' + read.name + '\n' + read.to_string() + "\n+\n";
        out += read.quality.empty() ? std::string(read.length(), 'I')
                                    : read.quality;
        out += '\n';
    }
    return out;
}

/// Two map workers on modeled CPU devices; host pipeline overhead is
/// what this bench measures, so the fleet stays deliberately simple.
struct Workers {
    ocl::Device cpu0;
    ocl::Device cpu1;
    std::vector<std::unique_ptr<core::Mapper>> owned;
    std::vector<core::Mapper*> mappers;

    Workers(const genomics::Reference& reference,
            const index::FmIndex& fm)
        : cpu0(ocl::profile_i7_2600()), cpu1(ocl::profile_i7_2600()) {
        bench::apply_transfer_specs({&cpu0, &cpu1});
        for (ocl::Device* device : {&cpu0, &cpu1}) {
            owned.push_back(core::make_repute(reference, fm,
                                              {{device, 1.0}}));
            mappers.push_back(owned.back().get());
        }
    }
};

struct RunResult {
    std::string sam;
    double wall_seconds = 0.0;
};

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const bench::ScopedTrace trace(args);
    bench::WorkloadConfig config = bench::parse_workload_config(args);
    config.genome_length =
        std::min<std::size_t>(config.genome_length, 2'000'000);
    config.n_reads = std::min<std::size_t>(config.n_reads, 3'000);
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 4));
    const auto batch_size =
        static_cast<std::size_t>(args.get_int("batch", 512));
    const double min_ratio = args.get_double("min-ratio", 0.0);
    const std::string out_path =
        args.get_string("out", "BENCH_mixed.json");

    const bench::Workload workload = bench::make_workload(config);
    Workers workers(workload.reference(), workload.fm());

    const std::string uniform_fastq =
        fastq_text(workload.reads100.batch);

    // Mixed set: 100 bp and 150 bp reads interleaved record by record,
    // renamed so names are unique across the two simulations.
    genomics::ReadBatch interleaved;
    const auto& r100 = workload.reads100.batch;
    const auto& r150 = workload.reads150.batch;
    const std::size_t pairs_n = std::min(r100.size(), r150.size());
    for (std::size_t i = 0; i < pairs_n; ++i) {
        for (const genomics::ReadBatch* src : {&r100, &r150}) {
            auto read = src->reads[i];
            read.name = "mix." + std::to_string(interleaved.size());
            interleaved.reads.push_back(std::move(read));
        }
    }
    const std::string mixed_fastq = fastq_text(interleaved);

    pipeline::PipelineConfig pipe_config;
    pipe_config.map_workers = workers.mappers.size();

    const auto run_fixed = [&](const std::string& fastq) {
        std::istringstream in(fastq);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = batch_size;
        reader_config.read_length = 100;
        pipeline::StreamingFastxReader reader(in, reader_config);
        std::ostringstream sam;
        pipeline::SamEmitter emitter(sam, workload.session->multi(),
                                     {true, delta});
        emitter.write_header();
        const util::Stopwatch wall;
        pipeline::run_mapping_pipeline(
            reader, workers.mappers, delta,
            [&](std::size_t, const genomics::ReadBatch& batch,
                const core::MapResult& result) {
                emitter.emit(batch, result);
            },
            pipe_config);
        return RunResult{sam.str(), wall.seconds()};
    };

    const auto run_bucketed = [&](const std::string& fastq,
                                  pipeline::StreamingReaderStats* stats) {
        std::istringstream in(fastq);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = batch_size;
        pipeline::StreamingFastxReader reader(in, reader_config);
        std::ostringstream sam;
        pipeline::SamEmitter emitter(sam, workload.session->multi(),
                                     {true, delta});
        emitter.write_header();
        pipeline::RecordReorderWriter writer(sam);
        const util::Stopwatch wall;
        pipeline::run_bucketed_pipeline(
            reader, workers.mappers, delta,
            [&](std::size_t, const pipeline::OrderedBatch& unit,
                const core::MapResult& result) {
                for (std::size_t i = 0; i < unit.batch.size(); ++i) {
                    writer.add(unit.ordinals[i],
                               emitter.render_read(unit.batch, i,
                                                   result));
                }
            },
            pipe_config);
        writer.finish();
        RunResult out{sam.str(), wall.seconds()};
        if (stats != nullptr) *stats = reader.stats();
        return out;
    };

    std::printf("mixed_bench: %zu bp genome, %zu uniform reads, "
                "%zu mixed reads, delta %u, batch %zu\n",
                config.genome_length, r100.size(), interleaved.size(),
                delta, batch_size);

    // Best-of-3 walls: host-side pipeline time is scheduler-noisy.
    constexpr int kReps = 3;
    RunResult fixed, bucketed;
    for (int rep = 0; rep < kReps; ++rep) {
        RunResult f = run_fixed(uniform_fastq);
        RunResult b = run_bucketed(uniform_fastq, nullptr);
        if (rep == 0 || f.wall_seconds < fixed.wall_seconds) {
            fixed = std::move(f);
        }
        if (rep == 0 || b.wall_seconds < bucketed.wall_seconds) {
            bucketed = std::move(b);
        }
    }
    const bool identical = fixed.sam == bucketed.sam;
    const double reads_n = static_cast<double>(r100.size());
    const double fixed_rps = reads_n / fixed.wall_seconds;
    const double bucketed_rps = reads_n / bucketed.wall_seconds;
    const double ratio =
        fixed_rps > 0.0 ? bucketed_rps / fixed_rps : 0.0;

    std::printf("uniform  fixed    %8.3f s  %10.0f reads/s\n",
                fixed.wall_seconds, fixed_rps);
    std::printf("uniform  bucketed %8.3f s  %10.0f reads/s  "
                "identical %s\n",
                bucketed.wall_seconds, bucketed_rps,
                identical ? "yes" : "NO");
    if (!identical) {
        std::fprintf(stderr,
                     "mixed_bench: FAIL: bucketed SAM diverged from "
                     "the fixed path on uniform input\n");
        return EXIT_FAILURE;
    }

    pipeline::StreamingReaderStats mixed_stats;
    const RunResult mixed = run_bucketed(mixed_fastq, &mixed_stats);
    const double mixed_rps =
        static_cast<double>(interleaved.size()) / mixed.wall_seconds;
    std::printf("mixed    bucketed %8.3f s  %10.0f reads/s  "
                "classes %zu  pad %zu bases\n",
                mixed.wall_seconds, mixed_rps,
                mixed_stats.length_classes, mixed_stats.pad_bases);

    if (std::FILE* f = std::fopen(out_path.c_str(), "wb")) {
        std::fprintf(
            f,
            "{\n"
            "  \"genome_bp\": %zu,\n"
            "  \"uniform_reads\": %zu,\n"
            "  \"delta\": %u,\n"
            "  \"batch_size\": %zu,\n"
            "  \"fixed_wall_seconds\": %.6f,\n"
            "  \"fixed_reads_per_second\": %.1f,\n"
            "  \"bucketed_wall_seconds\": %.6f,\n"
            "  \"bucketed_reads_per_second\": %.1f,\n"
            "  \"identical\": %s,\n"
            "  \"mixed\": {\"reads\": %zu, \"wall_seconds\": %.6f, "
            "\"reads_per_second\": %.1f, \"length_classes\": %zu, "
            "\"pad_bases\": %zu},\n"
            "  \"mixed_uniform_ratio\": %.3f\n"
            "}\n",
            config.genome_length, r100.size(), delta, batch_size,
            fixed.wall_seconds, fixed_rps, bucketed.wall_seconds,
            bucketed_rps, identical ? "true" : "false",
            interleaved.size(), mixed.wall_seconds, mixed_rps,
            mixed_stats.length_classes, mixed_stats.pad_bases, ratio);
        std::fclose(f);
        std::printf("wrote %s\n", out_path.c_str());
    }

    if (min_ratio > 0.0 && ratio < min_ratio) {
        std::fprintf(stderr,
                     "mixed_bench: FAIL: uniform ratio %.3f below "
                     "--min-ratio %.3f\n",
                     ratio, min_ratio);
        return EXIT_FAILURE;
    }

    // The line ci/check_bench.py run_mixed_gate parses — keep last.
    std::printf("mixed_uniform_ratio: %.3f\n", ratio);
    return EXIT_SUCCESS;
}
