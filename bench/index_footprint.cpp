// Index-footprint experiment (paper §IV: "[the footprint] can be
// significantly reduced by storing elements after fixed intervals" —
// the Bowtie2-style sampling REPUTE's authors list as the fix for their
// full-SA memory usage).
//
// Sweeps the two sampling knobs of our FM-index — suffix-array sample
// rate and occ checkpoint spacing — and reports index size and the
// resulting REPUTE mapping time, quantifying the memory/time trade.

#include <cstdio>

#include "bench_common.hpp"
#include "core/repute_mapper.hpp"
#include "ocl/platform.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    WorkloadConfig config = parse_workload_config(args);
    config.n_reads = std::min<std::size_t>(config.n_reads, 2000);
    const auto workload = make_workload(config);

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");

    const std::size_t n = 100;
    const std::uint32_t delta = 4;
    const auto& batch = workload.reads(n).batch;

    std::printf("\n== Index footprint vs mapping time "
                "(n=%zu, delta=%u, %zu reads) ==\n",
                n, delta, batch.size());
    std::printf("%10s %12s | %12s %10s | %10s\n", "sa_sample",
                "checkpoint", "index(MB)", "bytes/bp", "T(s)");

    for (const std::uint32_t sa_sample : {1u, 4u, 16u, 64u}) {
        for (const std::uint32_t checkpoint : {64u, 128u, 512u}) {
            const index::FmIndex fm(workload.reference(), sa_sample,
                                    checkpoint);
            core::HeterogeneousMapperConfig mapper_config;
            mapper_config.kernel.s_min = 14;
            auto mapper = core::make_repute(workload.reference(), fm,
                                            {{&cpu, 1.0}}, mapper_config);
            const auto result = mapper->map(batch, delta);
            const double mb =
                static_cast<double>(fm.memory_bytes()) / 1e6;
            std::printf("%10u %12u | %12.1f %10.2f | %10.4f\n",
                        sa_sample, checkpoint, mb,
                        static_cast<double>(fm.memory_bytes()) /
                            static_cast<double>(workload.reference().size()),
                        result.mapping_seconds);
            std::fflush(stdout);
        }
    }
    std::printf("\nsa_sample=1 is the paper's configuration (full SA); "
                "sampling trades locate speed for the footprint cut the "
                "paper projects for its future versions.\n");
    return 0;
}
