#include "bench_mappers.hpp"

#include <cmath>

namespace repute::bench {

std::uint32_t scaled_q(std::size_t genome_length, double target_hits) {
    const double q = std::log2(static_cast<double>(genome_length) /
                               target_hits) /
                     2.0;
    return std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::lround(q)), 8, 12);
}

std::unique_ptr<baselines::RazerS3Like> make_gold_standard(
    const Workload& w, ocl::Device& device) {
    // chr21 at q=12 gives ~2.8 random hits per q-gram.
    return std::make_unique<baselines::RazerS3Like>(
        w.reference(), device, /*max_locations=*/100,
        scaled_q(w.reference().size(), 2.8));
}

std::vector<MapperSpec> baseline_specs(const Workload& w,
                                       ocl::Device& cpu) {
    std::vector<MapperSpec> specs;
    specs.push_back(
        {"RazerS3", [&w, &cpu](std::size_t, std::uint32_t) {
             return make_gold_standard(w, cpu);
         }});
    specs.push_back(
        {"Hobbes3", [&w, &cpu](std::size_t, std::uint32_t) {
             // chr21 at q=11 gives ~11 random hits per signature.
             return std::make_unique<baselines::Hobbes3Like>(
                 w.reference(), cpu, /*max_locations=*/1000,
                 scaled_q(w.reference().size(), 11.0));
         }});
    specs.push_back({"Yara", [&w, &cpu](std::size_t, std::uint32_t) {
                         return std::make_unique<baselines::YaraLike>(
                             w.reference(), w.fm(), cpu);
                     }});
    specs.push_back({"BWA-MEM", [&w, &cpu](std::size_t, std::uint32_t) {
                         return std::make_unique<baselines::BwaMemLike>(
                             w.reference(), w.fm(), cpu);
                     }});
    specs.push_back({"GEM", [&w, &cpu](std::size_t, std::uint32_t) {
                         return std::make_unique<baselines::GemLike>(
                             w.reference(), w.fm(), cpu);
                     }});
    return specs;
}

MapperSpec repute_spec(const Workload& w,
                       std::vector<core::DeviceShare> shares,
                       const std::string& name, FunnelToggles toggles) {
    return {name,
            [&w, shares, name, toggles](std::size_t n,
                                        std::uint32_t delta) {
                core::HeterogeneousMapperConfig config;
                config.kernel.s_min = best_s_min(n, delta);
                config.kernel.max_locations_per_read = 1000;
                toggles.apply(config.kernel);
                auto mapper = core::make_repute(w.reference(), w.fm(),
                                                shares, config);
                return mapper;
            }};
}

MapperSpec coral_spec(const Workload& w,
                      std::vector<core::DeviceShare> shares,
                      const std::string& name, FunnelToggles toggles) {
    return {name,
            [&w, shares, name, toggles](std::size_t n,
                                        std::uint32_t delta) {
                core::HeterogeneousMapperConfig config;
                config.kernel.s_min = best_s_min(n, delta);
                config.kernel.max_locations_per_read = 1000;
                toggles.apply(config.kernel);
                auto mapper = core::make_coral(w.reference(), w.fm(),
                                               shares, config);
                return mapper;
            }};
}

} // namespace repute::bench
