// Sensitivity analysis (beyond the paper's tables): any-best accuracy
// stratified by the gold standard's best edit distance, per mapper.
//
// The aggregate accuracies of Tables I-III hide *where* a mapper loses
// reads; this sweep shows the loss concentrating in the high-error
// strata — reads with many errors have fewer intact seeds, and
// best-mappers' heuristics give up on them first.

#include <cstdio>

#include "bench_mappers.hpp"
#include "core/accuracy.hpp"

using namespace repute;
using namespace repute::bench;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const ScopedTrace trace(args);
    WorkloadConfig config = parse_workload_config(args);
    config.n_reads = std::min<std::size_t>(config.n_reads, 3000);
    const auto workload = make_workload(config);

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");

    const std::size_t n = 100;
    const std::uint32_t delta = 5;
    const auto& batch = workload.reads(n).batch;

    auto gold_mapper = make_gold_standard(workload, cpu);
    const auto gold = gold_mapper->map(batch, delta);

    std::vector<MapperSpec> specs = baseline_specs(workload, cpu);
    specs.push_back(coral_spec(workload, {{&cpu, 1.0}}, "CORAL"));
    specs.push_back(repute_spec(workload, {{&cpu, 1.0}}, "REPUTE"));

    std::printf("\n== Sensitivity by error stratum "
                "(n=%zu, delta=%u, any-best %%) ==\n",
                n, delta);
    std::printf("%-10s", "mapper");
    for (std::uint32_t e = 0; e <= delta; ++e) {
        std::printf(" |   e=%u", e);
    }
    std::printf("\n");

    core::AccuracyConfig acc;
    acc.position_tolerance = delta;
    for (const auto& spec : specs) {
        auto mapper = spec.make(n, delta);
        const auto result = mapper->map(batch, delta);
        const auto strata = core::stratified_any_best_accuracy(
            gold, result, acc, delta);
        std::printf("%-10s", spec.name.c_str());
        for (const double a : strata) {
            if (a < 0) {
                std::printf(" |   --- ");
            } else {
                std::printf(" | %5.1f", a);
            }
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n'---' = no reads whose best gold mapping has that "
                "edit distance.\n");
    return 0;
}
