// repute — read-mapping toolkit CLI.
//
//   repute index build --ref ref.fa --out ref.rix   build a .rix container
//   repute map --ref ref.fa | --index ref.rix ...   one-shot mapping
//   repute serve --index ref.rix --socket PATH      persistent daemon
//   repute client --socket PATH --reads r.fq ...    submit to a daemon
//
// Every mapping path (map / serve / client-via-serve) goes through one
// pipeline::MappingSession, so the SAM bytes are identical whether the
// index was built in-process, mmap'd from a .rix container, or queried
// over the daemon socket — the serve CI tier diffs exactly that.
//
// The pre-subcommand flat form (`repute --reference ... --reads ...`)
// still works as a deprecated alias for `repute map`.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/multi_reference.hpp"
#include "index/fm_index.hpp"
#include "index/rix.hpp"
#include "index/rixm.hpp"
#include "index/shard_plan.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pipeline/mapping_api.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

constexpr const char* kUsage = R"(repute — OpenCL-style heterogeneous read mapper

usage: repute <command> [options]

commands:
  index build   build a mmap-able .rix index container from FASTA
  map           map reads one-shot (build index in-process or mmap one)
  serve         run the persistent mapping daemon on a Unix socket
  client        submit reads to a running daemon

run `repute <command> --help` for the command's options.

deprecated: the flat form `repute --reference ref.fa --reads r.fq ...`
still runs `repute map` (with --reference meaning --ref).
)";

constexpr const char* kIndexUsage = R"(repute index build — precompute a mmap-able index container

required:
  --ref FILE            multi-sequence FASTA reference
  --out FILE            output .rix path
options:
  --sa-sample N         suffix-array sampling interval (default 4)
  --checkpoint N        occ checkpoint spacing, pow2 >= 32 (default 128)
  --qgram N             q-gram jump table depth, 0 = none (default 8)
sharding (write a .rixm manifest + per-shard .rix files instead):
  --shards N            split the reference into N contig-granular
                        shards (clamped to the contig count)
  --shard-budget BYTES  or: pack shards under a per-shard device image
                        budget (contigs are never split)
  --overlap N           overhang indexed into neighbour shards; must be
                        >= read_length + delta at map time (default 512)
  --jobs N              parallel shard index builds (default 1)

`repute map --index` and `repute serve --index` accept the .rixm
manifest path; mapping output is byte-identical to the monolithic
index while per-device residency stays one shard image.
)";

constexpr const char* kMapUsage = R"(repute map — one-shot streaming read mapping

index source (exactly one):
  --ref FILE            FASTA reference: build the index in-process
  --index FILE          prebuilt .rix container or .rixm shard manifest:
                        mmap zero-copy
required:
  --reads FILE          FASTA/FASTQ reads (format auto-detected;
                        .gz input inflated transparently)
options:
  --reads2 FILE         second-mate file: paired-end mapping + rescue
                        (.gz accepted, independently of --reads)
  --out FILE            SAM output path, '-' for stdout (default out.sam)
  --delta N             edit-distance budget (default 5)
  --smin N              minimum seed k-mer length (default 14)
  --max-locations N     mappings reported per read (default 100)
  --cigar BOOL          host-side re-alignment + CIGAR (default true)
  --no-simd             scalar Myers verification (debugging/timing)
pipeline:
  --batch-size N        reads per batch (default 4096)
  --queue-depth N       batches buffered between stages (default 4)
  --threads N           concurrent map workers (default 1)
  --on-malformed MODE   drop (count and continue) | fail (default drop)
  --read-length N       fixed read length; 0 = mixed-length bucketed
                        mapping (the default)
  --length-grid N       length-class quantization for mixed input:
                        reads bucket by length rounded up to a multiple
                        of N, padded virtually within a class
                        (default 16)
  --monolithic          load whole file, map once, then write
devices:
  --platform NAME       system1 (i7 + 2x GTX590) | system2 (HiKey970)
  --devices LIST        comma-separated device names (default i7-2600)
  --schedule MODE       static | dynamic work-stealing (default static)
transfers:
  --xfer-gbps X         model host<->device links at X GB/s (default:
                        transfers are free)
  --xfer-latency-us X   per-transfer latency in microseconds (default 0)
  --no-double-buffer    serialize staging (stage+compute+drain per chunk
                        instead of overlapping); output is identical
observability:
  --trace FILE          write Chrome trace JSON + per-stage summary
  --xfer-trace          print the host<->device transfer summary
                        (per-buffer bytes, overlap ratio) to stderr
)";

constexpr const char* kServeUsage = R"(repute serve — persistent mapping daemon (Unix-domain socket)

index source (exactly one):
  --index FILE          prebuilt .rix container or .rixm shard manifest:
                        mmap zero-copy (a manifest mmaps every shard)
  --ref FILE            FASTA reference: build the index in-process
required:
  --socket PATH         Unix socket path to listen on
options:
  --handlers N          concurrent request handlers (default 2)
  --pending N           admission queue depth beyond handlers (default 8)
  --mappers N           mapper pool = max total map workers (default =
                        handlers)
  --smin/--max-locations/--no-simd/--platform/--devices/--schedule
  --xfer-gbps/--xfer-latency-us/--no-double-buffer
                        session-level mapping knobs, as in `repute map`

SIGTERM/SIGINT drain in-flight requests, print the metrics summary
(request latency p50/p99 included) to stderr, and exit 0.
)";

constexpr const char* kClientUsage = R"(repute client — submit reads to a running daemon

required:
  --socket PATH         daemon socket path
  --reads FILE          FASTA/FASTQ reads (.gz shipped as-is; the
                        daemon inflates)
options:
  --reads2 FILE         second-mate file (paired-end)
  --out FILE            SAM output path, '-' for stdout (default -)
  --delta N             edit-distance budget (default 5)
  --cigar BOOL          request CIGAR annotation (default true)
  --map-workers N       mappers requested (fair-share granted, default 1)
  --batch-size N        reads per batch (default 4096)
  --queue-depth N       pipeline queue depth (default 4)
  --read-length N       fixed read length; 0 = mixed-length bucketed
                        mapping (the default)
  --length-grid N       length-class quantization grid (default 16)
  --on-malformed MODE   drop | fail (default drop)
  --insert-min/--insert-max
                        paired-end insert bounds (default 200/600)
  --tenant NAME         metrics label for per-tenant accounting
)";

struct CliError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const auto comma = csv.find(',', start);
        const auto end = comma == std::string::npos ? csv.size() : comma;
        if (end > start) out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

pipeline::OnMalformed parse_on_malformed(const std::string& mode) {
    if (mode == "drop") return pipeline::OnMalformed::Drop;
    if (mode == "fail") return pipeline::OnMalformed::Fail;
    throw CliError("--on-malformed must be 'drop' or 'fail', got: " +
                   mode);
}

/// Session-level knobs shared by `map` and `serve`.
pipeline::SessionConfig session_config_from(const util::Args& args) {
    pipeline::SessionConfig config;
    config.s_min = static_cast<std::uint32_t>(args.get_int("smin", 14));
    config.max_locations =
        static_cast<std::uint32_t>(args.get_int("max-locations", 100));
    config.simd_verification = !args.get_bool("no-simd", false);
    config.platform = args.get_string("platform", "system1");
    config.devices = split_csv(args.get_string("devices", "i7-2600"));
    const std::string schedule = args.get_string("schedule", "static");
    if (schedule == "dynamic") {
        config.schedule = core::ScheduleMode::Dynamic;
    } else if (schedule != "static") {
        throw CliError("--schedule must be 'static' or 'dynamic', got: " +
                       schedule);
    }
    const double gbps = args.get_double("xfer-gbps", 0.0);
    if (gbps < 0.0) throw CliError("--xfer-gbps must be >= 0");
    config.transfer.bytes_per_second = gbps * 1e9;
    config.transfer.latency_seconds =
        args.get_double("xfer-latency-us", 0.0) * 1e-6;
    config.double_buffer = !args.get_bool("no-double-buffer", false);
    return config;
}

/// Builds the session from --index (mmap) or --ref/--reference
/// (in-process), reporting source + load time to stderr.
std::unique_ptr<pipeline::MappingSession> open_session(
    const util::Args& args, pipeline::SessionConfig config) {
    const std::string rix = args.get_string("index", "");
    std::string fasta = args.get_string("ref", "");
    if (fasta.empty()) fasta = args.get_string("reference", "");
    if (rix.empty() == fasta.empty()) {
        throw CliError("exactly one of --ref or --index is required");
    }
    std::unique_ptr<pipeline::MappingSession> session;
    if (!rix.empty()) {
        session = pipeline::MappingSession::from_rix(rix,
                                                     std::move(config));
        std::fprintf(stderr,
                     "index mapped from %s in %.3f s "
                     "(%.1f MB mapped, %.1f MB resident)\n",
                     rix.c_str(), session->index_seconds(),
                     static_cast<double>(session->mapped_bytes()) / 1e6,
                     static_cast<double>(session->resident_bytes()) /
                         1e6);
    } else {
        session = pipeline::MappingSession::from_fasta(fasta,
                                                       std::move(config));
        std::fprintf(stderr,
                     "reference: %zu sequence(s), %zu bp; index built "
                     "in %.1f s (%.1f MB)\n",
                     session->multi().sequence_count(),
                     session->multi().concatenated().size(),
                     session->index_seconds(),
                     static_cast<double>(session->resident_bytes()) /
                         1e6);
    }
    return session;
}

/// RAII --trace / --xfer-trace support (the CLI twin of
/// bench::ScopedTrace). --xfer-trace alone still installs the session so
/// transfer metrics have somewhere to land.
class TraceScope {
public:
    TraceScope(const std::string& path, bool xfer_summary)
        : path_(path), xfer_summary_(xfer_summary) {
        if (!path_.empty() || xfer_summary_) {
            session_ = std::make_unique<obs::TraceSession>();
        }
    }
    ~TraceScope() {
        if (!session_) return;
        if (!path_.empty()) {
            const auto json =
                obs::chrome_trace_json(session_->recorder());
            std::ofstream out(path_, std::ios::binary);
            if (out) {
                out.write(json.data(),
                          static_cast<std::streamsize>(json.size()));
                std::fprintf(stderr, "trace written to %s (%zu bytes)\n",
                             path_.c_str(), json.size());
            } else {
                std::fprintf(stderr, "ERROR: cannot write trace to %s\n",
                             path_.c_str());
            }
            std::fprintf(stderr, "%s",
                         obs::stage_summary(session_->recorder(),
                                            &session_->registry())
                             .c_str());
        }
        if (xfer_summary_) {
            const auto summary =
                obs::xfer_summary(session_->registry());
            std::fprintf(stderr, "%s",
                         summary.empty()
                             ? "no host<->device transfers recorded\n"
                             : summary.c_str());
        }
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    std::string path_;
    bool xfer_summary_ = false;
    std::unique_ptr<obs::TraceSession> session_;
};

// ------------------------------------------------------- index build

int run_index_build(const util::Args& args) {
    const std::string fasta = args.get_string("ref", "");
    const std::string out_path = args.get_string("out", "");
    if (args.has("help") || fasta.empty() || out_path.empty()) {
        std::fputs(kIndexUsage, args.has("help") ? stdout : stderr);
        return args.has("help") ? 0 : 2;
    }
    const auto sa_sample =
        static_cast<std::uint32_t>(args.get_int("sa-sample", 4));
    const auto checkpoint =
        static_cast<std::uint32_t>(args.get_int("checkpoint", 128));
    const auto qgram = static_cast<std::uint32_t>(
        args.get_int("qgram", index::FmIndex::kDefaultQgramLength));

    util::Stopwatch timer;
    const auto records = genomics::read_fasta_file(fasta);
    if (records.empty()) throw CliError("no sequences in " + fasta);
    const genomics::MultiReference multi(records);
    std::fprintf(stderr, "reference: %zu sequence(s), %zu bp (%.1f s)\n",
                 multi.sequence_count(), multi.concatenated().size(),
                 timer.seconds());

    const auto shards =
        static_cast<std::uint32_t>(args.get_int("shards", 0));
    const auto shard_budget =
        static_cast<std::uint64_t>(args.get_int("shard-budget", 0));
    if (shards > 0 || shard_budget > 0) {
        index::ShardBuildConfig build_config;
        build_config.plan.shard_count = shards;
        build_config.plan.budget_bytes = shard_budget;
        build_config.plan.overlap =
            static_cast<std::uint32_t>(args.get_int("overlap", 512));
        build_config.plan.sa_sample = sa_sample;
        build_config.plan.checkpoint_every = checkpoint;
        build_config.plan.qgram_length = qgram;
        build_config.jobs =
            static_cast<std::uint32_t>(args.get_int("jobs", 1));
        const auto result =
            index::build_sharded_index(multi, out_path, build_config);
        std::fprintf(stderr,
                     "%zu shard(s) built in %.2f s with %u job(s), "
                     "manifest %s (largest shard ~%.1f MB)\n",
                     result.shard_paths.size(), result.build_seconds,
                     build_config.jobs, result.manifest_path.c_str(),
                     static_cast<double>(
                         result.plan.max_estimated_bytes) /
                         1e6);
        return 0;
    }

    timer.reset();
    const index::FmIndex fm(multi.concatenated(), sa_sample, checkpoint,
                            qgram);
    const double build_seconds = timer.seconds();
    timer.reset();
    index::write_rix(out_path, multi, fm);
    std::fprintf(stderr,
                 "index built in %.2f s, %s written in %.2f s "
                 "(%.1f MB in memory)\n",
                 build_seconds, out_path.c_str(), timer.seconds(),
                 static_cast<double>(fm.memory_bytes()) / 1e6);
    return 0;
}

// ----------------------------------------------------------------- map

int run_map(const util::Args& args, bool deprecated_form) {
    const bool has_source = args.has("ref") || args.has("reference") ||
                            args.has("index");
    const std::string reads_path = args.get_string("reads", "");
    if (args.has("help") || !has_source || reads_path.empty()) {
        std::fputs(kMapUsage, args.has("help") ? stdout : stderr);
        return args.has("help") ? 0 : 2;
    }
    if (deprecated_form) {
        std::fprintf(stderr,
                     "repute: the flat invocation is deprecated; use "
                     "`repute map --ref ...` (see `repute --help`)\n");
    }
    const TraceScope trace(args.get_string("trace", ""),
                           args.get_bool("xfer-trace", false));

    auto config = session_config_from(args);
    config.mapper_pool = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("threads", 1), 1));
    const auto session = open_session(args, std::move(config));

    pipeline::MapRequest request;
    request.delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    request.cigar = args.get_bool("cigar", true);
    request.monolithic = args.has("monolithic");
    request.map_workers = session->config().mapper_pool;
    request.queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth", 4));
    request.reader.batch_size =
        static_cast<std::size_t>(args.get_int("batch-size", 4096));
    request.reader.read_length =
        static_cast<std::size_t>(args.get_int("read-length", 0));
    request.reader.length_grid =
        static_cast<std::size_t>(args.get_int("length-grid", 16));
    request.reader.on_malformed =
        parse_on_malformed(args.get_string("on-malformed", "drop"));
    request.pair.min_insert = static_cast<std::uint32_t>(
        args.get_int("insert-min", request.pair.min_insert));
    request.pair.max_insert = static_cast<std::uint32_t>(
        args.get_int("insert-max", request.pair.max_insert));

    std::ifstream reads_file(reads_path, std::ios::binary);
    if (!reads_file) throw CliError("cannot read " + reads_path);
    request.reads = &reads_file;
    std::ifstream reads2_file;
    const std::string reads2_path = args.get_string("reads2", "");
    if (!reads2_path.empty()) {
        reads2_file.open(reads2_path, std::ios::binary);
        if (!reads2_file) throw CliError("cannot read " + reads2_path);
        request.reads2 = &reads2_file;
    }

    const std::string out_path = args.get_string("out", "out.sam");
    std::ofstream out_file;
    const bool to_stdout = out_path == "-";
    if (!to_stdout) {
        out_file.open(out_path, std::ios::binary);
        if (!out_file) throw CliError("cannot write " + out_path);
    }
    std::ostream& out = to_stdout ? std::cout : out_file;

    const auto response = session->map(request, out);

    std::fprintf(stderr,
                 "%zu reads in (%zu dropped) -> %zu SAM records "
                 "(%zu boundary-dropped, %zu cigar-dropped) in %.2f s "
                 "(%.0f reads/s)\n",
                 response.reads_in, response.dropped,
                 response.emitted.records,
                 response.emitted.dropped_boundary,
                 response.emitted.dropped_cigar, response.wall_seconds,
                 response.wall_seconds > 0
                     ? static_cast<double>(response.emitted.reads) /
                           response.wall_seconds
                     : 0.0);
    if (response.pipeline.units > 0) {
        std::fprintf(stderr, "%s", response.pipeline.format().c_str());
    }
    return 0;
}

// --------------------------------------------------------------- serve

std::atomic<serve::Server*> g_server{nullptr};

void handle_shutdown_signal(int) {
    if (auto* server = g_server.load()) server->stop();
}

int run_serve(const util::Args& args) {
    const std::string socket_path = args.get_string("socket", "");
    const bool has_source = args.has("ref") || args.has("index");
    if (args.has("help") || socket_path.empty() || !has_source) {
        std::fputs(kServeUsage, args.has("help") ? stdout : stderr);
        return args.has("help") ? 0 : 2;
    }

    serve::ServerConfig server_config;
    server_config.socket_path = socket_path;
    server_config.handlers =
        static_cast<std::size_t>(args.get_int("handlers", 2));
    server_config.pending =
        static_cast<std::size_t>(args.get_int("pending", 8));

    auto config = session_config_from(args);
    config.mapper_pool = static_cast<std::size_t>(args.get_int(
        "mappers",
        static_cast<std::int64_t>(server_config.handlers)));

    // Metrics live for the daemon's lifetime; the shutdown summary
    // includes per-request latency quantiles.
    obs::TraceSession metrics_session;
    const auto session = open_session(args, std::move(config));

    serve::Server server(*session, server_config);
    g_server.store(&server);
    std::signal(SIGTERM, handle_shutdown_signal);
    std::signal(SIGINT, handle_shutdown_signal);
    std::fprintf(stderr,
                 "serving on %s (%zu handlers, %zu pending, %zu "
                 "mappers)\n",
                 socket_path.c_str(), server_config.handlers,
                 server_config.pending, session->config().mapper_pool);

    const std::size_t handled = server.run();
    g_server.store(nullptr);

    const auto latency = metrics_session.registry()
                             .histogram("session.request_seconds")
                             .snapshot();
    std::fprintf(stderr,
                 "drained: %zu request(s) served; latency p50=%.3gs "
                 "p99=%.3gs\n",
                 handled, latency.quantile(0.5), latency.quantile(0.99));
    std::fprintf(stderr, "%s",
                 metrics_session.registry().format().c_str());
    return 0;
}

// -------------------------------------------------------------- client

int run_client_cmd(const util::Args& args) {
    const std::string socket_path = args.get_string("socket", "");
    const std::string reads_path = args.get_string("reads", "");
    if (args.has("help") || socket_path.empty() || reads_path.empty()) {
        std::fputs(kClientUsage, args.has("help") ? stdout : stderr);
        return args.has("help") ? 0 : 2;
    }

    const auto slurp = [](const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        if (!in) throw CliError("cannot read " + path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    };

    serve::WireRequest request;
    request.delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    request.cigar = args.get_bool("cigar", true) ? 1 : 0;
    request.fail_on_malformed =
        args.get_string("on-malformed", "drop") == "fail" ? 1 : 0;
    request.map_workers =
        static_cast<std::uint32_t>(args.get_int("map-workers", 1));
    request.batch_size =
        static_cast<std::uint32_t>(args.get_int("batch-size", 4096));
    request.queue_depth =
        static_cast<std::uint32_t>(args.get_int("queue-depth", 4));
    request.read_length =
        static_cast<std::uint32_t>(args.get_int("read-length", 0));
    request.length_grid =
        static_cast<std::uint32_t>(args.get_int("length-grid", 16));
    request.min_insert =
        static_cast<std::uint32_t>(args.get_int("insert-min", 200));
    request.max_insert =
        static_cast<std::uint32_t>(args.get_int("insert-max", 600));
    request.tenant = args.get_string("tenant", "");
    request.reads = slurp(reads_path);
    const std::string reads2_path = args.get_string("reads2", "");
    if (!reads2_path.empty()) request.reads2 = slurp(reads2_path);

    const std::string out_path = args.get_string("out", "-");
    std::ofstream out_file;
    const bool to_stdout = out_path == "-";
    if (!to_stdout) {
        out_file.open(out_path, std::ios::binary);
        if (!out_file) throw CliError("cannot write " + out_path);
    }
    std::ostream& out = to_stdout ? std::cout : out_file;

    const auto result =
        serve::run_client(socket_path, request, out);
    std::fprintf(stderr, "%s\n", result.summary.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    try {
        if (argc >= 2 && argv[1][0] != '-') {
            const std::string command = argv[1];
            const util::Args args(argc - 1, argv + 1);
            if (command == "index") {
                if (args.positional().empty() ||
                    args.positional().front() != "build") {
                    std::fputs(kIndexUsage, stderr);
                    return 2;
                }
                return run_index_build(args);
            }
            if (command == "map") return run_map(args, false);
            if (command == "serve") return run_serve(args);
            if (command == "client") return run_client_cmd(args);
            std::fprintf(stderr, "repute: unknown command '%s'\n\n%s",
                         command.c_str(), kUsage);
            return 2;
        }
        const util::Args args(argc, argv);
        if (args.has("help") || argc < 2) {
            std::fputs(kUsage, argc < 2 ? stderr : stdout);
            return argc < 2 ? 2 : 0;
        }
        return run_map(args, true); // deprecated flat form
    } catch (const std::exception& e) {
        std::fprintf(stderr, "repute: %s\n", e.what());
        return 1;
    }
}
