// repute — streaming read-mapping CLI over the batch pipeline.
//
//   repute --reference ref.fa --reads reads.fastq [--reads2 mates.fastq]
//          [--out out.sam] [--delta 5] [--smin 14] [--max-locations 100]
//          [--cigar true] [--batch-size 4096] [--queue-depth 4]
//          [--threads 1] [--on-malformed drop|fail] [--read-length 0]
//          [--devices i7-2600[,gtx590-0,...]] [--platform system1]
//          [--schedule static|dynamic] [--monolithic] [--trace out.json]
//
// Reads stream through a bounded three-stage pipeline (parse -> map ->
// SAM write) so peak memory is O(queue-depth x batch-size) regardless
// of file size and parsing/output overlap the mapping; --monolithic
// runs the load-everything-then-map reference path instead (same SAM
// bytes, see tests/test_pipeline.cpp). --reads2 switches to paired-end
// mapping with mate rescue. --trace writes a Chrome trace plus a
// per-stage summary including the pipeline queue/stall metrics.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/paired.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/fastx.hpp"
#include "genomics/multi_reference.hpp"
#include "index/fm_index.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "ocl/platform.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

constexpr const char* kUsage = R"(repute — OpenCL-style heterogeneous read mapper (streaming CLI)

required:
  --reference FILE      multi-sequence FASTA reference
  --reads FILE          FASTA/FASTQ reads (format auto-detected)
options:
  --reads2 FILE         second-mate file: paired-end mapping + rescue
  --out FILE            SAM output path, '-' for stdout (default out.sam)
  --delta N             edit-distance budget (default 5)
  --smin N              minimum seed k-mer length (default 14)
  --max-locations N     mappings reported per read (default 100)
  --cigar BOOL          host-side re-alignment + CIGAR (default true)
  --no-simd             scalar Myers verification (lane-batched SIMD
                        off; output-identical, debugging/timing only)
pipeline:
  --batch-size N        reads per batch (default 4096)
  --queue-depth N       batches buffered between stages (default 4)
  --threads N           concurrent map workers (default 1)
  --on-malformed MODE   drop (count and continue) | fail (default drop)
  --read-length N       fixed read length; 0 = lock to first record
  --monolithic          load whole file, map once, then write (no overlap)
devices:
  --platform NAME       system1 (i7 + 2x GTX590) | system2 (HiKey970)
  --devices LIST        comma-separated device names (default i7-2600)
  --schedule MODE       static | dynamic work-stealing (default static)
observability:
  --trace FILE          write Chrome trace JSON + per-stage summary
)";

struct CliError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const auto comma = csv.find(',', start);
        const auto end = comma == std::string::npos ? csv.size() : comma;
        if (end > start) out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

pipeline::OnMalformed parse_on_malformed(const std::string& mode) {
    if (mode == "drop") return pipeline::OnMalformed::Drop;
    if (mode == "fail") return pipeline::OnMalformed::Fail;
    throw CliError("--on-malformed must be 'drop' or 'fail', got: " +
                   mode);
}

ocl::Platform make_platform(const std::string& name) {
    if (name == "system1") return ocl::Platform::system1();
    if (name == "system2") return ocl::Platform::system2();
    throw CliError("--platform must be 'system1' or 'system2', got: " +
                   name);
}

/// RAII --trace support (the CLI twin of bench::ScopedTrace).
class TraceScope {
public:
    explicit TraceScope(const std::string& path) : path_(path) {
        if (!path_.empty()) {
            session_ = std::make_unique<obs::TraceSession>();
        }
    }
    ~TraceScope() {
        if (!session_) return;
        const auto json = obs::chrome_trace_json(session_->recorder());
        std::ofstream out(path_, std::ios::binary);
        if (out) {
            out.write(json.data(),
                      static_cast<std::streamsize>(json.size()));
            std::fprintf(stderr, "trace written to %s (%zu bytes)\n",
                         path_.c_str(), json.size());
        } else {
            std::fprintf(stderr, "ERROR: cannot write trace to %s\n",
                         path_.c_str());
        }
        std::fprintf(stderr, "%s",
                     obs::stage_summary(session_->recorder(),
                                        &session_->registry())
                         .c_str());
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    std::string path_;
    std::unique_ptr<obs::TraceSession> session_;
};

int run(const util::Args& args) {
    const std::string fasta = args.get_string("reference", "");
    const std::string reads_path = args.get_string("reads", "");
    if (args.has("help") || fasta.empty() || reads_path.empty()) {
        std::fputs(kUsage, fasta.empty() || reads_path.empty() ? stderr
                                                               : stdout);
        return fasta.empty() || reads_path.empty() ? 2 : 0;
    }
    const std::string reads2_path = args.get_string("reads2", "");
    const std::string out_path = args.get_string("out", "out.sam");
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const auto s_min =
        static_cast<std::uint32_t>(args.get_int("smin", 14));
    const auto max_locations =
        static_cast<std::uint32_t>(args.get_int("max-locations", 100));

    pipeline::StreamingReaderConfig reader_config;
    reader_config.batch_size =
        static_cast<std::size_t>(args.get_int("batch-size", 4096));
    reader_config.read_length =
        static_cast<std::size_t>(args.get_int("read-length", 0));
    reader_config.on_malformed =
        parse_on_malformed(args.get_string("on-malformed", "drop"));

    pipeline::PipelineConfig pipe_config;
    pipe_config.queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth", 4));
    const auto threads =
        static_cast<std::size_t>(args.get_int("threads", 1));

    const TraceScope trace(args.get_string("trace", ""));

    // Reference + index.
    util::Stopwatch timer;
    const auto fasta_records = genomics::read_fasta_file(fasta);
    if (fasta_records.empty()) {
        throw CliError("no sequences in " + fasta);
    }
    const genomics::MultiReference multi(fasta_records);
    const auto& reference = multi.concatenated();
    std::fprintf(stderr,
                 "reference: %zu sequence(s), %zu bp (%.1f s)\n",
                 multi.sequence_count(), reference.size(),
                 timer.seconds());
    timer.reset();
    const index::FmIndex fm(reference, 4);
    std::fprintf(stderr, "index built in %.1f s (%.1f MB)\n",
                 timer.seconds(),
                 static_cast<double>(fm.memory_bytes()) / 1e6);

    // Device fleet.
    auto platform = make_platform(args.get_string("platform", "system1"));
    std::vector<core::DeviceShare> shares;
    for (const auto& name :
         split_csv(args.get_string("devices", "i7-2600"))) {
        shares.push_back({&platform.device(name), 1.0});
    }
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = s_min;
    config.kernel.max_locations_per_read = max_locations;
    config.kernel.simd_verification = !args.get_bool("no-simd", false);
    const std::string schedule = args.get_string("schedule", "static");
    if (schedule == "dynamic") {
        config.schedule = core::ScheduleMode::Dynamic;
    } else if (schedule != "static") {
        throw CliError("--schedule must be 'static' or 'dynamic', got: " +
                       schedule);
    }

    // One mapper per map worker: Mapper::map is stateful per instance,
    // and the simulated devices already serialize concurrent launches
    // like shared hardware queues.
    std::vector<std::unique_ptr<core::HeterogeneousMapper>> owned;
    std::vector<core::Mapper*> mappers;
    for (std::size_t w = 0; w < std::max<std::size_t>(threads, 1); ++w) {
        owned.push_back(core::make_repute(reference, fm, shares, config));
        mappers.push_back(owned.back().get());
    }

    // Output.
    std::ofstream out_file;
    const bool to_stdout = out_path == "-";
    if (!to_stdout) {
        out_file.open(out_path, std::ios::binary);
        if (!out_file) throw CliError("cannot write " + out_path);
    }
    std::ostream& out = to_stdout ? std::cout : out_file;
    pipeline::SamEmitterConfig emit_config;
    emit_config.cigar = args.get_bool("cigar", true);
    emit_config.delta = delta;
    pipeline::SamEmitter emitter(out, multi, emit_config);
    emitter.write_header();

    timer.reset();
    pipeline::PipelineStats stats;
    std::size_t reads_in = 0, dropped = 0;

    if (!reads2_path.empty()) { // paired-end
        std::vector<std::unique_ptr<core::PairedMapper>> paired_owned;
        std::vector<core::PairedMapper*> paired;
        core::PairedConfig pair_config;
        pair_config.min_insert = static_cast<std::uint32_t>(
            args.get_int("insert-min", pair_config.min_insert));
        pair_config.max_insert = static_cast<std::uint32_t>(
            args.get_int("insert-max", pair_config.max_insert));
        for (auto& mapper : owned) {
            paired_owned.push_back(std::make_unique<core::PairedMapper>(
                *mapper, reference, pair_config));
            paired.push_back(paired_owned.back().get());
        }
        pipeline::StreamingFastxReader r1(reads_path, reader_config);
        pipeline::StreamingFastxReader r2(reads2_path, reader_config);
        stats = pipeline::run_paired_pipeline(
            r1, r2, paired, delta,
            [&](std::size_t, const pipeline::PairedUnit& unit,
                const core::PairedResult& result) {
                emitter.emit_paired(unit.first, unit.second, result);
            },
            pipe_config);
        reads_in = r1.stats().records + r2.stats().records;
        dropped = r1.stats().dropped() + r2.stats().dropped();
    } else if (args.has("monolithic")) {
        // Reference path: parse everything, map once, write everything.
        std::size_t length_dropped = 0;
        const auto batch = genomics::to_read_batch(
            genomics::read_fastq_file(reads_path), &length_dropped);
        if (batch.empty()) throw CliError("no reads in " + reads_path);
        const auto result = mappers.front()->map(batch, delta);
        emitter.emit(batch, result);
        reads_in = batch.size() + length_dropped;
        dropped = length_dropped;
    } else { // single-end streaming
        pipeline::StreamingFastxReader reader(reads_path, reader_config);
        stats = pipeline::run_mapping_pipeline(
            reader, mappers, delta,
            [&](std::size_t, const genomics::ReadBatch& batch,
                const core::MapResult& result) {
                emitter.emit(batch, result);
            },
            pipe_config);
        reads_in = reader.stats().records + reader.stats().dropped();
        dropped = reader.stats().dropped();
        if (dropped > 0) {
            std::fprintf(stderr,
                         "dropped %zu record(s): %zu malformed, %zu "
                         "wrong length (last: %s)\n",
                         dropped, reader.stats().dropped_malformed,
                         reader.stats().dropped_length,
                         reader.stats().last_error.empty()
                             ? "length mismatch"
                             : reader.stats().last_error.c_str());
        }
    }

    const double wall = timer.seconds();
    const auto& emitted = emitter.stats();
    std::fprintf(stderr,
                 "%zu reads in (%zu dropped) -> %zu SAM records "
                 "(%zu boundary-dropped, %zu cigar-dropped) in %.2f s "
                 "(%.0f reads/s)\n",
                 reads_in, dropped, emitted.records,
                 emitted.dropped_boundary, emitted.dropped_cigar, wall,
                 wall > 0 ? static_cast<double>(emitted.reads) / wall
                          : 0.0);
    if (stats.units > 0) {
        std::fprintf(stderr, "%s", stats.format().c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    try {
        return run(util::Args(argc, argv));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "repute: %s\n", e.what());
        return 1;
    }
}
