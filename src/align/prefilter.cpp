#include "align/prefilter.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace repute::align {

namespace {

constexpr std::uint64_t kOddBits = 0x5555555555555555ULL;

/// Patterns above this many packed words (512 bases — MyersMatcher's
/// own cap) skip the filter: admitting unconditionally is always sound.
constexpr std::size_t kMaxStackWords = 16;

/// Ones in the low `count` 2-bit slots (count in [0, 32]).
constexpr std::uint64_t low_slots(std::int64_t count) noexcept {
    return count >= 32 ? ~0ULL
                       : ((1ULL << (2 * count)) - 1);
}

} // namespace

void Prefilter::set_pattern(std::span<const std::uint8_t> pattern) {
    n_ = pattern.size();
    pat_words_ = (n_ + 31) / 32;
    if (pattern_.size() < pat_words_) pattern_.resize(pat_words_);
    std::size_t i = 0;
    for (std::size_t w = 0; w < pat_words_; ++w) {
        std::uint64_t out = 0;
        std::size_t slot = 0;
        if constexpr (std::endian::native == std::endian::little) {
            // 8 byte-codes per load, folded into 16 packed bits with
            // three masked shift-ORs. Re-packing per read is on the
            // steady-state path, so this matters.
            while (slot < 32 && i + 8 <= n_) {
                std::uint64_t x;
                std::memcpy(&x, pattern.data() + i, 8);
                x &= 0x0303030303030303ULL;
                x = (x | (x >> 6)) & 0x000F000F000F000FULL;
                x = (x | (x >> 12)) & 0x000000FF000000FFULL;
                x = (x | (x >> 24)) & 0xFFFFULL;
                out |= x << (2 * slot);
                slot += 8;
                i += 8;
            }
        }
        for (; slot < 32 && i < n_; ++slot, ++i) {
            out |= static_cast<std::uint64_t>(pattern[i] & 3u)
                   << (2 * slot);
        }
        pattern_[w] = out;
    }
    tail_mask_ = low_slots(std::int64_t(n_) - 32 * (std::int64_t(pat_words_) - 1));
}

template <std::size_t PW>
bool Prefilter::admits_impl(const std::uint64_t* words,
                            std::size_t win_off, std::size_t win_len,
                            std::uint32_t delta) {
    // With PW a compile-time constant the per-word loops below unroll
    // completely and the sliding registers live in machine registers —
    // this is what makes a full rejection sweep several times cheaper
    // than the Myers scan it replaces.
    const std::size_t pw = PW != 0 ? PW : pat_words_;
    const auto n = std::int64_t(n_);
    const auto L = std::int64_t(win_len);
    const auto d = std::int64_t(delta);

    // Shifts e ∈ [-δ, L - n + δ]; group starts b ∈ [-δ, L - n]. Mask
    // index idx ↔ shift e = idx - δ; group index g ↔ start b = g - δ,
    // covering masks [g, g + δ], evaluated when mask g + δ is built.
    const std::int64_t shifts = L - n + 2 * d + 1;
    const std::int64_t groups = shifts - d;
    if (groups <= 0) return true; // too short to filter soundly
    const std::size_t avail_words = (win_off + win_len + 31) / 32;
    const std::int64_t avail_bases = std::int64_t(avail_words) * 32;

    const auto block = std::size_t(d) + 1;
    if (block_.size() < block * pw) {
        block_.resize(block * pw);
        suffix_.resize(block * pw);
    }

    // Load the shift registers with the window at the leftmost shift
    // e = -δ: register word w holds window bases [e + 32w, e + 32w + 32)
    // (2-bit packed). Out-of-buffer bases read as zero; they are
    // cleared by the validity fixups below before any popcount.
    std::uint64_t sh[PW != 0 ? PW : kMaxStackWords];
    std::uint64_t pre[PW != 0 ? PW : kMaxStackWords];
    {
        const std::int64_t base = std::int64_t(win_off) - d;
        for (std::size_t w = 0; w < pw; ++w) {
            const std::int64_t b0 = base + 32 * std::int64_t(w);
            std::uint64_t v = 0;
            if (b0 <= -32) {
                v = 0;
            } else if (b0 < 0) {
                v = words[0] << (2 * std::size_t(-b0));
            } else {
                const auto k = std::size_t(b0) / 32;
                const std::size_t s = (std::size_t(b0) % 32) * 2;
                v = k < avail_words ? words[k] >> s : 0ULL;
                if (s != 0 && k + 1 < avail_words) {
                    v |= words[k + 1] << (64 - s);
                }
            }
            sh[w] = v;
        }
    }

    std::uint64_t ops = 0;
    bool admit = false;
    for (std::int64_t blk_lo = 0; blk_lo < shifts && !admit;
         blk_lo += std::int64_t(block)) {
        const std::int64_t blk_hi =
            std::min(shifts, blk_lo + std::int64_t(block));
        for (std::size_t w = 0; w < pw; ++w) pre[w] = ~0ULL;
        for (std::int64_t idx = blk_lo; idx < blk_hi; ++idx) {
            const std::int64_t e = idx - d;
            if (idx != 0) {
                // Advance the shift registers by one base: slide right
                // 2 bits, feed the top slot from the source buffer.
                for (std::size_t w = 0; w + 1 < pw; ++w) {
                    sh[w] = (sh[w] >> 2) | (sh[w + 1] << 62);
                }
                const std::int64_t src = std::int64_t(win_off) + e +
                                         32 * std::int64_t(pw) - 1;
                std::uint64_t top = sh[pw - 1] >> 2;
                if (src >= 0 && src < avail_bases) {
                    top |= ((words[std::size_t(src) >> 5] >>
                             (2 * (std::size_t(src) & 31))) &
                            3ULL)
                           << 62;
                }
                sh[pw - 1] = top;
            }

            // Mismatch mask for this shift: XOR + fold, one bit per
            // mismatching base. The tail mask clears pattern slots ≥ n
            // (pattern_ is zero there but the window is not).
            std::uint64_t* mask = &block_[std::size_t(idx - blk_lo) * pw];
            for (std::size_t w = 0; w < pw; ++w) {
                const std::uint64_t folded = pattern_[w] ^ sh[w];
                mask[w] = (folded | (folded >> 1)) & kOddBits;
            }
            mask[pw - 1] &= tail_mask_;
            // Clear positions outside the window: out-of-window
            // comparisons count as matches (sound — only weakens the
            // filter). Only the δ leftmost / δ rightmost shifts hang
            // over an edge, so the common case pays nothing here.
            if (e < 0) {
                // Pattern positions i < -e fall left of the window.
                const std::int64_t c = -e;
                std::size_t w = 0;
                for (; 32 * std::int64_t(w + 1) <= c; ++w) mask[w] = 0;
                if (w < pw) {
                    mask[w] &= ~low_slots(c - 32 * std::int64_t(w));
                }
            }
            const bool fully_inside = e >= 0 && e <= L - n;
            if (e > L - n) {
                // Pattern positions i ≥ L - e fall right of the window.
                const std::int64_t c = std::max<std::int64_t>(L - e, 0);
                std::size_t w = std::size_t(c) / 32;
                if (w < pw) {
                    mask[w] &= low_slots(c - 32 * std::int64_t(w));
                    for (++w; w < pw; ++w) mask[w] = 0;
                }
            }
            ops += 2 * pw;

            if (fully_inside) {
                // Exact-match certificate: the whole pattern sits in
                // the window at this shift with zero mismatches ⇒ the
                // window's best edit distance is exactly 0.
                std::uint64_t any = 0;
                for (std::size_t w = 0; w < pw; ++w) any |= mask[w];
                if (any == 0) {
                    last_exact_ = true;
                    admit = true;
                    break;
                }
            }

            for (std::size_t w = 0; w < pw; ++w) pre[w] &= mask[w];

            if (idx < d) continue; // no group ends at this mask yet
            const std::int64_t g = idx - d;
            std::uint64_t pc = 0;
            if (g >= blk_lo) {
                // Group lies entirely in this block (g == blk_lo):
                // the prefix currently holds exactly masks [g, g+δ].
                for (std::size_t w = 0; w < pw; ++w) {
                    pc += std::uint64_t(std::popcount(pre[w]));
                }
            } else {
                const std::uint64_t* suf =
                    &suffix_[std::size_t(g - blk_lo +
                                         std::int64_t(block)) *
                             pw];
                for (std::size_t w = 0; w < pw; ++w) {
                    pc += std::uint64_t(std::popcount(suf[w] & pre[w]));
                }
            }
            ops += pw;
            if (pc <= std::uint64_t(d)) {
                admit = true; // early accept
                break;
            }
        }
        if (!admit && blk_hi < shifts) {
            // Suffix ANDs of this (full) block for the next block.
            const auto cnt = std::size_t(blk_hi - blk_lo);
            std::copy_n(&block_[(cnt - 1) * pw], pw,
                        &suffix_[(cnt - 1) * pw]);
            for (std::size_t i = cnt - 1; i-- > 0;) {
                for (std::size_t w = 0; w < pw; ++w) {
                    suffix_[i * pw + w] =
                        block_[i * pw + w] & suffix_[(i + 1) * pw + w];
                }
            }
            ops += cnt * pw;
        }
    }
    last_word_ops_ = ops;
    return admit;
}

bool Prefilter::admits(const std::uint64_t* words, std::size_t win_off,
                       std::size_t win_len, std::uint32_t delta) {
    last_word_ops_ = 0;
    last_exact_ = false;
    if (win_len == 0 || n_ == 0) return true;
    if (pat_words_ > kMaxStackWords) return true; // over Myers' cap
    switch (pat_words_) {
    case 1: return admits_impl<1>(words, win_off, win_len, delta);
    case 2: return admits_impl<2>(words, win_off, win_len, delta);
    case 3: return admits_impl<3>(words, win_off, win_len, delta);
    case 4: return admits_impl<4>(words, win_off, win_len, delta);
    case 5: return admits_impl<5>(words, win_off, win_len, delta);
    default: return admits_impl<0>(words, win_off, win_len, delta);
    }
}

} // namespace repute::align
