#pragma once
// Multi-candidate banded Myers verification (lane-batched SWAR).
//
// The scalar δ-banded scan (MyersMatcher::best_in_bounded) verifies one
// candidate window per call; its band schedule — which 64-row words are
// live at column j, where segments start and end — is a closed-form
// function of (pattern length m, text length t, δ) only, never of the
// window bytes. So a batch of windows sharing (m, t, δ) can run the
// *same* schedule with the per-lane bit-state (VP/VN/Eq/boundary score)
// laid out structure-of-arrays, one 64-bit word per lane, and the whole
// column update becomes straight-line 64-bit vector arithmetic across
// lanes — vertical SWAR in the sw-vector.c / minimap2-acceleration
// style, with zero lane divergence by construction.
//
// The engine computes, lane for lane, the exact algorithm of
// best_in_bounded(): same activation/freeze columns, same frozen-
// boundary carries, same branchless boundary-score tracking, same
// early-exit rule (a finished lane freezes its result at the column the
// scalar scan would have stopped; the batch runs on until every lane is
// settled). Results — distance, earliest end, early-exit flag — are
// byte-identical per lane, pinned by the differential harness in
// tests/test_myers_simd.cpp.
//
// Backends: the column step is written as fixed-trip lane loops over
// uint64 arrays, compiled per-file with -mavx2 / -msse4.2 behind the
// REPUTE_SIMD CMake option (modeled on REPUTE_POPCNT); without the
// option — or on compilers rejecting the flags — the identical source
// builds as the portable fallback. One source of truth, so every
// backend is equivalent by construction, not by parallel maintenance.

#include <cstdint>
#include <span>
#include <vector>

#include "align/myers.hpp"

namespace repute::align {

/// Instruction set the batched engine was compiled for:
/// "avx512" | "avx2" | "sse4.2" | "portable".
const char* myers_simd_backend() noexcept;

/// A maximal run of same-length verification jobs after bucketing:
/// order[first, first + count) index the caller's job list, all with
/// window length `length`.
struct LengthBucket {
    std::uint32_t length = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
};

/// Stable-partitions job indices [0, lengths.size()) by window length.
/// `order` receives a permutation of [0, n) grouped bucket by bucket
/// (buckets in first-appearance order of their length; original order
/// preserved within a bucket); `buckets` receives the group table.
/// Both outputs are cleared first and reuse capacity — no steady-state
/// allocation. O(n · distinct-lengths); candidate windows of one strand
/// take at most a handful of distinct clamped lengths.
void bucket_by_length(std::span<const std::uint32_t> lengths,
                      std::vector<std::uint32_t>& order,
                      std::vector<LengthBucket>& buckets);

class MyersSimdEngine {
public:
    /// Candidate windows verified per batch. Fixed across backends so
    /// bucketing, tail handling, and metrics do not depend on the
    /// instruction set (AVX-512 holds the lane row in one zmm, AVX2 in
    /// a ymm pair, SSE in four xmm, the portable build in a plain
    /// array).
    static constexpr std::size_t kLanes = 8;

    static constexpr std::size_t kMaxPatternLength =
        MyersMatcher::kMaxPatternLength;

    MyersSimdEngine() = default;
    explicit MyersSimdEngine(std::span<const std::uint8_t> pattern);

    /// Re-targets the engine; same contract and Peq layout as
    /// MyersMatcher::set_pattern (no allocation once warmed).
    void set_pattern(std::span<const std::uint8_t> pattern);

    /// Batched δ-banded early-exit scan: texts[0..count) all point at
    /// windows of exactly `text_length` bases (codes 0..3). Writes
    /// out[i] = MyersMatcher(pattern).best_in_bounded(texts[i], delta)
    /// — bit-for-bit, including the early_exit flag — for every lane.
    /// count must be in [1, kLanes]; unused lanes cost vector width,
    /// not correctness (partial batches are valid, the kernel simply
    /// prefers its scalar tail fallback for them).
    void best_in_bounded_multi(const std::uint8_t* const* texts,
                               std::size_t count, std::size_t text_length,
                               std::uint32_t delta,
                               MyersMatcher::BoundedHit* out) const noexcept;

    std::size_t pattern_length() const noexcept { return m_; }
    std::size_t word_count() const noexcept { return words_; }

    /// Vector word-columns executed by the most recent batch: one unit
    /// is one Myers column word advanced across *all* lanes at once
    /// (the honest device-model cost of the batched step — see
    /// OpWeights::simd_word). The batch runs until its last live lane
    /// settles, so early-exiting lanes do not shrink this number.
    std::uint64_t last_word_ops() const noexcept { return last_word_ops_; }

private:
    std::size_t m_ = 0;
    std::size_t words_ = 0;
    std::uint64_t top_mask_ = 0;
    std::vector<std::uint64_t> peq_; ///< Peq[c * words_ + w]
    /// Column-major symbol staging: tsym_[j * kLanes + l] = texts[l][j],
    /// widened to 64 bits so every column reads one contiguous lane row.
    /// Grows to the longest window seen, then reuses capacity (the
    /// zero-allocation steady-state contract of KernelScratch).
    mutable std::vector<std::uint64_t> tsym_;
    mutable std::uint64_t last_word_ops_ = 0;
};

} // namespace repute::align
