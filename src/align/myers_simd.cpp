#include "align/myers_simd.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

// Lane-batched implementation notes.
//
// Correctness strategy: this file re-runs the *identical* computation
// of MyersMatcher::best_in_bounded — same band schedule (activation /
// freeze / segment boundaries, all closed-form in j given m, t, δ and
// therefore shared by every lane of a bucket), same column dataflow,
// same branchless boundary-score tracking, same early-exit rule — with
// the per-lane 64-bit state transposed into structure-of-arrays form.
// The scalar scan's fused single-word / two-word segment specials are
// algebraically the generic word loop restricted to their spans, so
// matching the generic dataflow matches every scalar segment shape
// bit for bit. A lane whose scalar scan would have stopped at column j
// freezes its result there; the batch keeps advancing the remaining
// lanes, which cannot disturb a frozen lane's recorded hit (its
// boundary score is parked at a sentinel no later column can improve).
//
// Performance strategy: the kLanes-wide state is a small array of
// *native-width* GNU vector-extension registers (1×512-bit under
// -mavx512f, 2×256-bit under -mavx2, 4×128-bit under SSE), so one
// column step is straight-line
// vector arithmetic over registers. Two tempting alternatives fail on
// GCC: plain 8-trip lane loops get fully unrolled before the
// vectorizer runs and the state round-trips through memory between
// them; and a single 512-bit vector type triggers generic (memory-
// bound) lowering on non-AVX512 targets. The bottom-row bookkeeping
// (best-so-far, early-exit test) is compare/blend vector code too; the
// only scalar work left is one symbol-transpose pass per batch and a
// rare finalize step on the columns where a lane actually settles.
// Compilers without the GNU vector extension compile the same
// algorithm over a plain-array lane type with identical operator
// semantics, so every backend shares one source of truth.

namespace repute::align {

namespace lanes {

constexpr std::size_t kL = MyersSimdEngine::kLanes;

#if defined(__GNUC__) || defined(__clang__)

// 64-bit lanes per native vector register. The component count is a
// compile-time constant, so the per-component loops below fully unroll
// and scalar-replace into registers.
#if defined(__AVX512F__)
constexpr std::size_t kVL = 8;
#elif defined(__AVX2__)
constexpr std::size_t kVL = 4;
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ALTIVEC__)
constexpr std::size_t kVL = 2;
#else
constexpr std::size_t kVL = 1;
#endif
constexpr std::size_t kNV = kL / kVL;

typedef std::uint64_t VU __attribute__((vector_size(kVL * 8)));
typedef std::int64_t VS __attribute__((vector_size(kVL * 8)));

struct U {
    VU c[kNV];
};
struct S {
    VS c[kNV];
};

inline U operator&(U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] & b.c[n];
    return r;
}
inline U operator|(U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] | b.c[n];
    return r;
}
inline U operator^(U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] ^ b.c[n];
    return r;
}
inline U operator+(U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] + b.c[n];
    return r;
}
inline U operator-(U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] - b.c[n];
    return r;
}
inline U operator~(U a) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = ~a.c[n];
    return r;
}
inline U operator<<(U a, unsigned s) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] << s;
    return r;
}
inline U operator>>(U a, unsigned s) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] >> s;
    return r;
}
inline S operator+(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] + b.c[n];
    return r;
}
inline S operator-(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] - b.c[n];
    return r;
}
inline S operator&(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] & b.c[n];
    return r;
}
inline S operator|(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] | b.c[n];
    return r;
}
inline S operator<(U a, U b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] < b.c[n];
    return r;
}
inline S operator==(U a, U b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] == b.c[n];
    return r;
}
inline S operator<(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] < b.c[n];
    return r;
}
inline S operator>=(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] >= b.c[n];
    return r;
}
inline S operator==(S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = a.c[n] == b.c[n];
    return r;
}
inline U ubc(std::uint64_t x) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = VU{} + x;
    return r;
}
inline S sbc(std::int64_t x) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = VS{} + x;
    return r;
}
inline S asi(U v) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n)
        r.c[n] = reinterpret_cast<VS&>(v.c[n]);
    return r;
}
inline U asu(S v) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n)
        r.c[n] = reinterpret_cast<VU&>(v.c[n]);
    return r;
}
inline U select(S m, U a, U b) noexcept {
    U r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = m.c[n] ? a.c[n] : b.c[n];
    return r;
}
inline S select(S m, S a, S b) noexcept {
    S r;
    for (std::size_t n = 0; n < kNV; ++n) r.c[n] = m.c[n] ? a.c[n] : b.c[n];
    return r;
}
inline U loadu(const std::uint64_t* p) noexcept {
    U r;
    std::memcpy(r.c, p, sizeof r.c);
    return r;
}
inline bool any(S m) noexcept {
    VS acc = m.c[0];
    for (std::size_t n = 1; n < kNV; ++n) acc = acc | m.c[n];
    std::int64_t bits = 0;
    for (std::size_t i = 0; i < kVL; ++i) bits |= acc[i];
    return bits != 0;
}
inline std::int64_t get(const S& v, std::size_t i) noexcept {
    return v.c[i / kVL][i % kVL];
}
inline void set(S& v, std::size_t i, std::int64_t x) noexcept {
    v.c[i / kVL][i % kVL] = x;
}

#else // portable fallback: the same ops over a plain-array lane type

template <typename T> struct Lane8 {
    T v[kL];
};
using U = Lane8<std::uint64_t>;
using S = Lane8<std::int64_t>;

inline U operator&(U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
}
inline U operator|(U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
}
inline U operator^(U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] ^ b.v[i];
    return r;
}
inline U operator+(U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
}
inline U operator-(U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
}
inline U operator~(U a) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = ~a.v[i];
    return r;
}
inline U operator<<(U a, unsigned s) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] << s;
    return r;
}
inline U operator>>(U a, unsigned s) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] >> s;
    return r;
}
inline S operator+(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
}
inline S operator-(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
}
inline S operator&(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
}
inline S operator|(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
}
inline S operator<(U a, U b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
}
inline S operator==(U a, U b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
}
inline S operator<(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
}
inline S operator>=(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] >= b.v[i] ? -1 : 0;
    return r;
}
inline S operator==(S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
}
inline U ubc(std::uint64_t x) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = x;
    return r;
}
inline S sbc(std::int64_t x) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = x;
    return r;
}
inline S asi(U v) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i)
        r.v[i] = static_cast<std::int64_t>(v.v[i]);
    return r;
}
inline U asu(S v) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i)
        r.v[i] = static_cast<std::uint64_t>(v.v[i]);
    return r;
}
inline U select(S m, U a, U b) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i)
        r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
}
inline S select(S m, S a, S b) noexcept {
    S r;
    for (std::size_t i = 0; i < kL; ++i)
        r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
}
inline U loadu(const std::uint64_t* p) noexcept {
    U r;
    for (std::size_t i = 0; i < kL; ++i) r.v[i] = p[i];
    return r;
}
inline bool any(S m) noexcept {
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < kL; ++i) acc |= m.v[i];
    return acc != 0;
}
inline std::int64_t get(const S& v, std::size_t i) noexcept { return v.v[i]; }
inline void set(S& v, std::size_t i, std::int64_t x) noexcept { v.v[i] = x; }

#endif

} // namespace lanes

namespace {
constexpr std::size_t kMaxWords = MyersSimdEngine::kMaxPatternLength / 64;
constexpr std::size_t L = MyersSimdEngine::kLanes;
/// Parked boundary score of a settled lane: larger than any reachable
/// score (|b| drifts at most ±1 per column plus activation jumps
/// bounded by m ≤ 512), so a frozen lane can never look improved and
/// its stop test stays harmlessly true while masked out by the live
/// mask.
constexpr std::int64_t kFrozen = std::int64_t{1} << 40;
} // namespace

const char* myers_simd_backend() noexcept {
#if defined(REPUTE_SIMD_AVX512)
    return "avx512";
#elif defined(REPUTE_SIMD_AVX2)
    return "avx2";
#elif defined(REPUTE_SIMD_SSE42)
    return "sse4.2";
#else
    return "portable";
#endif
}

void bucket_by_length(std::span<const std::uint32_t> lengths,
                      std::vector<std::uint32_t>& order,
                      std::vector<LengthBucket>& buckets) {
    order.clear();
    buckets.clear();
    const std::size_t n = lengths.size();

    // Pass 1: distinct lengths in first-appearance order, with counts.
    // Candidate windows of one strand take only a handful of distinct
    // clamped lengths, so the linear bucket probe beats a sort (and,
    // unlike std::stable_sort, never allocates).
    for (std::size_t i = 0; i < n; ++i) {
        LengthBucket* found = nullptr;
        for (LengthBucket& b : buckets) {
            if (b.length == lengths[i]) {
                found = &b;
                break;
            }
        }
        if (found != nullptr) {
            ++found->count;
        } else {
            buckets.push_back({lengths[i], 0, 1});
        }
    }

    // Pass 2: prefix-sum the bucket starts, then scatter indices using
    // `first` as a write cursor (restored afterwards).
    std::uint32_t acc = 0;
    for (LengthBucket& b : buckets) {
        b.first = acc;
        acc += b.count;
    }
    order.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (LengthBucket& b : buckets) {
            if (b.length == lengths[i]) {
                order[b.first++] = static_cast<std::uint32_t>(i);
                break;
            }
        }
    }
    for (LengthBucket& b : buckets) b.first -= b.count;
}

MyersSimdEngine::MyersSimdEngine(std::span<const std::uint8_t> pattern) {
    set_pattern(pattern);
}

void MyersSimdEngine::set_pattern(std::span<const std::uint8_t> pattern) {
    m_ = pattern.size();
    words_ = (pattern.size() + 63) / 64;
    if (m_ == 0 || m_ > kMaxPatternLength) {
        throw std::invalid_argument(
            "MyersSimdEngine: pattern length must be in [1, 512]");
    }
    const std::size_t top_bits = (m_ - 1) % 64 + 1;
    top_mask_ = top_bits == 64 ? ~0ULL : ((1ULL << top_bits) - 1);
    peq_.assign(4 * words_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
        peq_[pattern[i] * words_ + i / 64] |= 1ULL << (i % 64);
    }
}

void MyersSimdEngine::best_in_bounded_multi(
    const std::uint8_t* const* texts, std::size_t count,
    std::size_t text_length, std::uint32_t delta,
    MyersMatcher::BoundedHit* out) const noexcept {
    using lanes::any;
    using lanes::asi;
    using lanes::asu;
    using lanes::get;
    using lanes::loadu;
    using lanes::sbc;
    using lanes::select;
    using lanes::set;
    using lanes::ubc;
    using lanes::S;
    using lanes::U;

    last_word_ops_ = 0;
    if (count == 0) return;

    const auto t = static_cast<std::int64_t>(text_length);
    const auto m = static_cast<std::int64_t>(m_);
    const auto d = static_cast<std::int64_t>(delta);
    const std::uint64_t* const peq = peq_.data();
    const std::size_t words = words_;

    // One symbol-transpose pass: tsym[j*L + l] = texts[l][j], widened
    // to 64 bits so every column is one contiguous lane-row load and
    // the Eq lookup becomes a compare/blend against the four symbol
    // rows of Peq. Dead padding lanes (l >= count) replay lane 0 so
    // nothing reads out of bounds; their results are never written
    // back.
    tsym_.resize(static_cast<std::size_t>(t) * L);
    std::uint64_t* const tsym = tsym_.data();
    for (std::size_t l = 0; l < L; ++l) {
        const std::uint8_t* const text = texts[l < count ? l : 0];
        for (std::int64_t j = 0; j < t; ++j) {
            tsym[static_cast<std::size_t>(j) * L + l] = text[j];
        }
    }

    // Lane state: lane l of vector word w is candidate l's word w.
    U vp[kMaxWords];
    U vn[kMaxWords];
    for (std::size_t w = 0; w < words; ++w) {
        vp[w] = ubc(w == words - 1 ? top_mask_ : ~0ULL);
        vn[w] = U{};
    }

    std::size_t w_lo = 0;
    std::size_t w_hi =
        std::min(words - 1, static_cast<std::size_t>((d + 2) / 64));
    const std::int64_t boundary0 =
        std::min<std::int64_t>(64 * static_cast<std::int64_t>(w_hi + 1), m);

    S bv = sbc(kFrozen); // boundary score E[boundary][j], per lane
    S best_dv = sbc(m);  // best bottom-row score so far
    S best_ev = S{};     // its earliest end column
    S livev = S{};       // ~0 while scanning, 0 once settled
    bool early[L] = {};
    for (std::size_t l = 0; l < count; ++l) {
        set(bv, l, boundary0);
        set(livev, l, -1);
    }
    std::size_t n_live = count;
    std::uint64_t ops = 0;
    const S dp1v = sbc(d + 1);

    // Bottom-row bookkeeping for one column, identical decision order
    // to the scalar scan: update best on strict improvement, then stop
    // on a certified 0 or once the 1-Lipschitz bottom row can no longer
    // cross the decision threshold in the remaining columns. All
    // compare/blend; the scalar finalize loop runs only on the rare
    // columns where some lane actually settles.
    const auto settle_lanes = [&](std::int64_t j) {
        const std::int64_t jj = j + 1;
        const S improved = bv < best_dv;
        best_ev = select(improved, sbc(jj), best_ev);
        best_dv = select(improved, bv, best_dv);
        const S bound = select(best_dv < dp1v, best_dv, dp1v);
        const S stop =
            ((best_dv == S{}) | (bv >= bound + sbc(t - jj))) & livev;
        if (any(stop)) {
            for (std::size_t l = 0; l < L; ++l) {
                if (get(stop, l) != 0) {
                    early[l] = jj < t;
                    set(livev, l, 0);
                    set(bv, l, kFrozen);
                    --n_live;
                }
            }
        }
    };

    std::int64_t j = 0;
    while (j < t && n_live > 0) {
        // Shared band schedule — data-independent, so one instance
        // serves every lane (this is what length-homogeneous bucketing
        // buys: zero lane divergence).
        if (w_hi < words - 1 &&
            (j + d + 2) / 64 > static_cast<std::int64_t>(w_hi)) {
            ++w_hi;
            const std::int64_t p_old = 64 * static_cast<std::int64_t>(w_hi);
            const std::int64_t p_new = std::min<std::int64_t>(
                64 * static_cast<std::int64_t>(w_hi + 1), m);
            // Frozen lanes stay parked at the sentinel.
            bv = bv + select(livev, sbc(p_new - p_old), S{});
        }
        while (w_lo < w_hi &&
               j + 1 >=
                   64 * static_cast<std::int64_t>(w_lo + 1) - m + t + d + 2) {
            ++w_lo;
        }
        std::int64_t seg_end = t;
        if (w_hi < words - 1) {
            seg_end = std::min(
                seg_end, 64 * static_cast<std::int64_t>(w_hi + 1) - d - 2);
        }
        if (w_lo < w_hi) {
            seg_end = std::min(
                seg_end,
                64 * static_cast<std::int64_t>(w_lo + 1) - m + t + d + 1);
        }

        const bool at_bottom = w_hi == words - 1;
        const unsigned bshift =
            at_bottom ? static_cast<unsigned>((m_ - 1) % 64) : 63u;
        const std::uint64_t ph_in = w_lo == 0 ? 0ULL : 1ULL;

        if (w_lo == w_hi) {
            // Single-word band (the bulk of every scan): the classic
            // one-word Myers step across lanes. Peq of this word is
            // four broadcast constants, so the per-lane symbol lookup
            // is a three-blend chain instead of a gather.
            const std::size_t w = w_lo;
            const U validv = ubc(at_bottom ? top_mask_ : ~0ULL);
            const U p0 = ubc(peq[0 * words + w]);
            const U p1 = ubc(peq[1 * words + w]);
            const U p2 = ubc(peq[2 * words + w]);
            const U p3 = ubc(peq[3 * words + w]);
            const U onev = ubc(1);
            const U twov = ubc(2);
            const U phinv = ubc(ph_in);
            U vpw = vp[w];
            U vnw = vn[w];
            for (; j < seg_end && n_live > 0; ++j) {
                const U sym = loadu(tsym + static_cast<std::size_t>(j) * L);
                const U eq =
                    select(sym == U{}, p0,
                           select(sym == onev, p1,
                                  select(sym == twov, p2, p3)));
                const U a = eq & vpw;
                const U xh = ((a + vpw) ^ vpw) | eq;
                const U mhb = vpw & xh;
                const U phb = vnw | (~(xh | vpw) & validv);
                bv = bv + asi((phb >> bshift) & onev) -
                     asi((mhb >> bshift) & onev);
                const U ph = (phb << 1) | phinv;
                const U mh = mhb << 1;
                const U xv = eq | vnw;
                vpw = (mh | ~(xv | ph)) & validv;
                vnw = ph & xv & validv;
                ops += 1;
                if (at_bottom) settle_lanes(j);
            }
            vp[w] = vpw;
            vn[w] = vnw;
        } else {
            // Multi-word band: the generic carry-chained step of
            // best_in_bounded, word-major over lane vectors.
            const U onev = ubc(1);
            const U twov = ubc(2);
            const U phinv = ubc(ph_in);
            for (; j < seg_end && n_live > 0; ++j) {
                const U sym = loadu(tsym + static_cast<std::size_t>(j) * L);
                const S is0 = sym == U{};
                const S is1 = sym == onev;
                const S is2 = sym == twov;
                U eq[kMaxWords];
                U xh[kMaxWords];
                U ph[kMaxWords];
                U mh[kMaxWords];
                S carry = S{}; // ~0 in lanes whose add carried out
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    eq[w] =
                        select(is0, ubc(peq[0 * words + w]),
                               select(is1, ubc(peq[1 * words + w]),
                                      select(is2, ubc(peq[2 * words + w]),
                                             ubc(peq[3 * words + w]))));
                    const U a = eq[w] & vp[w];
                    const U sum_lo = a + vp[w];
                    const S c1 = sum_lo < a;
                    // carry is 0 or ~0; subtracting ~0 adds the 1.
                    const U sum = sum_lo - asu(carry);
                    const S c2 = sum < sum_lo;
                    carry = c1 | c2;
                    xh[w] = (sum ^ vp[w]) | eq[w];
                }
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const U validv = ubc(w == words - 1 ? top_mask_ : ~0ULL);
                    ph[w] = vn[w] | (~(xh[w] | vp[w]) & validv);
                    mh[w] = vp[w] & xh[w];
                }
                bv = bv + asi((ph[w_hi] >> bshift) & onev) -
                     asi((mh[w_hi] >> bshift) & onev);
                U ph_c = phinv;
                U mh_c = U{};
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const U ph_next = ph[w] >> 63;
                    const U mh_next = mh[w] >> 63;
                    ph[w] = (ph[w] << 1) | ph_c;
                    mh[w] = (mh[w] << 1) | mh_c;
                    ph_c = ph_next;
                    mh_c = mh_next;
                }
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const U validv = ubc(w == words - 1 ? top_mask_ : ~0ULL);
                    const U xv = eq[w] | vn[w];
                    vp[w] = (mh[w] | ~(xv | ph[w])) & validv;
                    vn[w] = ph[w] & xv & validv;
                }
                ops += w_hi - w_lo + 1;
                if (at_bottom) settle_lanes(j);
            }
        }
    }

    for (std::size_t l = 0; l < count; ++l) {
        out[l] = {static_cast<std::uint32_t>(get(best_dv, l)),
                  static_cast<std::uint32_t>(get(best_ev, l)), early[l]};
    }
    last_word_ops_ = ops;
}

} // namespace repute::align
