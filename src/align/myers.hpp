#pragma once
// Myers bit-vector approximate matcher (Myers 1999), multi-word variant.
//
// This is the paper's verification kernel (§II-A): the read is the
// pattern, a candidate window of the reference is the text, and we need
// the minimum semi-global edit distance (free text prefix/suffix). One
// text character costs O(ceil(m/64)) word operations — 2 words for
// n = 100 reads, 3 for n = 150.
//
// The implementation treats the column state (VP/VN) as an m-bit big
// integer: additions carry across words, shifts propagate, and the score
// is tracked at bit m-1. This avoids the padding subtleties of
// block-chained formulations while keeping the inner loop branch-free
// per word.
//
// best_in_bounded() is the δ-banded early-exit variant used by the
// verification funnel: it only answers "distance ≤ δ, and if so which
// distance/end", which lets it skip words whose rows provably cannot
// lie on any ≤ δ alignment path and abandon the window once the bottom
// row cannot come back under δ in the remaining columns (the bottom row
// is 1-Lipschitz along the text). See DESIGN.md "Verification funnel"
// for the exactness argument.

#include <cstdint>
#include <span>
#include <vector>

namespace repute::align {

class MyersMatcher {
public:
    /// Patterns up to kMaxPatternLength (512) bases, codes 0..3.
    /// Throws std::invalid_argument on empty or oversized patterns.
    explicit MyersMatcher(std::span<const std::uint8_t> pattern);

    /// Empty matcher for deferred set_pattern(); best_in() is invalid
    /// until a pattern is set.
    MyersMatcher() = default;

    /// Re-targets the matcher to a new pattern, reusing the Peq storage
    /// (no allocation once warmed to the largest pattern seen).
    void set_pattern(std::span<const std::uint8_t> pattern);

    static constexpr std::size_t kMaxPatternLength = 512;

    struct Hit {
        std::uint32_t distance = 0;
        std::uint32_t text_end = 0; ///< one past the last aligned text char
    };

    /// Minimum edit distance of the pattern over all end positions in
    /// `text`, with the earliest end position achieving it.
    Hit best_in(std::span<const std::uint8_t> text) const noexcept;

    /// Result of the banded scan. `distance` and `text_end` equal
    /// best_in()'s whenever the true distance is ≤ the delta bound;
    /// otherwise distance is some value > delta (the window would be
    /// rejected either way, so the exact overshoot is not computed).
    struct BoundedHit {
        std::uint32_t distance = 0;
        std::uint32_t text_end = 0;
        bool early_exit = false; ///< scan abandoned before the last column
    };

    /// δ-banded early-exit scan: exact for every outcome the kernel
    /// acts on (accept/reject at threshold `delta`, and the reported
    /// distance + earliest end when accepted), while touching only the
    /// Peq words whose rows can still lie on a ≤ delta alignment path.
    BoundedHit best_in_bounded(std::span<const std::uint8_t> text,
                               std::uint32_t delta) const noexcept;

    std::size_t pattern_length() const noexcept { return m_; }
    std::size_t word_count() const noexcept { return words_; }

    /// Approximate work units (word-ops) to scan a text of length t —
    /// used by the device cost model for a full (unbanded) scan.
    std::size_t scan_cost(std::size_t text_length) const noexcept {
        return text_length * words_;
    }

    /// Word-columns actually executed by the most recent best_in() /
    /// best_in_bounded() call — the honest input to the device cost
    /// model (a banded early-exit scan does far fewer than
    /// scan_cost()). Per-matcher state: matchers are per-work-item.
    std::uint64_t last_word_ops() const noexcept { return last_word_ops_; }

private:
    std::size_t m_ = 0;
    std::size_t words_ = 0;
    std::uint64_t top_mask_ = 0;   ///< valid-bit mask for the last word
    std::uint64_t score_bit_ = 0;  ///< bit (m-1) % 64 within the last word
    std::vector<std::uint64_t> peq_; ///< Peq[c * words_ + w]
    mutable std::uint64_t last_word_ops_ = 0;
};

} // namespace repute::align
