#pragma once
// Reference dynamic-programming aligners.
//
// These are the ground-truth implementations the fast kernels are tested
// against, plus the traceback used to emit CIGAR strings (the paper lists
// CIGAR output as future work; we ship it as the extension feature).
// Semi-global here means: the whole pattern must align, the text prefix
// and suffix are free — the standard verification setting where the text
// is a candidate window around a seed hit.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace repute::align {

/// Plain Levenshtein distance (global on both strings). O(|a||b|) time,
/// O(min) space.
std::uint32_t levenshtein(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b);

/// Minimum edit distance of `pattern` against any substring of `text`
/// (free text start and end). O(|p||t|) time, O(|t|) space.
std::uint32_t semiglobal_distance(std::span<const std::uint8_t> pattern,
                                  std::span<const std::uint8_t> text);

/// Banded variant: explores only diagonals within +-band of the main
/// diagonal family. Returns the exact distance when it is <= band,
/// otherwise band+1 (a lower-bound cutoff). O(|p| * band) time.
std::uint32_t banded_semiglobal_distance(
    std::span<const std::uint8_t> pattern,
    std::span<const std::uint8_t> text, std::uint32_t band);

struct SemiGlobalAlignment {
    std::uint32_t distance = 0;
    std::uint32_t text_start = 0; ///< aligned window [text_start, text_end)
    std::uint32_t text_end = 0;
    std::string cigar;            ///< M/I/D ops, pattern-relative
};

/// Full semi-global alignment with traceback. Returns std::nullopt when
/// the best distance exceeds `max_distance`.
std::optional<SemiGlobalAlignment> semiglobal_align(
    std::span<const std::uint8_t> pattern,
    std::span<const std::uint8_t> text, std::uint32_t max_distance);

} // namespace repute::align
