#include "align/myers.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace repute::align {

namespace {
constexpr std::size_t kMaxWords =
    MyersMatcher::kMaxPatternLength / 64; // 8
}

MyersMatcher::MyersMatcher(std::span<const std::uint8_t> pattern) {
    set_pattern(pattern);
}

void MyersMatcher::set_pattern(std::span<const std::uint8_t> pattern) {
    m_ = pattern.size();
    words_ = (pattern.size() + 63) / 64;
    if (m_ == 0 || m_ > kMaxPatternLength) {
        throw std::invalid_argument(
            "MyersMatcher: pattern length must be in [1, 512]");
    }
    const std::size_t top_bits = (m_ - 1) % 64 + 1;
    top_mask_ = top_bits == 64 ? ~0ULL : ((1ULL << top_bits) - 1);
    score_bit_ = 1ULL << ((m_ - 1) % 64);

    peq_.assign(4 * words_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
        peq_[pattern[i] * words_ + i / 64] |= 1ULL << (i % 64);
    }
}

MyersMatcher::Hit MyersMatcher::best_in(
    std::span<const std::uint8_t> text) const noexcept {
    last_word_ops_ = text.size() * words_;
    // Column bit-state as m-bit big integers, low word first.
    std::array<std::uint64_t, kMaxWords> vp{}, vn{};
    for (std::size_t w = 0; w < words_; ++w) vp[w] = ~0ULL;
    vp[words_ - 1] = top_mask_;

    auto score = static_cast<std::uint32_t>(m_);
    Hit best{score, 0};

    for (std::size_t j = 0; j < text.size(); ++j) {
        const std::uint64_t* eq = &peq_[text[j] * words_];

        // Xh = (((Eq & VP) + VP) ^ VP) | Eq, with carry across words.
        std::array<std::uint64_t, kMaxWords> xh;
        std::uint64_t carry = 0;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t a = eq[w] & vp[w];
            const std::uint64_t sum_lo = a + vp[w];
            std::uint64_t carry_out = sum_lo < a ? 1ULL : 0ULL;
            const std::uint64_t sum = sum_lo + carry;
            carry_out |= (sum < sum_lo) ? 1ULL : 0ULL;
            xh[w] = (sum ^ vp[w]) | eq[w];
            carry = carry_out;
        }

        // Horizontal deltas; ~ masked to the m valid bits.
        std::array<std::uint64_t, kMaxWords> ph, mh;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t valid =
                (w == words_ - 1) ? top_mask_ : ~0ULL;
            ph[w] = (vn[w] | (~(xh[w] | vp[w]) & valid));
            mh[w] = vp[w] & xh[w];
        }

        if (ph[words_ - 1] & score_bit_) {
            ++score;
        } else if (mh[words_ - 1] & score_bit_) {
            --score;
        }
        if (score < best.distance) {
            best.distance = score;
            best.text_end = static_cast<std::uint32_t>(j + 1);
        }

        // Shift Ph/Mh left by one across words. Search mode: the carry
        // into bit 0 is 0 because row 0 of the DP is all zeros.
        std::uint64_t ph_carry = 0, mh_carry = 0;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t ph_next = ph[w] >> 63;
            const std::uint64_t mh_next = mh[w] >> 63;
            ph[w] = (ph[w] << 1) | ph_carry;
            mh[w] = (mh[w] << 1) | mh_carry;
            ph_carry = ph_next;
            mh_carry = mh_next;
        }

        // Vertical state update: VP = Mh | ~(Xv | Ph); VN = Ph & Xv
        // where Xv = Eq | VN (old VN).
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t valid =
                (w == words_ - 1) ? top_mask_ : ~0ULL;
            const std::uint64_t xv = eq[w] | vn[w];
            vp[w] = (mh[w] | (~(xv | ph[w]))) & valid;
            vn[w] = ph[w] & xv & valid;
        }
    }
    return best;
}

MyersMatcher::BoundedHit MyersMatcher::best_in_bounded(
    std::span<const std::uint8_t> text,
    std::uint32_t delta) const noexcept {
    // δ-banded variant. Only words whose rows can lie on an alignment
    // path of total cost ≤ δ are computed each column:
    //
    //   * rows below the band (i > column + δ) are dead because
    //     D(i,j) ≥ i - j — skip high words until the band reaches them
    //     (activation). An activated word starts from the column-0
    //     state (all +1 vertical deltas, value = i), which is ≥ the
    //     true value, so by DP monotonicity every computed cell stays
    //     ≥ its true value. Activation happens 2 columns before the
    //     word's first row enters the band, so cells that can lie on a
    //     ≤ δ path are never computed from a same-word stale column.
    //   * rows that cannot reach row m within the remaining columns
    //     ((m - i) - (t - column) > δ) are dead — freeze low words once
    //     all their rows are dead (again with 2 columns of slack) and
    //     feed the boundary with carry 0 / Ph 1 / Mh 0, i.e. an implied
    //     +1 horizontal delta and no match propagation, which also only
    //     inflates. The last word never freezes.
    //
    // Cells of an optimal ≤ δ path all live inside the processed zone
    // and are computed exactly, so whenever the true distance is ≤ δ
    // the computed bottom-row minimum, and its earliest end, equal
    // best_in()'s. When it is > δ every computed bottom value is > δ
    // too, so the reject decision also matches.
    //
    // Early exit is judged on the *computed* bottom score, which this
    // scan changes by at most ±1 per column, so "score - remaining ≥
    // bound" proves the computed minimum (= the decision) can no longer
    // change — exact for accepts and rejects alike.
    //
    // The column loop is segmented: activation and freeze columns are
    // closed-form step functions of j, so within a segment the word
    // range [w_lo, w_hi] is constant. Segments whose band fits in ONE
    // word (the common case for read-length patterns: everything except
    // the columns where the band straddles a 64-row boundary) run a
    // fused single-word Myers step with no carry chains and no per-
    // column band bookkeeping; two-word straddle segments run a fused
    // pair step with the carries spelled out on registers. Together
    // they are what makes the banded scan cheaper than best_in() in
    // wall clock, not just in word-ops.
    std::array<std::uint64_t, kMaxWords> vp{}, vn{};
    for (std::size_t w = 0; w < words_; ++w) vp[w] = ~0ULL;
    vp[words_ - 1] = top_mask_;

    const auto t = static_cast<std::int64_t>(text.size());
    const auto m = static_cast<std::int64_t>(m_);
    const auto d = static_cast<std::int64_t>(delta);

    BoundedHit best{static_cast<std::uint32_t>(m_), 0, false};
    std::size_t w_lo = 0;
    std::size_t w_hi = std::min(
        words_ - 1, static_cast<std::size_t>((d + 2) / 64));
    // Value at pattern-prefix row p = min(64*(w_hi+1), m) of the
    // current column; starts at the column-0 value, which is p.
    std::int64_t boundary = std::min<std::int64_t>(64 * (w_hi + 1), m);
    std::uint64_t ops = 0;

    std::int64_t j = 0;
    bool stopped = false;
    while (j < t && !stopped) {
        if (w_hi < words_ - 1 && (j + d + 2) / 64 > std::int64_t(w_hi)) {
            ++w_hi; // band grew into the next word (≤ 1 per column)
            const std::int64_t p_old = 64 * std::int64_t(w_hi);
            const std::int64_t p_new =
                std::min<std::int64_t>(64 * (w_hi + 1), m);
            boundary += p_new - p_old; // stale deltas below p_new are +1
        }
        while (w_lo < w_hi &&
               j + 1 >= 64 * std::int64_t(w_lo + 1) - m + t + d + 2) {
            ++w_lo;
        }

        // Last column before the next activation / freeze; the band
        // state above guarantees both change columns are > j.
        std::int64_t seg_end = t;
        if (w_hi < words_ - 1) {
            seg_end = std::min(seg_end,
                               64 * std::int64_t(w_hi + 1) - d - 2);
        }
        if (w_lo < w_hi) {
            seg_end = std::min(
                seg_end, 64 * std::int64_t(w_lo + 1) - m + t + d + 1);
        }

        const bool at_bottom = w_hi == words_ - 1;
        if (w_lo == w_hi) {
            // Single-word band: the whole column update is the classic
            // one-word Myers step on word w (no carry chains). The
            // frozen row below (when w > 0) feeds Ph carry 1 / Mh
            // carry 0, exactly as the generic path does.
            const std::size_t w = w_lo;
            const std::uint64_t valid = at_bottom ? top_mask_ : ~0ULL;
            const unsigned bshift =
                at_bottom ? static_cast<unsigned>((m_ - 1) % 64) : 63u;
            const std::uint64_t ph_in = w == 0 ? 0ULL : 1ULL;
            std::uint64_t vpw = vp[w], vnw = vn[w];
            std::int64_t b = boundary;
            const std::int64_t seg_start = j;
            for (; j < seg_end; ++j) {
                const std::uint64_t eqw = peq_[text[j] * words_ + w];
                const std::uint64_t a = eqw & vpw;
                std::uint64_t ph_bits = ((a + vpw) ^ vpw) | eqw; // Xh
                std::uint64_t mh_bits = vpw & ph_bits;
                ph_bits = vnw | (~(ph_bits | vpw) & valid);
                // Branchless ±1: the boundary-bit branches are data-
                // dependent coin flips that would mispredict ~half the
                // columns.
                b += std::int64_t((ph_bits >> bshift) & 1) -
                     std::int64_t((mh_bits >> bshift) & 1);
                ph_bits = (ph_bits << 1) | ph_in;
                mh_bits <<= 1;
                const std::uint64_t xv = eqw | vnw;
                vpw = (mh_bits | ~(xv | ph_bits)) & valid;
                vnw = ph_bits & xv & valid;
                if (at_bottom) {
                    if (b < std::int64_t(best.distance)) {
                        best.distance = static_cast<std::uint32_t>(b);
                        best.text_end = static_cast<std::uint32_t>(j + 1);
                        if (b == 0) {
                            best.early_exit = j + 1 < t;
                            stopped = true;
                            ++j;
                            break;
                        }
                    }
                    const std::int64_t bound =
                        std::min<std::int64_t>(best.distance, d + 1);
                    if (b >= bound + (t - j - 1)) {
                        best.early_exit = j + 1 < t;
                        stopped = true;
                        ++j;
                        break;
                    }
                }
            }
            vp[w] = vpw;
            vn[w] = vnw;
            boundary = b;
            ops += std::uint64_t(j - seg_start);
        } else if (w_hi - w_lo == 1) {
            // Fused two-word band: the straddle segments between
            // single-word runs (the band crossing a 64-row boundary).
            // Same dataflow as the generic path with the one-word carry
            // chains spelled out on registers instead of array loops.
            const std::size_t lo = w_lo, hi = w_hi;
            const std::uint64_t valid_hi = at_bottom ? top_mask_ : ~0ULL;
            const unsigned bshift =
                at_bottom ? static_cast<unsigned>((m_ - 1) % 64) : 63u;
            const std::uint64_t ph_in = lo == 0 ? 0ULL : 1ULL;
            std::uint64_t vp0 = vp[lo], vn0 = vn[lo];
            std::uint64_t vp1 = vp[hi], vn1 = vn[hi];
            std::int64_t b = boundary;
            const std::int64_t seg_start = j;
            for (; j < seg_end; ++j) {
                const std::uint64_t* eq = &peq_[text[j] * words_];
                const std::uint64_t eq0 = eq[lo], eq1 = eq[hi];
                const std::uint64_t a0 = eq0 & vp0;
                const std::uint64_t s0 = a0 + vp0;
                const std::uint64_t xh0 = (s0 ^ vp0) | eq0;
                const std::uint64_t a1 = eq1 & vp1;
                const std::uint64_t s1 = a1 + vp1 + (s0 < a0 ? 1ULL : 0ULL);
                const std::uint64_t xh1 = (s1 ^ vp1) | eq1;
                std::uint64_t ph0 = vn0 | ~(xh0 | vp0);
                std::uint64_t mh0 = vp0 & xh0;
                std::uint64_t ph1 = vn1 | (~(xh1 | vp1) & valid_hi);
                std::uint64_t mh1 = vp1 & xh1;
                b += std::int64_t((ph1 >> bshift) & 1) -
                     std::int64_t((mh1 >> bshift) & 1);
                const std::uint64_t ph0_top = ph0 >> 63;
                const std::uint64_t mh0_top = mh0 >> 63;
                ph0 = (ph0 << 1) | ph_in;
                mh0 <<= 1;
                ph1 = (ph1 << 1) | ph0_top;
                mh1 = (mh1 << 1) | mh0_top;
                const std::uint64_t xv0 = eq0 | vn0;
                const std::uint64_t xv1 = eq1 | vn1;
                vp0 = mh0 | ~(xv0 | ph0);
                vn0 = ph0 & xv0;
                vp1 = (mh1 | ~(xv1 | ph1)) & valid_hi;
                vn1 = ph1 & xv1 & valid_hi;
                if (at_bottom) {
                    if (b < std::int64_t(best.distance)) {
                        best.distance = static_cast<std::uint32_t>(b);
                        best.text_end = static_cast<std::uint32_t>(j + 1);
                        if (b == 0) {
                            best.early_exit = j + 1 < t;
                            stopped = true;
                            ++j;
                            break;
                        }
                    }
                    const std::int64_t bound =
                        std::min<std::int64_t>(best.distance, d + 1);
                    if (b >= bound + (t - j - 1)) {
                        best.early_exit = j + 1 < t;
                        stopped = true;
                        ++j;
                        break;
                    }
                }
            }
            vp[lo] = vp0;
            vn[lo] = vn0;
            vp[hi] = vp1;
            vn[hi] = vn1;
            boundary = b;
            ops += 2 * std::uint64_t(j - seg_start);
        } else {
            for (; j < seg_end; ++j) {
                const std::uint64_t* eq = &peq_[text[j] * words_];

                std::array<std::uint64_t, kMaxWords> xh;
                std::uint64_t carry = 0; // frozen boundary: no carry in
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const std::uint64_t a = eq[w] & vp[w];
                    const std::uint64_t sum_lo = a + vp[w];
                    std::uint64_t carry_out = sum_lo < a ? 1ULL : 0ULL;
                    const std::uint64_t sum = sum_lo + carry;
                    carry_out |= (sum < sum_lo) ? 1ULL : 0ULL;
                    xh[w] = (sum ^ vp[w]) | eq[w];
                    carry = carry_out;
                }

                std::array<std::uint64_t, kMaxWords> ph, mh;
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const std::uint64_t valid =
                        (w == words_ - 1) ? top_mask_ : ~0ULL;
                    ph[w] = (vn[w] | (~(xh[w] | vp[w]) & valid));
                    mh[w] = vp[w] & xh[w];
                }

                const unsigned bshift =
                    at_bottom ? static_cast<unsigned>((m_ - 1) % 64)
                              : 63u;
                boundary += std::int64_t((ph[w_hi] >> bshift) & 1) -
                            std::int64_t((mh[w_hi] >> bshift) & 1);
                if (at_bottom && boundary < std::int64_t(best.distance)) {
                    best.distance = static_cast<std::uint32_t>(boundary);
                    best.text_end = static_cast<std::uint32_t>(j + 1);
                }

                // Frozen boundary row: implied horizontal delta +1.
                std::uint64_t ph_carry = w_lo == 0 ? 0 : 1;
                std::uint64_t mh_carry = 0;
                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const std::uint64_t ph_next = ph[w] >> 63;
                    const std::uint64_t mh_next = mh[w] >> 63;
                    ph[w] = (ph[w] << 1) | ph_carry;
                    mh[w] = (mh[w] << 1) | mh_carry;
                    ph_carry = ph_next;
                    mh_carry = mh_next;
                }

                for (std::size_t w = w_lo; w <= w_hi; ++w) {
                    const std::uint64_t valid =
                        (w == words_ - 1) ? top_mask_ : ~0ULL;
                    const std::uint64_t xv = eq[w] | vn[w];
                    vp[w] = (mh[w] | (~(xv | ph[w]))) & valid;
                    vn[w] = ph[w] & xv & valid;
                }

                ops += w_hi - w_lo + 1;

                if (best.distance == 0) {
                    best.early_exit = j + 1 < t;
                    stopped = true;
                    ++j;
                    break;
                }
                if (at_bottom) {
                    const std::int64_t remaining = t - j - 1;
                    const std::int64_t bound =
                        std::min<std::int64_t>(best.distance, d + 1);
                    if (boundary >= bound + remaining) {
                        best.early_exit = j + 1 < t;
                        stopped = true;
                        ++j;
                        break;
                    }
                }
            }
        }
    }
    last_word_ops_ = ops;
    return best;
}

} // namespace repute::align
