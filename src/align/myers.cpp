#include "align/myers.hpp"

#include <array>
#include <stdexcept>

namespace repute::align {

namespace {
constexpr std::size_t kMaxWords =
    MyersMatcher::kMaxPatternLength / 64; // 8
}

MyersMatcher::MyersMatcher(std::span<const std::uint8_t> pattern) {
    set_pattern(pattern);
}

void MyersMatcher::set_pattern(std::span<const std::uint8_t> pattern) {
    m_ = pattern.size();
    words_ = (pattern.size() + 63) / 64;
    if (m_ == 0 || m_ > kMaxPatternLength) {
        throw std::invalid_argument(
            "MyersMatcher: pattern length must be in [1, 512]");
    }
    const std::size_t top_bits = (m_ - 1) % 64 + 1;
    top_mask_ = top_bits == 64 ? ~0ULL : ((1ULL << top_bits) - 1);
    score_bit_ = 1ULL << ((m_ - 1) % 64);

    peq_.assign(4 * words_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
        peq_[pattern[i] * words_ + i / 64] |= 1ULL << (i % 64);
    }
}

MyersMatcher::Hit MyersMatcher::best_in(
    std::span<const std::uint8_t> text) const noexcept {
    // Column bit-state as m-bit big integers, low word first.
    std::array<std::uint64_t, kMaxWords> vp{}, vn{};
    for (std::size_t w = 0; w < words_; ++w) vp[w] = ~0ULL;
    vp[words_ - 1] = top_mask_;

    auto score = static_cast<std::uint32_t>(m_);
    Hit best{score, 0};

    for (std::size_t j = 0; j < text.size(); ++j) {
        const std::uint64_t* eq = &peq_[text[j] * words_];

        // Xh = (((Eq & VP) + VP) ^ VP) | Eq, with carry across words.
        std::array<std::uint64_t, kMaxWords> xh;
        std::uint64_t carry = 0;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t a = eq[w] & vp[w];
            const std::uint64_t sum_lo = a + vp[w];
            std::uint64_t carry_out = sum_lo < a ? 1ULL : 0ULL;
            const std::uint64_t sum = sum_lo + carry;
            carry_out |= (sum < sum_lo) ? 1ULL : 0ULL;
            xh[w] = (sum ^ vp[w]) | eq[w];
            carry = carry_out;
        }

        // Horizontal deltas; ~ masked to the m valid bits.
        std::array<std::uint64_t, kMaxWords> ph, mh;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t valid =
                (w == words_ - 1) ? top_mask_ : ~0ULL;
            ph[w] = (vn[w] | (~(xh[w] | vp[w]) & valid));
            mh[w] = vp[w] & xh[w];
        }

        if (ph[words_ - 1] & score_bit_) {
            ++score;
        } else if (mh[words_ - 1] & score_bit_) {
            --score;
        }
        if (score < best.distance) {
            best.distance = score;
            best.text_end = static_cast<std::uint32_t>(j + 1);
        }

        // Shift Ph/Mh left by one across words. Search mode: the carry
        // into bit 0 is 0 because row 0 of the DP is all zeros.
        std::uint64_t ph_carry = 0, mh_carry = 0;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t ph_next = ph[w] >> 63;
            const std::uint64_t mh_next = mh[w] >> 63;
            ph[w] = (ph[w] << 1) | ph_carry;
            mh[w] = (mh[w] << 1) | mh_carry;
            ph_carry = ph_next;
            mh_carry = mh_next;
        }

        // Vertical state update: VP = Mh | ~(Xv | Ph); VN = Ph & Xv
        // where Xv = Eq | VN (old VN).
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t valid =
                (w == words_ - 1) ? top_mask_ : ~0ULL;
            const std::uint64_t xv = eq[w] | vn[w];
            vp[w] = (mh[w] | (~(xv | ph[w]))) & valid;
            vn[w] = ph[w] & xv & valid;
        }
    }
    return best;
}

} // namespace repute::align
