#include "align/edit_distance.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace repute::align {

std::uint32_t levenshtein(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b) {
    if (a.size() > b.size()) std::swap(a, b);
    std::vector<std::uint32_t> row(a.size() + 1);
    for (std::size_t i = 0; i <= a.size(); ++i) {
        row[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t j = 1; j <= b.size(); ++j) {
        std::uint32_t diag = row[0];
        row[0] = static_cast<std::uint32_t>(j);
        for (std::size_t i = 1; i <= a.size(); ++i) {
            const std::uint32_t up = row[i];
            row[i] = std::min({row[i] + 1, row[i - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0u : 1u)});
            diag = up;
        }
    }
    return row[a.size()];
}

std::uint32_t semiglobal_distance(std::span<const std::uint8_t> pattern,
                                  std::span<const std::uint8_t> text) {
    // Column-wise over text; D[0][j] = 0 (free text prefix).
    std::vector<std::uint32_t> col(pattern.size() + 1);
    for (std::size_t i = 0; i <= pattern.size(); ++i) {
        col[i] = static_cast<std::uint32_t>(i);
    }
    std::uint32_t best = col[pattern.size()];
    for (std::size_t j = 1; j <= text.size(); ++j) {
        std::uint32_t diag = col[0];
        col[0] = 0;
        for (std::size_t i = 1; i <= pattern.size(); ++i) {
            const std::uint32_t up = col[i];
            col[i] =
                std::min({col[i] + 1, col[i - 1] + 1,
                          diag + (pattern[i - 1] == text[j - 1] ? 0u : 1u)});
            diag = up;
        }
        best = std::min(best, col[pattern.size()]);
    }
    return best;
}

std::uint32_t banded_semiglobal_distance(
    std::span<const std::uint8_t> pattern,
    std::span<const std::uint8_t> text, std::uint32_t band) {
    // Row-wise over the pattern; for row i only text columns within
    // [i - band, i + band + slack] can be on an alignment path of cost
    // <= band, where slack = |text| - |pattern| absorbs the free ends.
    const std::uint32_t infinity = band + 1;
    const std::size_t m = pattern.size();
    const std::size_t t = text.size();
    if (m == 0) return 0;
    if (t + band < m) return infinity; // too short even with all inserts

    const std::size_t slack = t > m ? t - m : 0;
    const std::size_t width = 2 * band + slack + 1;

    // prev[w] = D[i-1][j] with j = (i-1) - band + w (clamped to >= 0).
    std::vector<std::uint32_t> prev(width + 2, infinity);
    std::vector<std::uint32_t> curr(width + 2, infinity);

    auto col_of = [&](std::size_t i, std::size_t w) -> std::ptrdiff_t {
        return static_cast<std::ptrdiff_t>(i + w) -
               static_cast<std::ptrdiff_t>(band);
    };

    // Row 0: D[0][j] = 0 for all j in band.
    for (std::size_t w = 0; w < width; ++w) {
        const auto j = col_of(0, w);
        if (j >= 0 && j <= static_cast<std::ptrdiff_t>(t)) prev[w] = 0;
    }

    for (std::size_t i = 1; i <= m; ++i) {
        std::fill(curr.begin(), curr.end(), infinity);
        for (std::size_t w = 0; w < width; ++w) {
            const auto j = col_of(i, w);
            if (j < 0 || j > static_cast<std::ptrdiff_t>(t)) continue;
            std::uint32_t best = infinity;
            if (j == 0) {
                best = static_cast<std::uint32_t>(std::min<std::size_t>(
                    i, infinity));
            } else {
                // Same w in prev row is the diagonal neighbour
                // (j - 1 = (i-1) - band + w).
                const std::uint32_t diag = prev[w];
                if (diag != infinity) {
                    best = std::min(
                        best,
                        diag + (pattern[i - 1] ==
                                        text[static_cast<std::size_t>(j - 1)]
                                    ? 0u
                                    : 1u));
                }
                // Up neighbour D[i-1][j] lives at prev[w+1].
                if (w + 1 < width && prev[w + 1] != infinity) {
                    best = std::min(best, prev[w + 1] + 1);
                }
                // Left neighbour D[i][j-1] lives at curr[w-1].
                if (w > 0 && curr[w - 1] != infinity) {
                    best = std::min(best, curr[w - 1] + 1);
                }
            }
            curr[w] = std::min(best, infinity);
        }
        std::swap(prev, curr);
    }

    std::uint32_t best = infinity;
    for (std::size_t w = 0; w < width; ++w) {
        const auto j = col_of(m, w);
        if (j >= 0 && j <= static_cast<std::ptrdiff_t>(t)) {
            best = std::min(best, prev[w]);
        }
    }
    return best;
}

std::optional<SemiGlobalAlignment> semiglobal_align(
    std::span<const std::uint8_t> pattern,
    std::span<const std::uint8_t> text, std::uint32_t max_distance) {
    const std::size_t m = pattern.size();
    const std::size_t t = text.size();
    // Full table for traceback: D[(m+1) x (t+1)], row-major.
    std::vector<std::uint32_t> d((m + 1) * (t + 1));
    auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
        return d[i * (t + 1) + j];
    };
    for (std::size_t j = 0; j <= t; ++j) at(0, j) = 0;
    for (std::size_t i = 1; i <= m; ++i) {
        at(i, 0) = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= t; ++j) {
            at(i, j) = std::min(
                {at(i - 1, j) + 1, at(i, j - 1) + 1,
                 at(i - 1, j - 1) +
                     (pattern[i - 1] == text[j - 1] ? 0u : 1u)});
        }
    }

    std::size_t best_j = 0;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t j = 0; j <= t; ++j) {
        if (at(m, j) < best) {
            best = at(m, j);
            best_j = j;
        }
    }
    if (best > max_distance) return std::nullopt;

    // Traceback, preferring diagonal moves for compact CIGARs.
    std::string ops;
    std::size_t i = m, j = best_j;
    while (i > 0) {
        if (j > 0 &&
            at(i, j) == at(i - 1, j - 1) +
                            (pattern[i - 1] == text[j - 1] ? 0u : 1u)) {
            ops.push_back('M');
            --i;
            --j;
        } else if (at(i, j) == at(i - 1, j) + 1) {
            ops.push_back('I'); // pattern base consumed, none from text
            --i;
        } else {
            ops.push_back('D'); // text base consumed, none from pattern
            --j;
        }
    }
    std::reverse(ops.begin(), ops.end());

    // Run-length encode into CIGAR.
    SemiGlobalAlignment out;
    out.distance = best;
    out.text_start = static_cast<std::uint32_t>(j);
    out.text_end = static_cast<std::uint32_t>(best_j);
    for (std::size_t k = 0; k < ops.size();) {
        std::size_t run = k;
        while (run < ops.size() && ops[run] == ops[k]) ++run;
        out.cigar += std::to_string(run - k);
        out.cigar.push_back(ops[k]);
        k = run;
    }
    return out;
}

} // namespace repute::align
