#pragma once
// GateKeeper/SHD-style bit-parallel pre-alignment filter.
//
// First layer of the verification funnel: before a candidate window is
// handed to the Myers matcher, a cheap XOR/AND/popcount test proves —
// for most false-positive candidates — that no alignment with edit
// distance ≤ δ can exist in the window. The test is one-sided: it may
// admit a window Myers will reject, but it NEVER rejects a window
// Myers would accept (see DESIGN.md "Verification funnel" for the
// argument; tests/test_funnel.cpp pins it with a property test).
//
// Sketch: a ≤ δ alignment occupying window span [s, s2) with `del`
// deletions places every *matched* pattern position i at window
// position i + e for some shift e in the width-≤δ interval
// [s - del, s + ins]. Writing b = s - del, the whole interval lies in
// [b, b + δ] with b ∈ [-δ, win_len - n] (s ≥ 0 and s2 ≤ win_len bound
// both sides). So if we AND the per-shift mismatch masks over the
// width-(δ+1) shift group starting at b, every matched position
// contributes a zero bit, and the surviving popcount is at most the
// number of edited positions ≤ δ. The filter therefore admits iff ANY
// width-(δ+1) group of consecutive shifts has popcount ≤ δ. Narrow
// groups are what keep the filter strong: AND-ing all shifts at once
// would leave almost no surviving bits even for random windows.
//
// Everything runs on 2-bit-packed words (32 bases per u64, as produced
// by util::PackedDna::extract_words): XOR then fold (x | x>>1) & 0x55…
// marks each mismatching base with one bit, so popcount works directly
// on the folded masks without compaction. Consecutive shifts differ by
// one base, so the shifted window lives in a register file that slides
// right 2 bits per shift — each mask costs one shift/XOR/fold pass
// instead of a fresh gather. Group ANDs use the classic block
// prefix/suffix decomposition so each group costs one AND + popcount
// regardless of δ, masks are built lazily with an early accept exit,
// and an all-zero fully-in-window mask doubles as an exact-match
// certificate (edit distance exactly 0) that lets the caller skip
// Myers entirely. All scratch is grow-only — zero heap allocations in
// steady state.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace repute::align {

class Prefilter {
public:
    /// Re-targets the filter to a new pattern (codes 0..3), 2-bit
    /// packing it into internal words. Grow-only; no allocation once
    /// warmed to the largest pattern seen.
    void set_pattern(std::span<const std::uint8_t> pattern);

    /// Tests the window [win_off, win_off + win_len) of the packed
    /// sequence `words` (base i at bits [2(i%32), 2(i%32)+2) of
    /// words[i/32]). Returns false only if no semi-global alignment of
    /// the pattern within the window can have edit distance ≤ delta.
    /// `words` must cover base win_off + win_len - 1; bases outside the
    /// window may hold anything (they are masked out).
    bool admits(const std::uint64_t* words, std::size_t win_off,
                std::size_t win_len, std::uint32_t delta);

    /// True iff the most recent admits() returned true via the
    /// exact-match certificate: some shift placed the ENTIRE pattern
    /// inside the window with zero mismatches, so the window's best
    /// semi-global edit distance is exactly 0 and the Myers scan can be
    /// skipped without changing output.
    bool last_exact() const noexcept { return last_exact_; }

    std::size_t pattern_length() const noexcept { return n_; }

    /// Packed-word operations executed by the most recent admits()
    /// call — input to the device cost model (OpWeights::prefilter_word).
    std::uint64_t last_word_ops() const noexcept { return last_word_ops_; }

private:
    std::size_t n_ = 0;         ///< pattern length in bases
    std::size_t pat_words_ = 0; ///< ceil(n_ / 32)
    std::vector<std::uint64_t> pattern_; ///< 2-bit packed, zero tail
    std::uint64_t tail_mask_ = 0; ///< valid slots of the last word

    // Scratch for admits(): one block of per-shift mismatch masks and
    // the previous block's suffix-AND array (the sliding window
    // registers and the running prefix live on the stack, specialized
    // on the pattern word count so the sweep fully unrolls).
    std::vector<std::uint64_t> block_;  ///< (delta+1) * pat_words_
    std::vector<std::uint64_t> suffix_; ///< (delta+1) * pat_words_
    std::uint64_t last_word_ops_ = 0;
    bool last_exact_ = false;

    /// The sweep, compiled once per pattern word count (PW = 0 keeps
    /// the count dynamic — the fallback for long patterns).
    template <std::size_t PW>
    bool admits_impl(const std::uint64_t* words, std::size_t win_off,
                     std::size_t win_len, std::uint32_t delta);
};

} // namespace repute::align
