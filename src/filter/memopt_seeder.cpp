#include "filter/memopt_seeder.hpp"

#include <algorithm>
#include <limits>

#include "filter/frequency_scanner.hpp"

namespace repute::filter {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) noexcept {
    return (a == kInf || b == kInf || a > kInf - b) ? kInf : a + b;
}
} // namespace

SeedPlan MemoryOptimizedSeeder::select(const index::FmIndex& fm,
                                       std::span<const std::uint8_t> read,
                                       std::uint32_t delta) const {
    validate_read_parameters(read.size(), delta, s_min_);
    const auto n = static_cast<std::uint32_t>(read.size());
    const std::uint32_t n_seeds = delta + 1;
    const std::uint32_t e = exploration_space(n, delta, s_min_);

    SeedPlan plan;
    FrequencyScanner scanner(fm, read);

    // Window-sized DP rows: row[w] corresponds to prefix end
    // p = x*s_min + w for the iteration currently indexed by x.
    std::vector<std::uint32_t> prev(e + 1, kInf), curr(e + 1, kInf);
    // dividers[(x-2)*(e+1) + w] = best divider d for (x, p).
    std::vector<std::uint16_t> dividers(
        static_cast<std::size_t>(delta) * (e + 1), 0);
    // Scratch for one backward frequency scan (deepest possible scan is
    // a full maximal seed: s_min + e bases).
    std::vector<std::uint32_t> freqs(s_min_ + e);

    // Iteration 1: a single k-mer covering [0, p), p = s_min + w.
    for (std::uint32_t w = 0; w <= e; ++w) {
        const std::uint32_t p = s_min_ + w;
        auto out = std::span<std::uint32_t>(freqs.data(), p);
        plan.fm_extends += scanner.suffix_frequencies(0, p, out);
        prev[w] = out[0]; // freq(0, p)
        ++plan.dp_cells;
    }

    // Iterations x = 2..delta+1 (the paper's "delta iterations"): the
    // 1st section is the first x-1 k-mers (solved, in `prev`), the 2nd
    // section is the x-th k-mer read[d, p).
    for (std::uint32_t x = 2; x <= n_seeds; ++x) {
        const std::uint32_t d_min = (x - 1) * s_min_;
        std::fill(curr.begin(), curr.end(), kInf);
        for (std::uint32_t w = 0; w <= e; ++w) {
            const std::uint32_t p = x * s_min_ + w;
            // One backward scan yields freq(d, p) for all d down to
            // d_min; out[k] = freq(d_min + k, p).
            auto out = std::span<std::uint32_t>(freqs.data(), p - d_min);
            plan.fm_extends += scanner.suffix_frequencies(d_min, p, out);

            std::uint32_t best = kInf;
            std::uint16_t best_d = 0;
            // d = d_min + w' with w' <= w (the 2nd section keeps length
            // >= s_min). Scanning ascending keeps tie-breaks identical
            // to OptimalSeeder.
            for (std::uint32_t wp = 0; wp <= w; ++wp) {
                ++plan.dp_cells;
                if (prev[wp] == kInf) continue;
                const std::uint32_t d = d_min + wp;
                const std::uint32_t total =
                    sat_add(prev[wp], out[d - d_min]);
                if (total < best) {
                    best = total;
                    best_d = static_cast<std::uint16_t>(d);
                    if (best == 0) break;
                }
            }
            curr[w] = best;
            dividers[static_cast<std::size_t>(x - 2) * (e + 1) + w] =
                best_d;
        }
        std::swap(prev, curr);
    }

    // Backtracking (paper Fig. 2, bottom): recover dividers from the
    // last k-mer to the first.
    std::vector<std::uint16_t> boundaries(n_seeds);
    std::uint32_t p = n;
    for (std::uint32_t x = n_seeds; x >= 2; --x) {
        const std::uint32_t w = p - x * s_min_;
        const std::uint16_t d =
            dividers[static_cast<std::size_t>(x - 2) * (e + 1) + w];
        boundaries[x - 1] = d;
        p = d;
    }
    boundaries[0] = 0;

    SeedPlan final_plan = plan_from_boundaries(fm, read, boundaries);
    final_plan.fm_extends += plan.fm_extends;
    final_plan.dp_cells = plan.dp_cells;
    final_plan.scratch_bytes =
        (prev.size() + curr.size() + freqs.size()) * sizeof(std::uint32_t) +
        dividers.size() * sizeof(std::uint16_t);
    return final_plan;
}

} // namespace repute::filter
