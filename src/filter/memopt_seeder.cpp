#include "filter/memopt_seeder.hpp"

#include <algorithm>
#include <limits>

#include "filter/frequency_scanner.hpp"

namespace repute::filter {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) noexcept {
    return (a == kInf || b == kInf || a > kInf - b) ? kInf : a + b;
}
} // namespace

void MemoryOptimizedSeeder::select(const index::FmIndex& fm,
                                   std::span<const std::uint8_t> read,
                                   std::uint32_t delta, SeedPlan& plan,
                                   SeedScratch& scratch) const {
    validate_read_parameters(read.size(), delta, s_min_);
    const auto n = static_cast<std::uint32_t>(read.size());
    const std::uint32_t n_seeds = delta + 1;
    const std::uint32_t e = exploration_space(n, delta, s_min_);

    plan.reset();
    FrequencyScanner scanner(fm, read);

    // Window-sized DP rows: row[w] corresponds to prefix end
    // p = x*s_min + w for the iteration currently indexed by x.
    auto& prev = scratch.row_a;
    auto& curr = scratch.row_b;
    prev.assign(e + 1, kInf);
    curr.assign(e + 1, kInf);
    // dividers[(x-2)*(e+1) + w] = best divider d for (x, p).
    auto& dividers = scratch.dividers;
    dividers.assign(static_cast<std::size_t>(delta) * (e + 1), 0);
    // Scratch for one backward frequency scan (deepest possible scan is
    // a full maximal seed: s_min + e bases).
    auto& freqs = scratch.freqs;
    freqs.resize(s_min_ + e);

    // Iteration 1: a single k-mer covering [0, p), p = s_min + w.
    for (std::uint32_t w = 0; w <= e; ++w) {
        const std::uint32_t p = s_min_ + w;
        auto out = std::span<std::uint32_t>(freqs.data(), p);
        scanner.suffix_frequencies(0, p, out, plan.fm_extends,
                                   plan.qgram_jumps);
        prev[w] = out[0]; // freq(0, p)
        ++plan.dp_cells;
    }

    // Iterations x = 2..delta+1 (the paper's "delta iterations"): the
    // 1st section is the first x-1 k-mers (solved, in `prev`), the 2nd
    // section is the x-th k-mer read[d, p).
    for (std::uint32_t x = 2; x <= n_seeds; ++x) {
        const std::uint32_t d_min = (x - 1) * s_min_;
        std::fill(curr.begin(), curr.end(), kInf);
        for (std::uint32_t w = 0; w <= e; ++w) {
            const std::uint32_t p = x * s_min_ + w;
            // One backward scan yields freq(d, p) for all d down to
            // d_min; out[k] = freq(d_min + k, p).
            auto out = std::span<std::uint32_t>(freqs.data(), p - d_min);
            scanner.suffix_frequencies(d_min, p, out, plan.fm_extends,
                                       plan.qgram_jumps);

            std::uint32_t best = kInf;
            std::uint16_t best_d = 0;
            // d = d_min + w' with w' <= w (the 2nd section keeps length
            // >= s_min). Scanning ascending keeps tie-breaks identical
            // to OptimalSeeder.
            for (std::uint32_t wp = 0; wp <= w; ++wp) {
                ++plan.dp_cells;
                if (prev[wp] == kInf) continue;
                const std::uint32_t d = d_min + wp;
                const std::uint32_t total =
                    sat_add(prev[wp], out[d - d_min]);
                if (total < best) {
                    best = total;
                    best_d = static_cast<std::uint16_t>(d);
                    if (best == 0) break;
                }
            }
            curr[w] = best;
            dividers[static_cast<std::size_t>(x - 2) * (e + 1) + w] =
                best_d;
        }
        std::swap(prev, curr);
    }

    // Backtracking (paper Fig. 2, bottom): recover dividers from the
    // last k-mer to the first.
    auto& boundaries = scratch.boundaries;
    boundaries.assign(n_seeds, 0);
    std::uint32_t p = n;
    for (std::uint32_t x = n_seeds; x >= 2; --x) {
        const std::uint32_t w = p - x * s_min_;
        const std::uint16_t d =
            dividers[static_cast<std::size_t>(x - 2) * (e + 1) + w];
        boundaries[x - 1] = d;
        p = d;
    }
    boundaries[0] = 0;

    plan_from_boundaries(fm, read, boundaries, plan);
    plan.scratch_bytes =
        (prev.size() + curr.size() + freqs.size()) * sizeof(std::uint32_t) +
        dividers.size() * sizeof(std::uint16_t);
}

} // namespace repute::filter
