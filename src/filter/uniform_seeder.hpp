#pragma once
// Naive pigeonhole partition: delta+1 k-mers of (near-)equal length.
//
// The classical baseline every filtration paper compares against; no
// frequency information is used, so repeat-overlapping k-mers explode
// the candidate count. Serves as the control arm of the filtration
// ablation benches.

#include "filter/seed.hpp"

namespace repute::filter {

class UniformSeeder final : public Seeder {
public:
    explicit UniformSeeder(std::uint32_t s_min = 10) : s_min_(s_min) {}

    using Seeder::select;
    void select(const index::FmIndex& fm,
                std::span<const std::uint8_t> read, std::uint32_t delta,
                SeedPlan& plan, SeedScratch& scratch) const override;

    std::string_view name() const noexcept override { return "uniform"; }

    std::uint64_t scratch_bound(std::size_t, std::uint32_t delta)
        const override {
        return (delta + 1) * sizeof(Seed);
    }

private:
    std::uint32_t s_min_;
};

} // namespace repute::filter
