#include "filter/candidates.hpp"

#include <algorithm>

namespace repute::filter {

void gather_candidates(const index::FmIndex& fm, const SeedPlan& plan,
                       std::uint32_t read_length, std::uint32_t delta,
                       const CandidateConfig& config, CandidateSet& out,
                       std::vector<std::uint32_t>& hits_scratch) {
    out.clear();
    const auto text_len = static_cast<std::uint32_t>(fm.size());

    // Located hits are bounded by the per-seed cap; reserving the bound
    // up front keeps the gather loop push_back-realloc-free.
    std::size_t hit_bound = 0;
    for (const Seed& seed : plan.seeds) {
        hit_bound += std::min<std::size_t>(seed.range.count(),
                                           config.max_hits_per_seed);
    }
    out.positions.reserve(hit_bound);

    for (const Seed& seed : plan.seeds) {
        if (seed.range.empty()) continue;
        hits_scratch.clear();
        fm.locate_range(seed.range, config.max_hits_per_seed, hits_scratch);
        out.located_hits += hits_scratch.size();
        for (const std::uint32_t t : hits_scratch) {
            // Diagonal read start; seeds near the text start clamp to 0.
            const std::uint32_t start =
                t >= seed.start ? t - seed.start : 0;
            if (start >= text_len) continue;
            out.positions.push_back(start);
        }
    }
    out.raw_hits = out.positions.size();

    std::sort(out.positions.begin(), out.positions.end());
    if (config.collapse_diagonals) {
        const std::uint32_t radius =
            config.merge_radius == 0 ? delta : config.merge_radius;

        // Collapse diagonals within `radius`: their delta-padded
        // windows cover the same alignments.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < out.positions.size(); ++i) {
            if (kept == 0 ||
                out.positions[i] > out.positions[kept - 1] + radius) {
                out.positions[kept++] = out.positions[i];
            }
        }
        out.positions.resize(kept);
    }

    // Drop candidates whose window would fall entirely past the text:
    // positions are sorted, so one lower_bound cut replaces the
    // element-at-a-time pop_back tail trim.
    const std::uint64_t limit =
        static_cast<std::uint64_t>(text_len) + delta;
    if (!out.positions.empty() && out.positions.back() >= limit) {
        out.positions.erase(std::lower_bound(out.positions.begin(),
                                             out.positions.end(), limit),
                            out.positions.end());
    }

    if (config.coalesce_windows) {
        // Coalesce overlapping verification windows: candidates whose
        // delta-padded windows [p-δ, p+n+δ) share reference bytes form
        // one group; the kernel fetches the group span once and
        // verifies each candidate on its sub-window (same bytes per
        // candidate as before, so output is unchanged).
        for (std::size_t i = 0; i < out.positions.size(); ++i) {
            const std::uint32_t p = out.positions[i];
            const std::uint32_t win_lo = p >= delta ? p - delta : 0;
            const std::uint64_t want_hi =
                std::uint64_t(win_lo) + read_length + 2 * delta;
            const auto win_hi = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(want_hi, text_len));
            if (!out.groups.empty() && win_lo < out.groups.back().lo +
                                                    out.groups.back().len) {
                CandidateSet::WindowGroup& g = out.groups.back();
                ++g.count;
                if (win_hi > g.lo + g.len) g.len = win_hi - g.lo;
            } else {
                out.groups.push_back({static_cast<std::uint32_t>(i), 1,
                                      win_lo, win_hi - win_lo});
            }
        }
    }
}

CandidateSet gather_candidates(const index::FmIndex& fm,
                               const SeedPlan& plan,
                               std::uint32_t read_length,
                               std::uint32_t delta,
                               const CandidateConfig& config) {
    CandidateSet out;
    std::vector<std::uint32_t> hits;
    gather_candidates(fm, plan, read_length, delta, config, out, hits);
    return out;
}

} // namespace repute::filter
