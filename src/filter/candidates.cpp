#include "filter/candidates.hpp"

#include <algorithm>

namespace repute::filter {

CandidateSet gather_candidates(const index::FmIndex& fm,
                               const SeedPlan& plan,
                               std::uint32_t read_length,
                               std::uint32_t delta,
                               const CandidateConfig& config) {
    CandidateSet out;
    const auto text_len = static_cast<std::uint32_t>(fm.size());

    std::vector<std::uint32_t> hits;
    for (const Seed& seed : plan.seeds) {
        if (seed.range.empty()) continue;
        hits.clear();
        fm.locate_range(seed.range, config.max_hits_per_seed, hits);
        out.located_hits += hits.size();
        for (const std::uint32_t t : hits) {
            // Diagonal read start; seeds near the text start clamp to 0.
            const std::uint32_t start =
                t >= seed.start ? t - seed.start : 0;
            if (start >= text_len) continue;
            out.positions.push_back(start);
        }
    }
    out.raw_hits = out.positions.size();

    std::sort(out.positions.begin(), out.positions.end());
    if (config.collapse_diagonals) {
        const std::uint32_t radius =
            config.merge_radius == 0 ? delta : config.merge_radius;

        // Collapse diagonals within `radius`: their delta-padded
        // windows cover the same alignments.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < out.positions.size(); ++i) {
            if (kept == 0 ||
                out.positions[i] > out.positions[kept - 1] + radius) {
                out.positions[kept++] = out.positions[i];
            }
        }
        out.positions.resize(kept);
    }

    // Drop candidates whose window would fall entirely past the text.
    while (!out.positions.empty() &&
           out.positions.back() + 1 > text_len + delta) {
        out.positions.pop_back();
    }
    (void)read_length;
    return out;
}

} // namespace repute::filter
