#pragma once
// Seed-selection (filtration) interface.
//
// Pigeonhole principle (paper §II-B): a read with at most delta errors,
// partitioned into delta+1 contiguous k-mers, has at least one k-mer that
// occurs exactly in the reference at every true mapping location. A
// Seeder chooses that partition; the quality metric is the total number
// of candidate locations its k-mers produce, since every candidate must
// be verified by the (expensive) alignment kernel.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "index/fm_index.hpp"

namespace repute::filter {

/// One k-mer of the partition with its FM-index match range.
struct Seed {
    std::uint16_t start = 0;  ///< offset in the read
    std::uint16_t length = 0;
    index::FmIndex::Range range; ///< suffix rows matching the k-mer

    std::uint32_t candidate_count() const noexcept { return range.count(); }
};

/// Result of filtration for one read (one strand).
struct SeedPlan {
    std::vector<Seed> seeds;          ///< exactly delta+1 entries
    std::uint64_t total_candidates = 0;

    // Work accounting consumed by the device performance model.
    std::uint64_t fm_extends = 0;  ///< backward-search extension steps
    std::uint64_t dp_cells = 0;    ///< DP cells touched (0 for heuristics)
    std::uint64_t qgram_jumps = 0; ///< jump-table lookups replacing extends

    /// Peak bytes of per-read kernel scratch the strategy needs — the
    /// quantity the paper's memory optimization reduces (private-memory
    /// pressure limits GPU occupancy, Fig. 3/4 discussion).
    std::uint64_t scratch_bytes = 0;

    /// Clears accounting and seeds while keeping the seeds capacity —
    /// called at the top of every select() so plans can be recycled.
    void reset() noexcept {
        seeds.clear();
        total_candidates = 0;
        fm_extends = 0;
        dp_cells = 0;
        qgram_jumps = 0;
        scratch_bytes = 0;
    }
};

/// Reusable working buffers for select(). All seeders size these with
/// assign()/resize() at entry, so a warm scratch (capacity already at the
/// read-parameter bound) makes filtration allocation-free — the host-side
/// analogue of the kernels' statically budgeted private memory.
struct SeedScratch {
    std::vector<std::uint32_t> row_a;      ///< DP row (prev)
    std::vector<std::uint32_t> row_b;      ///< DP row (curr)
    std::vector<std::uint32_t> freqs;      ///< suffix-frequency scan output
    std::vector<std::uint32_t> freq_table; ///< OSS full frequency table
    std::vector<std::uint16_t> dividers;   ///< DP backtrack pointers
    std::vector<std::uint16_t> boundaries; ///< chosen seed starts
};

/// Strategy interface. Implementations must be stateless w.r.t. reads
/// (safe to share across threads; scratch carries all mutable state).
class Seeder {
public:
    virtual ~Seeder() = default;

    /// Partitions `read` into `delta + 1` seeds. `read` holds 2-bit
    /// codes. Resets `plan`, then fills it in place using `scratch` for
    /// every working buffer. Throws std::invalid_argument when the read
    /// cannot host delta+1 seeds of the configured minimum length.
    virtual void select(const index::FmIndex& fm,
                        std::span<const std::uint8_t> read,
                        std::uint32_t delta, SeedPlan& plan,
                        SeedScratch& scratch) const = 0;

    /// Convenience overload allocating fresh plan + scratch. Derived
    /// classes re-expose it with `using Seeder::select;`.
    SeedPlan select(const index::FmIndex& fm,
                    std::span<const std::uint8_t> read,
                    std::uint32_t delta) const {
        SeedPlan plan;
        SeedScratch scratch;
        select(fm, read, delta, plan, scratch);
        return plan;
    }

    virtual std::string_view name() const noexcept = 0;

    /// Static per-work-item scratch bound for given read parameters —
    /// OpenCL 1.2 kernels allocate private memory statically, so the
    /// launch must budget for the worst case, not the per-read actual.
    virtual std::uint64_t scratch_bound(std::size_t read_length,
                                        std::uint32_t delta) const = 0;
};

/// Shared validation helper: checks n >= (delta+1) * s_min.
void validate_read_parameters(std::size_t read_length, std::uint32_t delta,
                              std::uint32_t s_min);

/// Computes the FM ranges for an already-chosen partition (boundaries =
/// seed start offsets, ascending, first == 0), replacing `plan.seeds`
/// and adding the incurred work to the plan's accounting (counters are
/// NOT reset — DP accounting accumulated by the caller is preserved).
/// Each seed's range starts from the q-gram jump table when the index
/// has one, so only `length - q` real extends are issued per seed.
void plan_from_boundaries(const index::FmIndex& fm,
                          std::span<const std::uint8_t> read,
                          std::span<const std::uint16_t> boundaries,
                          SeedPlan& plan);

/// Value-returning convenience wrapper around the above.
SeedPlan plan_from_boundaries(const index::FmIndex& fm,
                              std::span<const std::uint8_t> read,
                              std::span<const std::uint16_t> boundaries);

} // namespace repute::filter
