#include "filter/optimal_seeder.hpp"

#include <algorithm>
#include <limits>

#include "filter/frequency_scanner.hpp"

namespace repute::filter {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) noexcept {
    return (a == kInf || b == kInf || a > kInf - b) ? kInf : a + b;
}
} // namespace

void OptimalSeeder::select(const index::FmIndex& fm,
                           std::span<const std::uint8_t> read,
                           std::uint32_t delta, SeedPlan& plan,
                           SeedScratch& scratch) const {
    validate_read_parameters(read.size(), delta, s_min_);
    const auto n = static_cast<std::uint32_t>(read.size());
    const std::uint32_t n_seeds = delta + 1;
    // No seed can be longer than this (the other delta seeds need s_min
    // bases each), so the frequency table needs only l_max columns.
    const std::uint32_t l_max = n - delta * s_min_;

    plan.reset();
    FrequencyScanner scanner(fm, read);

    // freq_table[(p-1) * l_max + (len-1)] = freq of read[p-len, p).
    auto& freq_table = scratch.freq_table;
    freq_table.assign(static_cast<std::size_t>(n) * l_max, 0);
    auto& scan_buffer = scratch.freqs;
    scan_buffer.resize(l_max);
    for (std::uint32_t p = 1; p <= n; ++p) {
        const std::uint32_t depth = std::min(p, l_max);
        const std::uint32_t min_start = p - depth;
        auto out = std::span<std::uint32_t>(scan_buffer.data(), depth);
        scanner.suffix_frequencies(min_start, p, out, plan.fm_extends,
                                   plan.qgram_jumps);
        // out[k] = freq(min_start + k, p) -> len = p - (min_start + k).
        for (std::uint32_t k = 0; k < depth; ++k) {
            const std::uint32_t len = p - (min_start + k);
            freq_table[static_cast<std::size_t>(p - 1) * l_max +
                       (len - 1)] = out[k];
        }
    }
    auto freq = [&](std::uint32_t d, std::uint32_t p) {
        return freq_table[static_cast<std::size_t>(p - 1) * l_max +
                          (p - d - 1)];
    };

    // Full-width DP rows and divider matrix.
    auto& prev = scratch.row_a;
    auto& curr = scratch.row_b;
    prev.assign(n + 1, kInf);
    curr.assign(n + 1, kInf);
    auto& dividers = scratch.dividers;
    dividers.assign(static_cast<std::size_t>(n_seeds + 1) * (n + 1), 0);

    // Base: one k-mer covering [0, p).
    for (std::uint32_t p = s_min_; p + delta * s_min_ <= n; ++p) {
        prev[p] = freq(0, p);
        ++plan.dp_cells;
    }

    for (std::uint32_t x = 2; x <= n_seeds; ++x) {
        std::fill(curr.begin(), curr.end(), kInf);
        const std::uint32_t p_lo = x * s_min_;
        const std::uint32_t p_hi = n - (n_seeds - x) * s_min_;
        for (std::uint32_t p = p_lo; p <= p_hi; ++p) {
            std::uint32_t best = kInf;
            std::uint16_t best_d = 0;
            const std::uint32_t d_lo = (x - 1) * s_min_;
            const std::uint32_t d_hi = p - s_min_;
            for (std::uint32_t d = d_lo; d <= d_hi; ++d) {
                ++plan.dp_cells;
                if (prev[d] == kInf) continue;
                const std::uint32_t total = sat_add(prev[d], freq(d, p));
                if (total < best) {
                    best = total;
                    best_d = static_cast<std::uint16_t>(d);
                    if (best == 0) break; // cannot improve on zero
                }
            }
            curr[p] = best;
            dividers[static_cast<std::size_t>(x) * (n + 1) + p] = best_d;
        }
        std::swap(prev, curr);
    }

    // Backtrack dividers from the full read.
    auto& boundaries = scratch.boundaries;
    boundaries.assign(n_seeds, 0);
    std::uint32_t p = n;
    for (std::uint32_t x = n_seeds; x >= 2; --x) {
        const std::uint16_t d =
            dividers[static_cast<std::size_t>(x) * (n + 1) + p];
        boundaries[x - 1] = d;
        p = d;
    }
    boundaries[0] = 0;

    plan_from_boundaries(fm, read, boundaries, plan);
    plan.scratch_bytes =
        freq_table.size() * sizeof(std::uint32_t) +
        (prev.size() + curr.size()) * sizeof(std::uint32_t) +
        dividers.size() * sizeof(std::uint16_t);
}

} // namespace repute::filter
