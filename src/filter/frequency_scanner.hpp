#pragma once
// Incremental k-mer frequency scanning.
//
// The DP seeders need freq(d, e) — the number of reference occurrences of
// read[d, e) — for many (d, e) pairs sharing the same end e. FM-Index
// backward search extends patterns by *prepending* a character, so for a
// fixed end e the frequencies for all starts d = e-1, e-2, ... fall out
// of one backward scan at one extension step each. Once the range goes
// empty it stays empty for every smaller d, so the scan short-circuits.
//
// When the index carries a q-gram jump table, the first q steps of every
// scan are table lookups instead of extend() calls: same ranges, same
// counts (the table is built by extend()), but one L2-resident load per
// step instead of two rank-block probes. The two work kinds are
// accounted separately so the modeled device ops stay honest.

#include <cstdint>
#include <span>
#include <vector>

#include "index/fm_index.hpp"

namespace repute::filter {

class FrequencyScanner {
public:
    FrequencyScanner(const index::FmIndex& fm,
                     std::span<const std::uint8_t> read)
        : fm_(&fm), read_(read) {}

    /// Fills `out[k]` with freq(min_start + k, end) for
    /// k in [0, end - min_start), i.e. frequencies of every suffix of
    /// read[min_start, end) that ends at `end`. Adds the FM extension
    /// steps performed to `fm_extends` and the jump-table lookups to
    /// `qgram_jumps`.
    void suffix_frequencies(std::uint32_t min_start, std::uint32_t end,
                            std::span<std::uint32_t> out,
                            std::uint64_t& fm_extends,
                            std::uint64_t& qgram_jumps) const;

    /// Convenience overload returning only the extension-step count.
    std::uint64_t suffix_frequencies(std::uint32_t min_start,
                                     std::uint32_t end,
                                     std::span<std::uint32_t> out) const {
        std::uint64_t extends = 0, jumps = 0;
        suffix_frequencies(min_start, end, out, extends, jumps);
        return extends;
    }

    /// Frequency of the single k-mer read[start, end).
    std::uint32_t frequency(std::uint32_t start, std::uint32_t end,
                            std::uint64_t* fm_extends = nullptr,
                            std::uint64_t* qgram_jumps = nullptr) const;

private:
    const index::FmIndex* fm_;
    std::span<const std::uint8_t> read_;
};

} // namespace repute::filter
