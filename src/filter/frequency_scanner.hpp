#pragma once
// Incremental k-mer frequency scanning.
//
// The DP seeders need freq(d, e) — the number of reference occurrences of
// read[d, e) — for many (d, e) pairs sharing the same end e. FM-Index
// backward search extends patterns by *prepending* a character, so for a
// fixed end e the frequencies for all starts d = e-1, e-2, ... fall out
// of one backward scan at one extension step each. Once the range goes
// empty it stays empty for every smaller d, so the scan short-circuits.

#include <cstdint>
#include <span>
#include <vector>

#include "index/fm_index.hpp"

namespace repute::filter {

class FrequencyScanner {
public:
    FrequencyScanner(const index::FmIndex& fm,
                     std::span<const std::uint8_t> read)
        : fm_(&fm), read_(read) {}

    /// Fills `out[k]` with freq(min_start + k, end) for
    /// k in [0, end - min_start), i.e. frequencies of every suffix of
    /// read[min_start, end) that ends at `end`. Returns the number of FM
    /// extension steps performed (work accounting).
    std::uint64_t suffix_frequencies(std::uint32_t min_start,
                                     std::uint32_t end,
                                     std::span<std::uint32_t> out) const;

    /// Frequency of the single k-mer read[start, end).
    std::uint32_t frequency(std::uint32_t start, std::uint32_t end,
                            std::uint64_t* fm_extends = nullptr) const;

private:
    const index::FmIndex* fm_;
    std::span<const std::uint8_t> read_;
};

} // namespace repute::filter
