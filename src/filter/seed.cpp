#include "filter/seed.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "index/qgram_table.hpp"

namespace repute::filter {

void validate_read_parameters(std::size_t read_length, std::uint32_t delta,
                              std::uint32_t s_min) {
    if (s_min == 0) {
        throw std::invalid_argument("minimum k-mer length must be >= 1");
    }
    const std::uint64_t needed =
        static_cast<std::uint64_t>(delta + 1) * s_min;
    if (read_length < needed) {
        throw std::invalid_argument(
            "read of length " + std::to_string(read_length) +
            " cannot host " + std::to_string(delta + 1) +
            " k-mers of minimum length " + std::to_string(s_min));
    }
    if (read_length > 512) {
        throw std::invalid_argument("read length exceeds kernel limit 512");
    }
}

void plan_from_boundaries(const index::FmIndex& fm,
                          std::span<const std::uint8_t> read,
                          std::span<const std::uint16_t> boundaries,
                          SeedPlan& plan) {
    const index::QGramTable* qt = fm.qgrams();
    plan.seeds.clear();
    plan.seeds.reserve(boundaries.size());
    for (std::size_t s = 0; s < boundaries.size(); ++s) {
        const std::uint16_t start = boundaries[s];
        const std::uint16_t end =
            (s + 1 < boundaries.size())
                ? boundaries[s + 1]
                : static_cast<std::uint16_t>(read.size());
        Seed seed;
        seed.start = start;
        seed.length = static_cast<std::uint16_t>(end - start);
        if (qt != nullptr && seed.length > 0) {
            const std::uint32_t jump =
                std::min<std::uint32_t>(seed.length, qt->q());
            auto range = qt->lookup(read.subspan(end - jump, jump));
            for (std::uint32_t d = end - jump; d-- > start && !range.empty();) {
                range = fm.extend(range, read[d]);
            }
            seed.range = range;
            plan.qgram_jumps += 1;
            plan.fm_extends += seed.length - jump;
        } else {
            seed.range = fm.search(read.subspan(start, seed.length));
            plan.fm_extends += seed.length;
        }
        plan.total_candidates += seed.range.count();
        plan.seeds.push_back(seed);
    }
}

SeedPlan plan_from_boundaries(const index::FmIndex& fm,
                              std::span<const std::uint8_t> read,
                              std::span<const std::uint16_t> boundaries) {
    SeedPlan plan;
    plan_from_boundaries(fm, read, boundaries, plan);
    return plan;
}

} // namespace repute::filter
