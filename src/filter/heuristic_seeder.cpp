#include "filter/heuristic_seeder.hpp"

#include <algorithm>

namespace repute::filter {

namespace {
/// Growth granularity of the serial probes: CORAL lengthens a k-mer a
/// few bases at a time, re-examining the candidate count after each
/// step.
constexpr std::uint32_t kGrowthStep = 2;
} // namespace

// CORAL's serial probes deliberately bypass the q-gram jump table: its
// published cost model re-pays the full O(k) search per length probe,
// which is exactly what fm.search() models.
void HeuristicSeeder::select(const index::FmIndex& fm,
                             std::span<const std::uint8_t> read,
                             std::uint32_t delta, SeedPlan& plan,
                             SeedScratch& /*scratch*/) const {
    validate_read_parameters(read.size(), delta, s_min_);
    const std::uint32_t n_seeds = delta + 1;
    const auto n = static_cast<std::uint32_t>(read.size());

    plan.reset();
    plan.seeds.reserve(n_seeds);

    // Serial left-to-right examination (paper §I: "CORAL examines
    // k-mers serially"). Each k-mer starts at the minimum length and is
    // grown while it is unspecific. FM backward search anchors at a
    // k-mer's END, so every length probe is a fresh O(k) search — the
    // cost REPUTE's single-scan DP avoids; it grows with read length
    // and repeat content exactly as Table I's CORAL column does.
    std::uint32_t pos = 0;
    for (std::uint32_t s = 0; s < n_seeds; ++s) {
        const std::uint32_t seeds_after = n_seeds - 1 - s;
        const std::uint32_t max_len = n - pos - seeds_after * s_min_;

        std::uint32_t len = (s == n_seeds - 1) ? max_len
                                               : std::min(s_min_, max_len);
        index::FmIndex::Range range;
        while (true) {
            range = fm.search(read.subspan(pos, len));
            plan.fm_extends += len;
            if (s == n_seeds - 1) break; // last k-mer takes the rest
            if (range.empty() || range.count() <= threshold_) break;
            if (len + kGrowthStep > max_len) break;
            len += kGrowthStep;
        }

        Seed seed;
        seed.start = static_cast<std::uint16_t>(pos);
        seed.length = static_cast<std::uint16_t>(len);
        seed.range = range;
        plan.total_candidates += range.count();
        plan.seeds.push_back(seed);
        pos += len;
    }
    plan.scratch_bytes = n_seeds * sizeof(Seed);
}

} // namespace repute::filter
