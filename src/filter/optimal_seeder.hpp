#pragma once
// Full Optimal Seed Solver (Xin et al. 2016) — DP seed selection.
//
// Finds the partition of the read into delta+1 k-mers (each >= s_min)
// whose total candidate count is minimal:
//
//   opt[x][p] = min candidates when the first x k-mers cover read[0, p)
//   opt[1][p] = freq(0, p)
//   opt[x][p] = min_{d} opt[x-1][d] + freq(d, p),
//               d in [(x-1)*s_min, p - s_min]
//
// This class is the memory-hungry reference: it materializes the full
// k-mer frequency table (one row per prefix end, Lmax = n - delta*s_min
// columns) and full-width DP/divider rows. REPUTE's contribution
// (MemoryOptimizedSeeder) produces identical partitions from a bounded
// exploration window — the pair is compared in the ablation bench.

#include "filter/seed.hpp"

namespace repute::filter {

class OptimalSeeder final : public Seeder {
public:
    explicit OptimalSeeder(std::uint32_t s_min = 12) : s_min_(s_min) {}

    using Seeder::select;
    void select(const index::FmIndex& fm,
                std::span<const std::uint8_t> read, std::uint32_t delta,
                SeedPlan& plan, SeedScratch& scratch) const override;

    std::string_view name() const noexcept override { return "oss-full"; }

    /// Full frequency table + full-width DP rows + divider matrix.
    std::uint64_t scratch_bound(std::size_t read_length,
                                std::uint32_t delta) const override {
        const auto n = static_cast<std::uint64_t>(read_length);
        const std::uint64_t minimal = std::uint64_t{delta} * s_min_;
        // Saturated like MemoryOptimizedSeeder::exploration_space: a
        // too-short read fails validate_read_parameters at select()
        // time, and the bound must not underflow before then.
        const std::uint64_t l_max = n > minimal ? n - minimal : 0;
        return n * l_max * 4 + 2 * (n + 1) * 4 + (delta + 2) * (n + 1) * 2;
    }

    std::uint32_t s_min() const noexcept { return s_min_; }

private:
    std::uint32_t s_min_;
};

} // namespace repute::filter
