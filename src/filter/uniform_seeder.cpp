#include "filter/uniform_seeder.hpp"

namespace repute::filter {

void UniformSeeder::select(const index::FmIndex& fm,
                           std::span<const std::uint8_t> read,
                           std::uint32_t delta, SeedPlan& plan,
                           SeedScratch& scratch) const {
    validate_read_parameters(read.size(), delta, s_min_);
    const std::uint32_t n_seeds = delta + 1;
    const auto n = static_cast<std::uint32_t>(read.size());

    plan.reset();
    // Distribute n over n_seeds as evenly as possible; the first
    // (n % n_seeds) k-mers get one extra base.
    auto& boundaries = scratch.boundaries;
    boundaries.assign(n_seeds, 0);
    const std::uint32_t base = n / n_seeds;
    const std::uint32_t extra = n % n_seeds;
    std::uint32_t pos = 0;
    for (std::uint32_t s = 0; s < n_seeds; ++s) {
        boundaries[s] = static_cast<std::uint16_t>(pos);
        pos += base + (s < extra ? 1 : 0);
    }
    plan_from_boundaries(fm, read, boundaries, plan);
    plan.scratch_bytes = n_seeds * sizeof(Seed);
}

} // namespace repute::filter
