#pragma once
// CORAL-style heuristic filtration (paper §I, §II-B contrast).
//
// CORAL examines k-mers serially with a variable-length selection
// criterion: a k-mer is grown until it is specific enough (few candidate
// locations) or until growing further would starve the remaining k-mers
// of their minimum length. Greedy and local — cheap to run, but unlike
// the DP it never revisits earlier choices, so the total candidate count
// is suboptimal; the gap widens with read length and error count, which
// is exactly the REPUTE-vs-CORAL trend in Tables I-III.
//
// Seeds are grown right-to-left because FM backward search extends by
// prepending characters, making each growth step O(1).

#include "filter/seed.hpp"

namespace repute::filter {

class HeuristicSeeder final : public Seeder {
public:
    /// `specificity_threshold`: stop growing a k-mer once its candidate
    /// count drops to this value or below. The default (32) is
    /// calibrated to CORAL's published specificity gap against REPUTE's
    /// DP filtration (REPUTE paper §I: the DP "improves specificity
    /// compared to [the] heuristic approach"); a serial greedy pass
    /// settles for moderately specific k-mers instead of burning read
    /// length that later k-mers will need.
    explicit HeuristicSeeder(std::uint32_t s_min = 12,
                             std::uint32_t specificity_threshold = 32)
        : s_min_(s_min), threshold_(specificity_threshold) {}

    using Seeder::select;
    void select(const index::FmIndex& fm,
                std::span<const std::uint8_t> read, std::uint32_t delta,
                SeedPlan& plan, SeedScratch& scratch) const override;

    std::string_view name() const noexcept override { return "heuristic"; }

    std::uint64_t scratch_bound(std::size_t, std::uint32_t delta)
        const override {
        return (delta + 1) * sizeof(Seed);
    }

    std::uint32_t s_min() const noexcept { return s_min_; }

private:
    std::uint32_t s_min_;
    std::uint32_t threshold_;
};

} // namespace repute::filter
