#include "filter/frequency_scanner.hpp"

namespace repute::filter {

std::uint64_t FrequencyScanner::suffix_frequencies(
    std::uint32_t min_start, std::uint32_t end,
    std::span<std::uint32_t> out) const {
    auto range = fm_->whole_range();
    std::uint64_t steps = 0;
    for (std::uint32_t d = end; d-- > min_start;) {
        if (!range.empty()) {
            range = fm_->extend(range, read_[d]);
            ++steps;
        }
        out[d - min_start] = range.count();
    }
    return steps;
}

std::uint32_t FrequencyScanner::frequency(std::uint32_t start,
                                          std::uint32_t end,
                                          std::uint64_t* fm_extends) const {
    auto range = fm_->whole_range();
    for (std::uint32_t d = end; d-- > start && !range.empty();) {
        range = fm_->extend(range, read_[d]);
        if (fm_extends) ++*fm_extends;
    }
    return range.count();
}

} // namespace repute::filter
