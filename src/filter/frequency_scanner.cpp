#include "filter/frequency_scanner.hpp"

#include <algorithm>

#include "index/qgram_table.hpp"

namespace repute::filter {

void FrequencyScanner::suffix_frequencies(
    std::uint32_t min_start, std::uint32_t end, std::span<std::uint32_t> out,
    std::uint64_t& fm_extends, std::uint64_t& qgram_jumps) const {
    auto range = fm_->whole_range();
    std::uint32_t d = end;
    const index::QGramTable* qt = fm_->qgrams();
    if (qt != nullptr && end > min_start) {
        // Lengths 1..q come straight out of the table. An absent pattern
        // yields the canonical empty range {0, 0}: count 0, exactly what
        // the extend() chain would report once it went empty.
        const std::uint32_t direct = std::min(end - min_start, qt->q());
        std::uint64_t idx = 0;
        for (std::uint32_t len = 1; len <= direct; ++len) {
            d = end - len;
            idx |= static_cast<std::uint64_t>(read_[d]) << (2 * (len - 1));
            range = qt->lookup(len, idx);
            out[d - min_start] = range.count();
        }
        qgram_jumps += direct;
    }
    for (; d-- > min_start;) {
        if (!range.empty()) {
            range = fm_->extend(range, read_[d]);
            ++fm_extends;
        }
        out[d - min_start] = range.count();
    }
}

std::uint32_t FrequencyScanner::frequency(std::uint32_t start,
                                          std::uint32_t end,
                                          std::uint64_t* fm_extends,
                                          std::uint64_t* qgram_jumps) const {
    auto range = fm_->whole_range();
    std::uint32_t d = end;
    const index::QGramTable* qt = fm_->qgrams();
    if (qt != nullptr && end > start) {
        const std::uint32_t jump = std::min(end - start, qt->q());
        range = qt->lookup(read_.subspan(end - jump, jump));
        d = end - jump;
        if (qgram_jumps) ++*qgram_jumps;
    }
    for (; d-- > start && !range.empty();) {
        range = fm_->extend(range, read_[d]);
        if (fm_extends) ++*fm_extends;
    }
    return range.count();
}

} // namespace repute::filter
