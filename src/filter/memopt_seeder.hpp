#pragma once
// REPUTE's memory-optimized DP filtration (paper §II-B, Fig. 2).
//
// Produces exactly the partitions of the full Optimal Seed Solver, but
// with the DP confined to the feasible "exploration space" of
// E + 1 = n - s_min*(delta+1) + 1 prefixes per iteration:
//
//   * iteration x (x = 2..delta+1) examines prefix ends
//     p in [x*s_min, x*s_min + E] only — every other prefix cannot be
//     completed into delta+1 seeds of length >= s_min;
//   * DP rows and the per-iteration divider records are window-sized
//     (u16 cells for dividers — the paper's bit-width optimization);
//   * k-mer frequencies are recomputed per iteration with short backward
//     scans instead of being materialized into an n x Lmax table.
//
// The trade-off surface the paper reports falls out directly: smaller
// s_min => larger window => better partitions but more scratch memory
// and more filtration work; larger s_min => tiny window but more
// candidates to verify (Fig. 4).

#include "filter/seed.hpp"

namespace repute::filter {

class MemoryOptimizedSeeder final : public Seeder {
public:
    explicit MemoryOptimizedSeeder(std::uint32_t s_min = 12)
        : s_min_(s_min) {}

    using Seeder::select;
    void select(const index::FmIndex& fm,
                std::span<const std::uint8_t> read, std::uint32_t delta,
                SeedPlan& plan, SeedScratch& scratch) const override;

    std::string_view name() const noexcept override { return "repute-dp"; }

    /// Window-sized DP rows + per-iteration u16 dividers + one scan
    /// buffer (the paper's bounded exploration space).
    std::uint64_t scratch_bound(std::size_t read_length,
                                std::uint32_t delta) const override {
        const std::uint64_t e =
            exploration_space(read_length, delta, s_min_);
        return (2 * (e + 1) + (s_min_ + e)) * 4 +
               static_cast<std::uint64_t>(delta) * (e + 1) * 2;
    }

    std::uint32_t s_min() const noexcept { return s_min_; }

    /// Exploration-space size E for given read parameters (number of
    /// extra prefixes beyond the minimal one, >= 0).
    static std::uint32_t exploration_space(std::size_t read_length,
                                           std::uint32_t delta,
                                           std::uint32_t s_min) noexcept {
        const auto needed =
            static_cast<std::uint32_t>((delta + 1) * s_min);
        const auto n = static_cast<std::uint32_t>(read_length);
        // Saturate: a read shorter than its seed budget is rejected by
        // validate_read_parameters at select() time; the scratch bound
        // must not underflow into a bogus huge allocation before that
        // clear error can surface.
        return n > needed ? n - needed : 0;
    }

private:
    std::uint32_t s_min_;
};

} // namespace repute::filter
