#pragma once
// Candidate-location gathering.
//
// Converts a SeedPlan into the list of reference windows the
// verification kernel must align. Every FM-index hit of a seed at text
// position t proposes the diagonal read start t - seed.start; duplicate
// and near-duplicate diagonals (within merge_radius) verify the same
// window, so they are collapsed — the standard dedup every pigeonhole
// mapper performs between filtration and verification.

#include <cstdint>
#include <vector>

#include "filter/seed.hpp"
#include "index/fm_index.hpp"

namespace repute::filter {

struct CandidateConfig {
    /// Hard cap on located hits per seed; seeds more frequent than this
    /// are truncated (first-n semantics, paper §III restriction a).
    std::uint32_t max_hits_per_seed = 1024;
    /// Diagonals closer than this collapse into one candidate. The
    /// natural value is delta (windows overlap completely within it).
    std::uint32_t merge_radius = 0;
    /// REPUTE's modified kernel flow gathers candidates and collapses
    /// duplicate diagonals before verification. Streaming kernels
    /// (CORAL) verify seed hits as they come — several of the delta+1
    /// seeds hit every true location, so the same window is verified
    /// repeatedly; set false to model that flow (hits are still sorted
    /// for deterministic output, but not collapsed).
    bool collapse_diagonals = true;
    /// Group candidates whose delta-padded windows overlap in reference
    /// space (CandidateSet::groups), so the kernel fetches each shared
    /// reference byte once per group instead of once per candidate.
    /// Verification still runs per candidate on its own sub-window, so
    /// mapping output is unchanged.
    bool coalesce_windows = true;
};

struct CandidateSet {
    /// Sorted, deduplicated candidate read-start positions (clamped into
    /// the reference).
    std::vector<std::uint32_t> positions;

    /// A run of candidates whose verification windows overlap in
    /// reference space: positions[first, first+count) share the
    /// reference span [lo, lo+len), which covers every per-candidate
    /// window in the run.
    struct WindowGroup {
        std::uint32_t first = 0; ///< index into positions
        std::uint32_t count = 0; ///< candidates in the group
        std::uint32_t lo = 0;    ///< reference start of the shared span
        std::uint32_t len = 0;   ///< length of the shared span
    };
    /// Filled when CandidateConfig::coalesce_windows is set; groups
    /// partition positions in order.
    std::vector<WindowGroup> groups;

    std::uint64_t located_hits = 0; ///< SA locate operations performed
    std::uint64_t raw_hits = 0;     ///< hits before dedup (capped)

    /// Resets counters and empties positions, keeping their capacity.
    void clear() noexcept {
        positions.clear();
        groups.clear();
        located_hits = 0;
        raw_hits = 0;
    }
};

/// Gathers candidates for a read of length `read_length` mapped with
/// error budget `delta` from `plan` against `fm`, into `out` (cleared
/// first; capacity reused). `hits_scratch` buffers per-seed locates.
void gather_candidates(const index::FmIndex& fm, const SeedPlan& plan,
                       std::uint32_t read_length, std::uint32_t delta,
                       const CandidateConfig& config, CandidateSet& out,
                       std::vector<std::uint32_t>& hits_scratch);

/// Allocating convenience wrapper around the above.
CandidateSet gather_candidates(const index::FmIndex& fm,
                               const SeedPlan& plan,
                               std::uint32_t read_length,
                               std::uint32_t delta,
                               const CandidateConfig& config);

} // namespace repute::filter
