#pragma once
// Succinct bit vector with O(1) rank support.
//
// Used by the FM-Index occurrence structure and by the filtration kernels
// for compact per-read masks. Rank is implemented with two-level
// directories (512-bit superblocks / 64-bit words), i.e. the classic
// "rank9-lite" layout: ~25% space overhead, two cache lines per query.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace repute::util {

class BitVector {
public:
    BitVector() = default;
    /// Creates a vector of `n` bits, all initialized to `value`.
    explicit BitVector(std::size_t n, bool value = false);

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    bool get(std::size_t i) const noexcept {
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }
    bool operator[](std::size_t i) const noexcept { return get(i); }

    /// Setting bits invalidates rank structures until build_rank() is
    /// re-run; rank1() on a stale index is undefined.
    void set(std::size_t i, bool value = true) noexcept {
        const std::uint64_t mask = 1ULL << (i & 63);
        if (value)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /// Number of set bits in [0, i). Requires a prior build_rank().
    std::size_t rank1(std::size_t i) const noexcept;
    /// Number of clear bits in [0, i). Requires a prior build_rank().
    std::size_t rank0(std::size_t i) const noexcept { return i - rank1(i); }

    /// Position of the (k+1)-th set bit (0-based k); size() if none.
    /// Binary search over superblocks + word scan: O(log n).
    std::size_t select1(std::size_t k) const noexcept;

    /// Total number of set bits. Requires a prior build_rank().
    std::size_t count_ones() const noexcept { return total_ones_; }

    /// Heap bytes held: bit words plus both rank directories.
    std::size_t memory_bytes() const noexcept {
        return words_.size() * sizeof(std::uint64_t) +
               superblock_.size() * sizeof(std::uint64_t) +
               block_.size() * sizeof(std::uint16_t);
    }

    /// Builds the rank directories; call after the last mutation.
    void build_rank();

    /// Binary serialization (bits only; rank directories are rebuilt on
    /// load). Throws std::runtime_error on a short read.
    void save(std::ostream& out) const;
    static BitVector load(std::istream& in);

private:
    std::size_t size_ = 0;
    std::size_t total_ones_ = 0;
    std::vector<std::uint64_t> words_;
    // superblock_[j] = popcount of words [0, 8j)
    std::vector<std::uint64_t> superblock_;
    // block_[i] = popcount within the superblock up to word i (u16 fits 512)
    std::vector<std::uint16_t> block_;
};

} // namespace repute::util
