#pragma once
// Succinct bit vector with O(1) rank support.
//
// Used by the FM-Index occurrence structure and by the filtration kernels
// for compact per-read masks. Rank is implemented with two-level
// directories (512-bit superblocks / 64-bit words), i.e. the classic
// "rank9-lite" layout: ~25% space overhead, two cache lines per query.
//
// Storage is either owned (the normal mutable build path) or a
// read-only *view* over externally owned words — the zero-copy mode the
// mmap'd .rix index container uses (view_of()). A view borrows the bit
// words but always owns its rank directories (they are ~3% of the bits
// and rebuilt in one linear pass at load). Mutation (set()) is only
// valid on owning vectors.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace repute::util {

class BitVector {
public:
    BitVector() = default;
    /// Creates an owning vector of `n` bits, all initialized to `value`.
    explicit BitVector(std::size_t n, bool value = false);

    /// Read-only view over externally owned words (little-endian bit
    /// order, 64 bits per word, zero-padded tail). `words` must hold
    /// exactly ceil(n/64) entries and outlive the view; the rank
    /// directories are built (owned) immediately. Throws
    /// std::runtime_error on a word-count mismatch.
    static BitVector view_of(std::span<const std::uint64_t> words,
                             std::size_t n);

    BitVector(const BitVector& other);
    BitVector& operator=(const BitVector& other);
    BitVector(BitVector&&) noexcept = default;
    BitVector& operator=(BitVector&&) noexcept = default;
    ~BitVector() = default;

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// True when the bit words are borrowed (view_of), not owned.
    bool is_view() const noexcept {
        return words_.data() != nullptr &&
               words_.data() != owned_words_.data();
    }

    /// The backing words (borrowed or owned) — what the .rix writer
    /// serializes.
    std::span<const std::uint64_t> words() const noexcept { return words_; }

    bool get(std::size_t i) const noexcept {
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }
    bool operator[](std::size_t i) const noexcept { return get(i); }

    /// Setting bits invalidates rank structures until build_rank() is
    /// re-run; rank1() on a stale index is undefined. Only valid on
    /// owning vectors (never on a view).
    void set(std::size_t i, bool value = true) noexcept {
        const std::uint64_t mask = 1ULL << (i & 63);
        if (value)
            owned_words_[i >> 6] |= mask;
        else
            owned_words_[i >> 6] &= ~mask;
    }

    /// Number of set bits in [0, i). Requires a prior build_rank().
    std::size_t rank1(std::size_t i) const noexcept;
    /// Number of clear bits in [0, i). Requires a prior build_rank().
    std::size_t rank0(std::size_t i) const noexcept { return i - rank1(i); }

    /// Position of the (k+1)-th set bit (0-based k); size() if none.
    /// Binary search over superblocks + word scan: O(log n).
    std::size_t select1(std::size_t k) const noexcept;

    /// Total number of set bits. Requires a prior build_rank().
    std::size_t count_ones() const noexcept { return total_ones_; }

    /// Total bytes reachable: bit words (owned or mapped) plus both
    /// rank directories.
    std::size_t memory_bytes() const noexcept {
        return words_.size() * sizeof(std::uint64_t) +
               superblock_.size() * sizeof(std::uint64_t) +
               block_.size() * sizeof(std::uint16_t);
    }

    /// Heap bytes actually owned — excludes borrowed (mmap'd) words, so
    /// a view reports only its rank directories.
    std::size_t heap_bytes() const noexcept {
        return owned_words_.size() * sizeof(std::uint64_t) +
               superblock_.size() * sizeof(std::uint64_t) +
               block_.size() * sizeof(std::uint16_t);
    }

    /// Builds the rank directories; call after the last mutation.
    void build_rank();

    /// Binary serialization (bits only; rank directories are rebuilt on
    /// load). Throws std::runtime_error on a short read.
    void save(std::ostream& out) const;
    static BitVector load(std::istream& in);

private:
    std::size_t size_ = 0;
    std::size_t total_ones_ = 0;
    std::vector<std::uint64_t> owned_words_;
    std::span<const std::uint64_t> words_; ///< owned_words_ or borrowed
    // superblock_[j] = popcount of words [0, 8j)
    std::vector<std::uint64_t> superblock_;
    // block_[i] = popcount within the superblock up to word i (u16 fits 512)
    std::vector<std::uint16_t> block_;
};

} // namespace repute::util
