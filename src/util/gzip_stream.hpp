#pragma once
// Buffered zlib inflate wrapper for gzip-compressed inputs.
//
// GzipInputStream turns any std::istream positioned at a gzip member
// (magic 0x1f 0x8b) into a decompressed std::istream, so the FASTX
// layer reads .gz files through the exact same record scanner as plain
// text — whether the bytes come from a CLI file, a daemon request blob
// or a test istringstream. Multi-member files (the output of
// `cat a.gz b.gz`, standard for bgzip-style tools) inflate seamlessly.
//
// Error taxonomy is deliberately split: a stream that ends mid-member
// throws a "truncated" error, a stream whose deflate data or trailer
// checksum is wrong throws a "corrupt" error — callers (and tests) can
// tell a partial download from bit rot. Both errors carry the
// compressed byte offset consumed so far.
//
// The whole facility sits behind the REPUTE_ZLIB CMake option: when the
// build carries no zlib, zlib_enabled() is false and constructing a
// GzipInputStream throws a clear "rebuilt without zlib" error instead
// of misparsing compressed bytes as FASTX.

#include <cstdint>
#include <istream>
#include <memory>
#include <string>

namespace repute::util {

/// True when this build can inflate gzip input (REPUTE_ZLIB=ON).
bool zlib_enabled() noexcept;

/// Peeks (without consuming) whether `in` starts with the gzip magic
/// bytes 0x1f 0x8b at its current position.
bool sniff_gzip_magic(std::istream& in);

/// Compresses `bytes` into a single gzip member — the fixture-side twin
/// of GzipInputStream, used by tests and tools that need .gz payloads
/// without shelling out. Throws std::runtime_error when built without
/// zlib.
std::string gzip_compress(const std::string& bytes);

class GzipInputStream {
public:
    /// `raw` must outlive this object and be positioned at the gzip
    /// magic. Throws std::runtime_error when built without zlib.
    explicit GzipInputStream(std::istream& raw);
    ~GzipInputStream();
    GzipInputStream(const GzipInputStream&) = delete;
    GzipInputStream& operator=(const GzipInputStream&) = delete;

    /// The decompressed byte stream. Corrupt or truncated compressed
    /// input surfaces as a std::runtime_error thrown from a read.
    std::istream& stream() noexcept { return stream_; }

    /// Compressed bytes inflated so far — an upper bound on the
    /// compressed-file offset of the most recently decompressed byte
    /// (upper because input is consumed in buffered chunks).
    std::uint64_t compressed_offset() const noexcept;

private:
    class InflateBuf;
    std::unique_ptr<InflateBuf> buf_;
    std::istream stream_;
};

} // namespace repute::util
