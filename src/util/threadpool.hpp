#pragma once
// Fixed-size worker pool with a blocking task queue.
//
// Each simulated OpenCL device owns one pool sized to its compute-unit
// count; NDRange dispatches are chopped into work-group tasks and fed
// through it. The pool is intentionally simple (single mutex-protected
// queue) — dispatch granularity in this codebase is hundreds of
// microseconds and queue contention is negligible at that scale.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace repute::util {

class ThreadPool {
public:
    /// Spawns `n_threads` workers (at least 1).
    explicit ThreadPool(std::size_t n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const noexcept { return workers_.size(); }

    /// Enqueues a task; the future resolves when it has run.
    std::future<void> submit(std::function<void()> task);

    /// Runs fn(i) for i in [0, n) across the pool and blocks until all
    /// iterations finish. Work is split into `thread_count * 4` chunks for
    /// load balance. Exceptions from fn propagate (first one wins).
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

private:
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    void worker_loop();
};

/// Shared process-wide pool sized to the hardware concurrency; used by
/// code that has no device affinity (e.g. index construction).
ThreadPool& global_pool();

} // namespace repute::util
