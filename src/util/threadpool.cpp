#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace repute::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
    const std::size_t n = std::max<std::size_t>(1, n_threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    {
        const std::lock_guard lock(mutex_);
        queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
}

void ThreadPool::worker_loop() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the associated future
    }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t n_chunks =
        std::min(n, std::max<std::size_t>(1, thread_count() * 4));
    const std::size_t chunk = (n + n_chunks - 1) / n_chunks;

    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    std::vector<std::future<void>> futures;
    futures.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        futures.push_back(submit([&, begin, end] {
            try {
                for (std::size_t i = begin; i < end; ++i) {
                    if (failed.load(std::memory_order_relaxed)) return;
                    fn(i);
                }
            } catch (...) {
                const std::lock_guard lock(error_mutex);
                if (!failed.exchange(true)) {
                    first_error = std::current_exception();
                }
            }
        }));
    }
    for (auto& f : futures) f.get();
    if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
    static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

} // namespace repute::util
