#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace repute::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_write_mutex;

constexpr const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
    }
    return "?????";
}

} // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
    if (level < g_level.load()) return;
    const std::lock_guard lock(g_write_mutex);
    std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                 static_cast<int>(message.size()), message.data());
}

void logf(LogLevel level, const char* fmt, ...) {
    if (level < g_level.load()) return;
    char buffer[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    log_line(level, buffer);
}

} // namespace repute::util
