#include "util/args.hpp"

#include <charconv>
#include <stdexcept>

namespace repute::util {

Args::Args(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string_view token = argv[i];
        if (!token.starts_with("--")) {
            positional_.emplace_back(token);
            continue;
        }
        const std::string_view body = token.substr(2);
        if (body.empty()) {
            throw std::invalid_argument("bare '--' is not supported");
        }
        if (const auto eq = body.find('='); eq != std::string_view::npos) {
            values_[std::string(body.substr(0, eq))] =
                std::string(body.substr(eq + 1));
            continue;
        }
        // `--key value` when the next token is not itself a flag,
        // otherwise a boolean `--flag`.
        if (i + 1 < argc &&
            !std::string_view(argv[i + 1]).starts_with("--")) {
            values_[std::string(body)] = argv[++i];
        } else {
            values_[std::string(body)] = "";
        }
    }
}

bool Args::has(std::string_view name) const {
    return values_.find(name) != values_.end();
}

std::string Args::get_string(std::string_view name,
                             std::string default_value) const {
    const auto it = values_.find(name);
    return it == values_.end() ? std::move(default_value) : it->second;
}

std::int64_t Args::get_int(std::string_view name,
                           std::int64_t default_value) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    std::int64_t out = 0;
    const auto& s = it->second;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw std::invalid_argument("--" + std::string(name) +
                                    " expects an integer, got '" + s + "'");
    }
    return out;
}

double Args::get_double(std::string_view name, double default_value) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    try {
        std::size_t consumed = 0;
        const double out = std::stod(it->second, &consumed);
        if (consumed != it->second.size()) throw std::invalid_argument("");
        return out;
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + std::string(name) +
                                    " expects a number, got '" + it->second +
                                    "'");
    }
}

bool Args::get_bool(std::string_view name, bool default_value) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    const auto& s = it->second;
    if (s.empty() || s == "true" || s == "1" || s == "yes") return true;
    if (s == "false" || s == "0" || s == "no") return false;
    throw std::invalid_argument("--" + std::string(name) +
                                " expects a boolean, got '" + s + "'");
}

} // namespace repute::util
