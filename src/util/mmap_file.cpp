#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace repute::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
    throw std::runtime_error("MmapFile: cannot " + std::string(what) +
                             " " + path + ": " + std::strerror(errno));
}

} // namespace

MmapFile MmapFile::open_readonly(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) fail(path, "open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "stat");
    }
    if (st.st_size == 0) {
        ::close(fd);
        throw std::runtime_error("MmapFile: " + path + " is empty");
    }
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (addr == MAP_FAILED) fail(path, "mmap");

    MmapFile file;
    file.data_ = static_cast<const std::byte*>(addr);
    file.size_ = static_cast<std::size_t>(st.st_size);
    return file;
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
    if (this != &other) {
        this->~MmapFile();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
    }
    return *this;
}

MmapFile::~MmapFile() {
    if (data_ != nullptr) {
        ::munmap(const_cast<std::byte*>(data_), size_);
        data_ = nullptr;
        size_ = 0;
    }
}

void MmapFile::check_range(std::size_t offset, std::size_t bytes,
                           std::size_t alignment) const {
    if (offset > size_ || bytes > size_ - offset) {
        throw std::out_of_range("MmapFile: view past end of mapping");
    }
    if (offset % alignment != 0) {
        throw std::runtime_error("MmapFile: misaligned view offset");
    }
}

} // namespace repute::util
