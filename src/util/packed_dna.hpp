#pragma once
// 2-bit packed DNA storage.
//
// The reference genome and the BWT are stored 2 bits/base (A=0 C=1 G=2
// T=3). Ambiguous bases (N) are resolved upstream by the genomics layer;
// the index layer never sees them. Packing quarters the memory footprint,
// which matters on the embedded device profiles where buffer ceilings are
// enforced (paper §III: at most 1/4 of RAM per allocation).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repute::util {

/// Base codes. Values are chosen so that `code ^ 3` is the complement.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

/// Maps A/C/G/T (either case) to 0..3; any other byte maps to 0 (A).
std::uint8_t base_to_code(char c) noexcept;
/// Maps 0..3 to 'A','C','G','T'.
char code_to_base(std::uint8_t code) noexcept;
/// Complement of a 2-bit code.
constexpr std::uint8_t complement_code(std::uint8_t code) noexcept {
    return code ^ 3u;
}

class PackedDna {
public:
    PackedDna() = default;
    /// Packs an ASCII sequence (A/C/G/T, case-insensitive).
    explicit PackedDna(std::string_view ascii);
    /// Packs a sequence of 2-bit codes.
    explicit PackedDna(std::span<const std::uint8_t> codes);

    /// Read-only view over externally owned packed words (the zero-copy
    /// mode of the mmap'd .rix container). `words` must hold exactly
    /// packed_word_count(size) entries with a zero-padded tail and must
    /// outlive the view. Mutation (push_back) is invalid on a view.
    static PackedDna view_of(std::span<const std::uint64_t> words,
                             std::size_t size);

    PackedDna(const PackedDna& other);
    PackedDna& operator=(const PackedDna& other);
    PackedDna(PackedDna&&) noexcept = default;
    PackedDna& operator=(PackedDna&&) noexcept = default;
    ~PackedDna() = default;

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// True when the words are borrowed (view_of), not owned.
    bool is_view() const noexcept {
        return words_.data() != nullptr &&
               words_.data() != owned_words_.data();
    }

    /// The backing words — what the .rix writer serializes.
    std::span<const std::uint64_t> words() const noexcept {
        return words_;
    }

    std::uint8_t code_at(std::size_t i) const noexcept {
        return static_cast<std::uint8_t>(
            (words_[i >> 5] >> ((i & 31) * 2)) & 3u);
    }
    char char_at(std::size_t i) const noexcept {
        return code_to_base(code_at(i));
    }

    void push_back(std::uint8_t code);

    /// Extracts codes [pos, pos+len) into `out` (must hold len bytes).
    void extract(std::size_t pos, std::size_t len,
                 std::uint8_t* out) const noexcept;
    std::vector<std::uint8_t> extract(std::size_t pos,
                                      std::size_t len) const;

    /// Extracts [pos, pos+len) as 2-bit-packed words (32 bases per
    /// u64, base i at bits [2i, 2i+2) of out[i/32]) into `out`, which
    /// must hold packed_word_count(len) words. Bits past `len` are
    /// zero. Word-at-a-time shift-combine, not a per-base loop — this
    /// is the verification prefilter's window fetch.
    void extract_words(std::size_t pos, std::size_t len,
                       std::uint64_t* out) const noexcept;

    static constexpr std::size_t packed_word_count(
        std::size_t len) noexcept {
        return (len + 31) / 32;
    }

    /// ASCII round-trip of [pos, pos+len).
    std::string to_string(std::size_t pos, std::size_t len) const;
    std::string to_string() const { return to_string(0, size_); }

    /// Reverse complement of the whole sequence.
    PackedDna reverse_complement() const;

    /// Total bytes reachable through the words (owned or mapped).
    std::size_t memory_bytes() const noexcept {
        return words_.size() * sizeof(std::uint64_t);
    }

    /// Heap bytes actually owned — zero for a view.
    std::size_t heap_bytes() const noexcept {
        return owned_words_.size() * sizeof(std::uint64_t);
    }

    bool operator==(const PackedDna& other) const noexcept;

    /// Binary serialization. Throws std::runtime_error on a short read.
    void save(std::ostream& out) const;
    static PackedDna load(std::istream& in);

private:
    std::size_t size_ = 0;
    std::vector<std::uint64_t> owned_words_; // 32 bases per word
    std::span<const std::uint64_t> words_;   ///< owned_words_ or borrowed

    void set_code(std::size_t i, std::uint8_t code) noexcept {
        const std::size_t shift = (i & 31) * 2;
        owned_words_[i >> 5] =
            (owned_words_[i >> 5] & ~(3ULL << shift)) |
            (static_cast<std::uint64_t>(code) << shift);
    }
};

} // namespace repute::util
