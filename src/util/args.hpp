#pragma once
// Tiny declarative CLI argument parser for the examples and bench
// harnesses: `--flag`, `--key value` and `--key=value` forms.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repute::util {

class Args {
public:
    /// Parses argv; throws std::invalid_argument on a malformed token.
    Args(int argc, const char* const* argv);

    /// True if `--name` was present (with or without a value).
    bool has(std::string_view name) const;

    std::string get_string(std::string_view name,
                           std::string default_value) const;
    std::int64_t get_int(std::string_view name,
                         std::int64_t default_value) const;
    double get_double(std::string_view name, double default_value) const;
    bool get_bool(std::string_view name, bool default_value) const;

    /// Positional (non --key) tokens, in order.
    const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

    const std::string& program() const noexcept { return program_; }

private:
    std::string program_;
    std::map<std::string, std::string, std::less<>> values_;
    std::vector<std::string> positional_;
};

} // namespace repute::util
