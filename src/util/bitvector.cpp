#include "util/bitvector.hpp"

#include "util/serialize.hpp"

#include <bit>
#include <stdexcept>

namespace repute::util {

namespace {
constexpr std::size_t kWordsPerSuper = 8; // 512 bits
}

BitVector::BitVector(std::size_t n, bool value)
    : size_(n), owned_words_((n + 63) / 64, value ? ~0ULL : 0ULL) {
    if (value && (n & 63) != 0) {
        // Keep the tail word zero-padded so popcounts stay exact.
        owned_words_.back() &= (1ULL << (n & 63)) - 1;
    }
    words_ = owned_words_;
}

BitVector BitVector::view_of(std::span<const std::uint64_t> words,
                             std::size_t n) {
    if (words.size() != (n + 63) / 64) {
        throw std::runtime_error("BitVector: view word-count mismatch");
    }
    BitVector bv;
    bv.size_ = n;
    bv.words_ = words;
    bv.build_rank();
    return bv;
}

BitVector::BitVector(const BitVector& other)
    : size_(other.size_), total_ones_(other.total_ones_),
      owned_words_(other.owned_words_), superblock_(other.superblock_),
      block_(other.block_) {
    words_ = other.is_view() ? other.words_
                             : std::span<const std::uint64_t>(owned_words_);
}

BitVector& BitVector::operator=(const BitVector& other) {
    if (this != &other) {
        BitVector copy(other);
        *this = std::move(copy);
    }
    return *this;
}

void BitVector::build_rank() {
    const std::size_t n_words = words_.size();
    const std::size_t n_supers = n_words / kWordsPerSuper + 1;
    superblock_.assign(n_supers, 0);
    block_.assign(n_words + 1, 0);

    std::uint64_t running = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
        if (w % kWordsPerSuper == 0) {
            superblock_[w / kWordsPerSuper] = running;
        }
        block_[w] = static_cast<std::uint16_t>(
            running - superblock_[w / kWordsPerSuper]);
        running += static_cast<std::uint64_t>(std::popcount(words_[w]));
    }
    if (n_words % kWordsPerSuper == 0) {
        superblock_[n_words / kWordsPerSuper] = running;
    }
    block_[n_words] = static_cast<std::uint16_t>(
        running - superblock_[n_words / kWordsPerSuper]);
    total_ones_ = running;
}

std::size_t BitVector::rank1(std::size_t i) const noexcept {
    const std::size_t w = i >> 6;
    std::size_t r = superblock_[w / kWordsPerSuper] + block_[w];
    if (i & 63) {
        r += static_cast<std::size_t>(
            std::popcount(words_[w] & ((1ULL << (i & 63)) - 1)));
    }
    return r;
}

std::size_t BitVector::select1(std::size_t k) const noexcept {
    if (k >= total_ones_) return size_;
    // Binary search the superblock directory for the last entry <= k.
    std::size_t lo = 0, hi = superblock_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (superblock_[mid] <= k)
            lo = mid;
        else
            hi = mid - 1;
    }
    std::size_t remaining = k - superblock_[lo];
    std::size_t w = lo * kWordsPerSuper;
    while (true) {
        const auto in_word =
            static_cast<std::size_t>(std::popcount(words_[w]));
        if (remaining < in_word) break;
        remaining -= in_word;
        ++w;
    }
    // Scan the word for the (remaining+1)-th set bit.
    std::uint64_t word = words_[w];
    for (std::size_t j = 0; j < remaining; ++j) word &= word - 1;
    return w * 64 +
           static_cast<std::size_t>(std::countr_zero(word));
}

} // namespace repute::util

namespace repute::util {

// --- serialization ---------------------------------------------------

void BitVector::save(std::ostream& out) const {
    write_magic(out, 0x42495456u); // "BITV"
    write_pod<std::uint64_t>(out, size_);
    write_pod<std::uint64_t>(out, words_.size());
    out.write(reinterpret_cast<const char*>(words_.data()),
              static_cast<std::streamsize>(words_.size() *
                                           sizeof(std::uint64_t)));
}

BitVector BitVector::load(std::istream& in) {
    check_magic(in, 0x42495456u, "BitVector");
    BitVector bv;
    bv.size_ = read_pod<std::uint64_t>(in);
    bv.owned_words_ = read_vector<std::uint64_t>(in);
    bv.words_ = bv.owned_words_;
    if (bv.words_.size() != (bv.size_ + 63) / 64) {
        throw std::runtime_error("BitVector: corrupt word count");
    }
    bv.build_rank();
    return bv;
}

} // namespace repute::util
