#pragma once
// Minimal binary (de)serialization helpers for trivially copyable
// values and vectors thereof. Little-endian host assumed (the only
// target of this library); sizes are written as u64.

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace repute::util {

template <typename T>
    requires std::is_trivially_copyable_v<T>
void write_pod(std::ostream& out, const T& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
    requires std::is_trivially_copyable_v<T>
T read_pod(std::istream& in) {
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) throw std::runtime_error("serialize: short read");
    return value;
}

template <typename T>
    requires std::is_trivially_copyable_v<T>
void write_vector(std::ostream& out, const std::vector<T>& values) {
    write_pod<std::uint64_t>(out, values.size());
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
    requires std::is_trivially_copyable_v<T>
void write_span(std::ostream& out, std::span<const T> values) {
    write_pod<std::uint64_t>(out, values.size());
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
    requires std::is_trivially_copyable_v<T>
std::vector<T> read_vector(std::istream& in) {
    const auto count = read_pod<std::uint64_t>(in);
    std::vector<T> values(count);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in) throw std::runtime_error("serialize: short read");
    return values;
}

/// FNV-1a 64-bit checksum — the integrity check of the .rix index
/// container (index/rix.hpp). Not cryptographic; it exists to catch
/// truncation, bit rot and torn writes at load time, cheaply enough to
/// run over every mapped section (one pass at memory bandwidth).
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                             std::uint64_t seed =
                                 0xCBF29CE484222325ULL) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

/// Writes/checks a 4-byte magic tag; throws on mismatch.
inline void write_magic(std::ostream& out, std::uint32_t magic) {
    write_pod(out, magic);
}
inline void check_magic(std::istream& in, std::uint32_t magic,
                        const char* what) {
    if (read_pod<std::uint32_t>(in) != magic) {
        throw std::runtime_error(std::string("serialize: bad magic for ") +
                                 what);
    }
}

} // namespace repute::util
