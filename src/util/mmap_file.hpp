#pragma once
// Read-only memory-mapped file — the zero-copy substrate of the .rix
// index container (index/rix.hpp).
//
// The mapping is private and read-only; the kernel pages index data in
// on demand and evicts it under memory pressure, so a daemon holding a
// multi-gigabyte index resident costs only the pages actually touched
// (see FmIndex::mapped_bytes vs resident_bytes). POSIX-only, like the
// rest of the serving stack (AF_UNIX sockets).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace repute::util {

class MmapFile {
public:
    MmapFile() = default;

    /// Maps `path` read-only. Throws std::runtime_error (with errno
    /// text) when the file cannot be opened, stat'ed or mapped; empty
    /// files are rejected (nothing to map).
    static MmapFile open_readonly(const std::string& path);

    MmapFile(MmapFile&& other) noexcept;
    MmapFile& operator=(MmapFile&& other) noexcept;
    MmapFile(const MmapFile&) = delete;
    MmapFile& operator=(const MmapFile&) = delete;
    ~MmapFile();

    const std::byte* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool valid() const noexcept { return data_ != nullptr; }

    std::span<const std::byte> bytes() const noexcept {
        return {data_, size_};
    }

    /// Typed view of `[offset, offset + count * sizeof(T))`. Throws
    /// std::out_of_range past the end and std::runtime_error when
    /// `offset` is not aligned for T.
    template <typename T>
    std::span<const T> view(std::size_t offset, std::size_t count) const {
        check_range(offset, count * sizeof(T), alignof(T));
        return {reinterpret_cast<const T*>(data_ + offset), count};
    }

private:
    void check_range(std::size_t offset, std::size_t bytes,
                     std::size_t alignment) const;

    const std::byte* data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace repute::util
