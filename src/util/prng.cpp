#include "util/prng.hpp"

#include <cmath>

namespace repute::util {

namespace {

constexpr double kPi = 3.14159265358979323846;

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ULL;
    return mix64(state);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& lane : s_) lane = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
    // 53 high bits -> double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
    // Box-Muller; u1 nudged away from 0 so log() stays finite.
    const double u1 = uniform() + 1e-18;
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(2.0 * kPi * u2);
}

void Xoshiro256::long_jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL,
        0x77710069854EE241ULL, 0x39109BB02ACBE635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

} // namespace repute::util
