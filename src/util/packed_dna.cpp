#include "util/packed_dna.hpp"

#include "util/serialize.hpp"

#include <array>

namespace repute::util {

namespace {

constexpr std::array<std::uint8_t, 256> make_code_table() {
    std::array<std::uint8_t, 256> t{};
    t['A'] = 0; t['a'] = 0;
    t['C'] = 1; t['c'] = 1;
    t['G'] = 2; t['g'] = 2;
    t['T'] = 3; t['t'] = 3;
    return t;
}

constexpr auto kCodeTable = make_code_table();
constexpr char kBaseTable[4] = {'A', 'C', 'G', 'T'};

} // namespace

std::uint8_t base_to_code(char c) noexcept {
    return kCodeTable[static_cast<unsigned char>(c)];
}

char code_to_base(std::uint8_t code) noexcept {
    return kBaseTable[code & 3u];
}

PackedDna::PackedDna(std::string_view ascii) {
    owned_words_.reserve((ascii.size() + 31) / 32);
    for (const char c : ascii) push_back(base_to_code(c));
}

PackedDna::PackedDna(std::span<const std::uint8_t> codes) {
    owned_words_.reserve((codes.size() + 31) / 32);
    for (const std::uint8_t code : codes) push_back(code);
}

PackedDna PackedDna::view_of(std::span<const std::uint64_t> words,
                             std::size_t size) {
    if (words.size() != packed_word_count(size)) {
        throw std::runtime_error("PackedDna: view word-count mismatch");
    }
    PackedDna dna;
    dna.size_ = size;
    dna.words_ = words;
    return dna;
}

PackedDna::PackedDna(const PackedDna& other)
    : size_(other.size_), owned_words_(other.owned_words_) {
    words_ = other.is_view()
                 ? other.words_
                 : std::span<const std::uint64_t>(owned_words_);
}

PackedDna& PackedDna::operator=(const PackedDna& other) {
    if (this != &other) {
        PackedDna copy(other);
        *this = std::move(copy);
    }
    return *this;
}

bool PackedDna::operator==(const PackedDna& other) const noexcept {
    if (size_ != other.size_) return false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] != other.words_[w]) return false;
    }
    return true;
}

void PackedDna::push_back(std::uint8_t code) {
    if ((size_ & 31) == 0) owned_words_.push_back(0);
    set_code(size_, code);
    ++size_;
    words_ = owned_words_; // push may reallocate; refresh the view
}

void PackedDna::extract(std::size_t pos, std::size_t len,
                        std::uint8_t* out) const noexcept {
    for (std::size_t i = 0; i < len; ++i) out[i] = code_at(pos + i);
}

std::vector<std::uint8_t> PackedDna::extract(std::size_t pos,
                                             std::size_t len) const {
    std::vector<std::uint8_t> out(len);
    extract(pos, len, out.data());
    return out;
}

void PackedDna::extract_words(std::size_t pos, std::size_t len,
                              std::uint64_t* out) const noexcept {
    const std::size_t n_out = packed_word_count(len);
    const std::size_t word = pos >> 5;
    const std::size_t shift = (pos & 31) * 2;
    for (std::size_t w = 0; w < n_out; ++w) {
        std::uint64_t v = words_[word + w] >> shift;
        if (shift != 0 && word + w + 1 < words_.size()) {
            v |= words_[word + w + 1] << (64 - shift);
        }
        out[w] = v;
    }
    // Zero the bits past `len` so callers can mask-free compare.
    const std::size_t tail = len & 31;
    if (tail != 0) out[n_out - 1] &= (1ULL << (tail * 2)) - 1;
}

std::string PackedDna::to_string(std::size_t pos, std::size_t len) const {
    std::string s(len, '\0');
    for (std::size_t i = 0; i < len; ++i) s[i] = char_at(pos + i);
    return s;
}

PackedDna PackedDna::reverse_complement() const {
    PackedDna rc;
    rc.owned_words_.reserve(words_.size());
    for (std::size_t i = size_; i > 0; --i) {
        rc.push_back(complement_code(code_at(i - 1)));
    }
    return rc;
}

} // namespace repute::util

namespace repute::util {

// --- serialization ---------------------------------------------------

void PackedDna::save(std::ostream& out) const {
    write_magic(out, 0x50444E41u); // "PDNA"
    write_pod<std::uint64_t>(out, size_);
    write_pod<std::uint64_t>(out, words_.size());
    out.write(reinterpret_cast<const char*>(words_.data()),
              static_cast<std::streamsize>(words_.size() *
                                           sizeof(std::uint64_t)));
}

PackedDna PackedDna::load(std::istream& in) {
    check_magic(in, 0x50444E41u, "PackedDna");
    PackedDna dna;
    dna.size_ = read_pod<std::uint64_t>(in);
    dna.owned_words_ = read_vector<std::uint64_t>(in);
    dna.words_ = dna.owned_words_;
    if (dna.words_.size() != (dna.size_ + 31) / 32) {
        throw std::runtime_error("PackedDna: corrupt word count");
    }
    return dna;
}

} // namespace repute::util
