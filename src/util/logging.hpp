#pragma once
// Minimal leveled logger writing to stderr (printf-style formatting;
// the toolchain's libstdc++ predates <format>).
//
// Default level is Warn so benchmarks and tests stay quiet; examples bump
// it to Info. Line-at-a-time writes are serialized across threads.

#include <string_view>

namespace repute::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log_line(LogLevel level, std::string_view message);

#if defined(__GNUC__)
#define REPUTE_PRINTF_CHECK __attribute__((format(printf, 2, 3)))
#else
#define REPUTE_PRINTF_CHECK
#endif

/// printf-style leveled logging; drops the message cheaply when the
/// level is below the threshold.
void logf(LogLevel level, const char* fmt, ...) REPUTE_PRINTF_CHECK;

#undef REPUTE_PRINTF_CHECK

} // namespace repute::util
