#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace repute::util {

Summary summarize(std::span<const double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) return s;

    double sum = 0.0;
    s.min = values.front();
    s.max = values.front();
    for (const double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(values.size());

    if (values.size() > 1) {
        double sq = 0.0;
        for (const double v : values) sq += (v - s.mean) * (v - s.mean);
        s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
    }

    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    s.median = (sorted.size() % 2 == 1)
                   ? sorted[mid]
                   : 0.5 * (sorted[mid - 1] + sorted[mid]);
    return s;
}

double geometric_mean(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double log_sum = 0.0;
    for (const double v : values) log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace repute::util
