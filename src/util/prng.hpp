#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (genome synthesis, read
// simulation, workload shuffling) draw from this generator so that every
// experiment is reproducible from a single seed.

#include <cstdint>
#include <limits>

namespace repute::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++). Passes BigCrush; 2^256-1 period.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Seeds the four lanes from a single 64-bit value via splitmix64,
    /// which guarantees a non-zero state for any seed.
    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept;

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t bounded(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Bernoulli trial with success probability p.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Normal deviate via Box-Muller (fresh pair per call; the spare is
    /// discarded to keep the generator state trivially serializable).
    double normal(double mean, double stddev) noexcept;

    /// Equivalent of 2^128 calls to operator(); used to derive independent
    /// per-thread streams from one master seed.
    void long_jump() noexcept;

private:
    std::uint64_t s_[4];
};

/// splitmix64 step — also useful as a cheap integer hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mixing of a 64-bit value (finalizer of splitmix64).
std::uint64_t mix64(std::uint64_t x) noexcept;

} // namespace repute::util
