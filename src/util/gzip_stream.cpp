#include "util/gzip_stream.hpp"

#include <stdexcept>
#include <vector>

#if defined(REPUTE_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace repute::util {

bool zlib_enabled() noexcept {
#if defined(REPUTE_HAVE_ZLIB)
    return true;
#else
    return false;
#endif
}

bool sniff_gzip_magic(std::istream& in) {
    const int c0 = in.peek();
    if (c0 != 0x1f) return false;
    in.get();
    const int c1 = in.peek();
    in.unget(); // one-character putback is guaranteed after a get
    return c1 == 0x8b;
}

#if defined(REPUTE_HAVE_ZLIB)

std::string gzip_compress(const std::string& bytes) {
    z_stream strm{};
    // windowBits 15 + 16 selects a gzip (not zlib) wrapper.
    if (deflateInit2(&strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                     Z_DEFAULT_STRATEGY) != Z_OK) {
        throw std::runtime_error("gzip: deflateInit2 failed");
    }
    strm.next_in =
        reinterpret_cast<Bytef*>(const_cast<char*>(bytes.data()));
    strm.avail_in = static_cast<uInt>(bytes.size());
    std::string out;
    std::vector<char> chunk(64 * 1024);
    int rc = Z_OK;
    do {
        strm.next_out = reinterpret_cast<Bytef*>(chunk.data());
        strm.avail_out = static_cast<uInt>(chunk.size());
        rc = deflate(&strm, Z_FINISH);
        if (rc != Z_OK && rc != Z_STREAM_END) {
            deflateEnd(&strm);
            throw std::runtime_error("gzip: deflate failed");
        }
        out.append(chunk.data(), chunk.size() - strm.avail_out);
    } while (rc != Z_STREAM_END);
    deflateEnd(&strm);
    return out;
}

/// std::streambuf whose underflow() pulls compressed bytes from the raw
/// stream and inflates them. One gzip member ending while more
/// compressed bytes follow resets the inflater (multi-member support).
class GzipInputStream::InflateBuf final : public std::streambuf {
public:
    explicit InflateBuf(std::istream& raw)
        : raw_(&raw), in_(64 * 1024), out_(64 * 1024) {
        if (inflateInit2(&strm_, 15 + 16) != Z_OK) {
            throw std::runtime_error("gzip: inflateInit2 failed");
        }
        live_ = true;
    }
    ~InflateBuf() override {
        if (live_) inflateEnd(&strm_);
    }
    InflateBuf(const InflateBuf&) = delete;
    InflateBuf& operator=(const InflateBuf&) = delete;

    std::uint64_t compressed_offset() const noexcept {
        return raw_consumed_ - strm_.avail_in;
    }

protected:
    int_type underflow() override {
        if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
        if (finished_) return traits_type::eof();

        strm_.next_out = reinterpret_cast<Bytef*>(out_.data());
        strm_.avail_out = static_cast<uInt>(out_.size());
        while (strm_.avail_out == static_cast<uInt>(out_.size())) {
            if (strm_.avail_in == 0 && !fill_input()) {
                if (at_member_boundary_) {
                    finished_ = true; // clean EOF between members
                    break;
                }
                throw std::runtime_error(
                    "gzip: truncated compressed stream (input ended "
                    "mid-member at compressed byte " +
                    std::to_string(compressed_offset()) + ")");
            }
            at_member_boundary_ = false;
            const int rc = inflate(&strm_, Z_NO_FLUSH);
            if (rc == Z_STREAM_END) {
                // Member finished; more compressed bytes (here or still
                // in the raw stream) mean another member follows.
                at_member_boundary_ = true;
                if (strm_.avail_in == 0 && raw_eof()) {
                    finished_ = true;
                    break;
                }
                if (inflateReset(&strm_) != Z_OK) {
                    throw std::runtime_error("gzip: inflateReset failed");
                }
                continue;
            }
            if (rc != Z_OK && rc != Z_BUF_ERROR) {
                throw std::runtime_error(
                    "gzip: corrupt compressed stream at compressed "
                    "byte " +
                    std::to_string(compressed_offset()) + " (" +
                    (strm_.msg != nullptr ? strm_.msg : "inflate error") +
                    ")");
            }
        }

        const auto produced = out_.size() - strm_.avail_out;
        if (produced == 0) return traits_type::eof();
        setg(out_.data(), out_.data(), out_.data() + produced);
        return traits_type::to_int_type(*gptr());
    }

private:
    bool raw_eof() {
        return raw_->eof() || raw_->peek() == std::istream::traits_type::eof();
    }

    bool fill_input() {
        raw_->read(in_.data(), static_cast<std::streamsize>(in_.size()));
        const auto got = static_cast<std::size_t>(raw_->gcount());
        if (got == 0) return false;
        raw_consumed_ += got;
        strm_.next_in = reinterpret_cast<Bytef*>(in_.data());
        strm_.avail_in = static_cast<uInt>(got);
        return true;
    }

    std::istream* raw_;
    z_stream strm_{};
    bool live_ = false;
    std::vector<char> in_;
    std::vector<char> out_;
    std::uint64_t raw_consumed_ = 0;
    bool finished_ = false;
    /// True only right after a member's trailer was verified — an EOF
    /// here is a clean end of file, anywhere else it is truncation.
    bool at_member_boundary_ = true;
};

GzipInputStream::GzipInputStream(std::istream& raw)
    : buf_(std::make_unique<InflateBuf>(raw)), stream_(buf_.get()) {
    // istream extraction swallows streambuf exceptions into badbit
    // unless badbit is in the exception mask; truncation/corruption
    // must surface as the runtime_error the buffer threw, not as a
    // silent short read.
    stream_.exceptions(std::ios::badbit);
}

GzipInputStream::~GzipInputStream() = default;

std::uint64_t GzipInputStream::compressed_offset() const noexcept {
    return buf_->compressed_offset();
}

#else // !REPUTE_HAVE_ZLIB

namespace {

[[noreturn]] void throw_no_zlib() {
    throw std::runtime_error(
        "gzip input detected but this repute was rebuilt without zlib "
        "(-DREPUTE_ZLIB=OFF); decompress the file first or rebuild with "
        "-DREPUTE_ZLIB=ON");
}

} // namespace

std::string gzip_compress(const std::string&) { throw_no_zlib(); }

class GzipInputStream::InflateBuf final : public std::streambuf {};

GzipInputStream::GzipInputStream(std::istream&) : stream_(nullptr) {
    throw_no_zlib();
}

GzipInputStream::~GzipInputStream() = default;

std::uint64_t GzipInputStream::compressed_offset() const noexcept {
    return 0;
}

#endif

} // namespace repute::util
