#pragma once
// Small descriptive-statistics helpers used when reporting benchmark
// series (mean/median/stddev over repeated runs).

#include <cstddef>
#include <span>

namespace repute::util {

struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; // sample standard deviation (n-1)
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
};

/// Computes a five-number-ish summary; an empty span yields all zeros.
Summary summarize(std::span<const double> values);

/// Geometric mean; values must be positive. Empty span yields 0.
double geometric_mean(std::span<const double> values);

} // namespace repute::util
