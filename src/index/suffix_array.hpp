#pragma once
// Suffix array construction via SA-IS (Nong, Zhang & Chan 2009).
//
// Linear time, linear extra space; the induced-sorting algorithm used by
// most production FM-index builders. Exposed both as a general integer-
// alphabet routine (used recursively) and as a DNA convenience wrapper
// that appends the sentinel internally.

#include <cstdint>
#include <span>
#include <vector>

#include "util/packed_dna.hpp"

namespace repute::index {

/// Computes the suffix array of `text`, an integer string over alphabet
/// [0, alphabet_size) whose FINAL character must be the unique smallest
/// symbol (the sentinel, conventionally 0 appearing exactly once).
/// Returns SA of size text.size(); SA[0] is always the sentinel suffix.
/// Throws std::invalid_argument if the sentinel contract is violated.
std::vector<std::int32_t> sais(std::span<const std::int32_t> text,
                               std::int32_t alphabet_size);

/// Suffix array of a packed DNA text. Internally maps codes 0..3 to 1..4
/// and appends sentinel 0, then strips the sentinel row, so the result
/// has exactly `dna.size() + 1` entries with SA[0] == dna.size() (the
/// empty/sentinel suffix), matching what the FM-index expects.
std::vector<std::int32_t> build_suffix_array(const util::PackedDna& dna);

/// O(n^2 log n) reference implementation (std::sort on suffix compare);
/// used only by tests to cross-check SA-IS on small inputs.
std::vector<std::int32_t> build_suffix_array_naive(
    const util::PackedDna& dna);

} // namespace repute::index
