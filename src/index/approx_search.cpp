#include "index/approx_search.hpp"

namespace repute::index {

namespace {

struct SearchContext {
    const FmIndex* fm;
    std::span<const std::uint8_t> pattern;
    std::uint32_t max_errors;
    std::uint64_t node_budget;
    ApproxSearchStats stats;
    std::vector<ApproxHit> hits;
};

/// Expands the node (range, position i, errors used). `i` counts down;
/// i == 0 means the whole pattern is matched.
void expand(SearchContext& ctx, FmIndex::Range range, std::size_t i,
            std::uint8_t errors) {
    if (ctx.stats.visited_nodes >= ctx.node_budget) {
        ctx.stats.budget_exhausted = true;
        return;
    }
    ++ctx.stats.visited_nodes;

    if (i == 0) {
        ctx.hits.push_back({range, errors});
        return;
    }
    const std::uint8_t expected = ctx.pattern[i - 1];
    // Exact branch first: it is the one most likely to stay alive and
    // keeps hit order stable (fewest-error matches surface first).
    {
        const auto next = ctx.fm->extend(range, expected);
        if (!next.empty()) expand(ctx, next, i - 1, errors);
    }
    if (errors < ctx.max_errors) {
        for (std::uint8_t c = 0; c < 4; ++c) {
            if (c == expected) continue;
            const auto next = ctx.fm->extend(range, c);
            if (!next.empty()) {
                expand(ctx, next, i - 1,
                       static_cast<std::uint8_t>(errors + 1));
            }
        }
    }
}

} // namespace

std::vector<ApproxHit> approximate_search(
    const FmIndex& fm, std::span<const std::uint8_t> pattern,
    std::uint32_t max_errors, ApproxSearchStats* stats,
    std::uint64_t node_budget) {
    SearchContext ctx{&fm, pattern, max_errors, node_budget, {}, {}};
    expand(ctx, fm.whole_range(), pattern.size(), 0);
    if (stats != nullptr) *stats = ctx.stats;
    return std::move(ctx.hits);
}

} // namespace repute::index
