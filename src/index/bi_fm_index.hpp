#pragma once
// Bidirectional FM-Index (Lam et al. 2009's 2BWT / the index behind
// modern search-scheme mappers).
//
// Two synchronized FM-indexes — one over the text, one over the
// reversed text — let a pattern grow in BOTH directions in O(1) per
// character: extend_left() prepends (native backward search on the
// forward index), extend_right() appends (backward search on the
// reverse index), and each operation keeps the sibling range in sync
// via symbol-rank counting. This enables anchored approximate search
// (search schemes): match one pattern piece exactly, then extend
// outward spending the error budget — visiting far fewer backtracking
// nodes than unidirectional search for the same sensitivity.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/approx_search.hpp"
#include "index/fm_index.hpp"

namespace repute::index {

class BiFmIndex {
public:
    explicit BiFmIndex(const genomics::Reference& reference);

    /// Synchronized ranges: `fwd` in the forward index tracks the
    /// pattern P; `rev` in the reverse index tracks reverse(P). Both
    /// always have the same count.
    struct BiRange {
        FmIndex::Range fwd;
        FmIndex::Range rev;

        std::uint32_t count() const noexcept { return fwd.count(); }
        bool empty() const noexcept { return fwd.empty(); }
    };

    /// Range of the empty pattern.
    BiRange whole_range() const noexcept {
        return {forward_->whole_range(), reverse_->whole_range()};
    }

    /// P -> cP. O(1) rank operations.
    BiRange extend_left(BiRange range, std::uint8_t code) const noexcept;
    /// P -> Pc. O(1) rank operations.
    BiRange extend_right(BiRange range, std::uint8_t code) const noexcept;

    /// Convenience: full bidirectional match of `pattern` (grown to the
    /// right); equals forward().search(pattern) on the fwd side.
    BiRange match(std::span<const std::uint8_t> pattern) const noexcept;

    /// The underlying forward index — use for locate().
    const FmIndex& forward() const noexcept { return *forward_; }
    /// The index over the reversed text.
    const FmIndex& reverse() const noexcept { return *reverse_; }

    std::size_t size() const noexcept { return forward_->size(); }
    std::size_t memory_bytes() const noexcept {
        return forward_->memory_bytes() + reverse_->memory_bytes();
    }

private:
    std::unique_ptr<FmIndex> forward_;
    std::unique_ptr<FmIndex> reverse_;
};

/// Anchored approximate search over the bidirectional index (simple
/// pigeonhole search scheme): the pattern is split into max_errors + 1
/// pieces; for each anchor piece, the piece is matched exactly and the
/// pattern is extended right then left with the substitution budget.
/// Hits are forward-index ranges, deduplicated (identical matched
/// strings reached through different anchors collapse). Sensitivity is
/// identical to approximate_search(); the visited-node count is what
/// the scheme improves — see BM_BidiSearch in bench/micro_kernels.
std::vector<ApproxHit> bidirectional_approximate_search(
    const BiFmIndex& index, std::span<const std::uint8_t> pattern,
    std::uint32_t max_errors, ApproxSearchStats* stats = nullptr,
    std::uint64_t node_budget = 1u << 20);

} // namespace repute::index
