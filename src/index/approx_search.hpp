#pragma once
// Backtracking approximate backward search over the FM-Index.
//
// Enumerates every string within Hamming distance `max_errors` of the
// pattern that occurs in the indexed text, as a set of disjoint suffix
// ranges. This is the engine behind stratified FM-index mappers (Yara,
// Bowtie lineage): seeds are searched *with* errors instead of exactly,
// trading an exponentially growing search tree for the right to use
// fewer/longer seeds. The visited-node count is the honest cost of that
// trade and is reported for the device time model.

#include <cstdint>
#include <span>
#include <vector>

#include "index/fm_index.hpp"

namespace repute::index {

struct ApproxHit {
    FmIndex::Range range;
    std::uint8_t errors = 0; ///< substitutions spent on this match
};

struct ApproxSearchStats {
    std::uint64_t visited_nodes = 0; ///< backtracking tree nodes expanded
    bool budget_exhausted = false;   ///< true when node_budget truncated
};

/// Searches `pattern` (2-bit codes) backward with up to `max_errors`
/// substitutions. Hits with identical ranges at different error counts
/// are all reported (callers typically verify anyway). Expansion stops
/// after `node_budget` nodes to bound pathological cases.
std::vector<ApproxHit> approximate_search(const FmIndex& fm,
                                          std::span<const std::uint8_t> pattern,
                                          std::uint32_t max_errors,
                                          ApproxSearchStats* stats = nullptr,
                                          std::uint64_t node_budget = 1u << 20);

} // namespace repute::index
