#include "index/bi_fm_index.hpp"

#include <algorithm>

namespace repute::index {

namespace {

/// Reversed copy of the reference text (NOT reverse-complemented — the
/// second index is over the plain reversed string).
genomics::Reference reversed_reference(
    const genomics::Reference& reference) {
    util::PackedDna reversed;
    for (std::size_t i = reference.size(); i-- > 0;) {
        reversed.push_back(reference.code_at(i));
    }
    return genomics::Reference(reference.name() + ".rev",
                               std::move(reversed));
}

/// Occurrences of symbols strictly smaller than `code` (sentinel
/// included) in BWT[lo, hi) of `fm`.
std::uint32_t rank_smaller(const FmIndex& fm, std::uint8_t code,
                           std::uint32_t lo, std::uint32_t hi) noexcept {
    std::uint32_t smaller =
        (fm.sentinel_row() >= lo && fm.sentinel_row() < hi) ? 1u : 0u;
    for (std::uint8_t b = 0; b < code; ++b) {
        smaller += fm.occ(b, hi) - fm.occ(b, lo);
    }
    return smaller;
}

} // namespace

BiFmIndex::BiFmIndex(const genomics::Reference& reference)
    : forward_(std::make_unique<FmIndex>(reference)),
      reverse_(std::make_unique<FmIndex>(reversed_reference(reference))) {}

BiFmIndex::BiRange BiFmIndex::extend_left(BiRange range,
                                          std::uint8_t code) const noexcept {
    const auto fwd = forward_->extend(range.fwd, code);
    const std::uint32_t smaller =
        rank_smaller(*forward_, code, range.fwd.lo, range.fwd.hi);
    const std::uint32_t lo = range.rev.lo + smaller;
    return {fwd, {lo, lo + fwd.count()}};
}

BiFmIndex::BiRange BiFmIndex::extend_right(BiRange range,
                                           std::uint8_t code) const noexcept {
    const auto rev = reverse_->extend(range.rev, code);
    const std::uint32_t smaller =
        rank_smaller(*reverse_, code, range.rev.lo, range.rev.hi);
    const std::uint32_t lo = range.fwd.lo + smaller;
    return {{lo, lo + rev.count()}, rev};
}

BiFmIndex::BiRange BiFmIndex::match(
    std::span<const std::uint8_t> pattern) const noexcept {
    BiRange range = whole_range();
    for (const std::uint8_t c : pattern) {
        if (range.empty()) break;
        range = extend_right(range, c);
    }
    return range;
}

// ---------------------------------------------------- search scheme

namespace {

struct SchemeContext {
    const BiFmIndex* index;
    std::span<const std::uint8_t> pattern;
    std::uint32_t max_errors;
    std::uint32_t anchor_begin; ///< [anchor_begin, anchor_end) exact
    std::uint64_t node_budget;
    ApproxSearchStats* stats;
    std::vector<ApproxHit>* hits;
};

bool budget_ok(SchemeContext& ctx) {
    if (ctx.stats->visited_nodes >= ctx.node_budget) {
        ctx.stats->budget_exhausted = true;
        return false;
    }
    ++ctx.stats->visited_nodes;
    return true;
}

/// Phase 2: extend left over [0, anchor_begin), positions descending.
void extend_leftward(SchemeContext& ctx, BiFmIndex::BiRange range,
                     std::uint32_t position, std::uint8_t errors) {
    if (!budget_ok(ctx)) return;
    if (position == 0) {
        ctx.hits->push_back({range.fwd, errors});
        return;
    }
    const std::uint8_t expected = ctx.pattern[position - 1];
    for (std::uint8_t c = 0; c < 4; ++c) {
        const std::uint8_t cost = (c == expected) ? 0 : 1;
        if (errors + cost > ctx.max_errors) continue;
        const auto next = ctx.index->extend_left(range, c);
        if (!next.empty()) {
            extend_leftward(ctx, next, position - 1,
                            static_cast<std::uint8_t>(errors + cost));
        }
    }
}

/// Phase 1: extend right over [anchor_end, m), then hand to phase 2.
void extend_rightward(SchemeContext& ctx, BiFmIndex::BiRange range,
                      std::uint32_t position, std::uint8_t errors) {
    if (!budget_ok(ctx)) return;
    if (position == ctx.pattern.size()) {
        extend_leftward(ctx, range, ctx.anchor_begin, errors);
        return;
    }
    const std::uint8_t expected = ctx.pattern[position];
    for (std::uint8_t c = 0; c < 4; ++c) {
        const std::uint8_t cost = (c == expected) ? 0 : 1;
        if (errors + cost > ctx.max_errors) continue;
        const auto next = ctx.index->extend_right(range, c);
        if (!next.empty()) {
            extend_rightward(ctx, next, position + 1,
                             static_cast<std::uint8_t>(errors + cost));
        }
    }
}

} // namespace

std::vector<ApproxHit> bidirectional_approximate_search(
    const BiFmIndex& index, std::span<const std::uint8_t> pattern,
    std::uint32_t max_errors, ApproxSearchStats* stats,
    std::uint64_t node_budget) {
    ApproxSearchStats local;
    std::vector<ApproxHit> hits;
    const std::uint32_t pieces = max_errors + 1;
    const auto m = static_cast<std::uint32_t>(pattern.size());

    for (std::uint32_t a = 0; a < pieces && m >= pieces; ++a) {
        const std::uint32_t begin = a * m / pieces;
        const std::uint32_t end = (a + 1) * m / pieces;

        // Anchor: exact bidirectional match of pattern[begin, end),
        // grown to the right.
        BiFmIndex::BiRange range = index.whole_range();
        bool alive = true;
        for (std::uint32_t i = begin; i < end; ++i) {
            ++local.visited_nodes;
            range = index.extend_right(range, pattern[i]);
            if (range.empty()) {
                alive = false;
                break;
            }
        }
        if (!alive) continue;

        SchemeContext ctx{&index,      pattern,     max_errors, begin,
                          node_budget, &local,      &hits};
        extend_rightward(ctx, range, end, 0);
    }

    // Different anchors can reach the same matched string; dedup by the
    // forward range, keeping the lowest error count.
    std::sort(hits.begin(), hits.end(),
              [](const ApproxHit& a, const ApproxHit& b) {
                  if (a.range.lo != b.range.lo) {
                      return a.range.lo < b.range.lo;
                  }
                  if (a.range.hi != b.range.hi) {
                      return a.range.hi < b.range.hi;
                  }
                  return a.errors < b.errors;
              });
    hits.erase(std::unique(hits.begin(), hits.end(),
                           [](const ApproxHit& a, const ApproxHit& b) {
                               return a.range.lo == b.range.lo &&
                                      a.range.hi == b.range.hi;
                           }),
               hits.end());

    if (stats != nullptr) *stats = local;
    return hits;
}

} // namespace repute::index
