#include "index/qgram_table.hpp"

#include <stdexcept>
#include <string>

namespace repute::index {

namespace {

/// Fills levels depth+1..q below a non-empty node by extend()ing one
/// symbol at a time. Empty children are pruned: their entire subtrees
/// keep the zero-initialized {0, 0} entries, which is exactly the
/// "absent pattern" encoding lookup() documents.
void fill_subtree(const FmIndex& fm, std::vector<FmIndex::Range>& ranges,
                  const std::vector<std::size_t>& level_offset,
                  FmIndex::Range range, std::uint64_t idx,
                  std::uint32_t depth, std::uint32_t q) {
    if (depth == q) return;
    for (std::uint8_t c = 0; c < 4; ++c) {
        const FmIndex::Range child = fm.extend(range, c);
        if (child.empty()) continue;
        const std::uint64_t child_idx =
            (static_cast<std::uint64_t>(c) << (2 * depth)) | idx;
        ranges[level_offset[depth + 1] + child_idx] = child;
        fill_subtree(fm, ranges, level_offset, child, child_idx, depth + 1,
                     q);
    }
}

} // namespace

void QGramTable::build_level_offsets() {
    level_offset_.assign(q_ + 1, 0);
    std::size_t offset = 0;
    std::size_t level_size = 4;
    for (std::uint32_t level = 1; level <= q_; ++level) {
        level_offset_[level] = offset;
        offset += level_size;
        level_size *= 4;
    }
}

QGramTable::QGramTable(const FmIndex& fm, std::uint32_t q) : q_(q) {
    if (q == 0 || q > kMaxQ) {
        throw std::invalid_argument(
            "QGramTable: q must be in [1, " + std::to_string(kMaxQ) + "]");
    }
    build_level_offsets();
    owned_ranges_.assign(table_bytes(q) / sizeof(FmIndex::Range),
                         FmIndex::Range{0, 0});
    fill_subtree(fm, owned_ranges_, level_offset_, fm.whole_range(), 0, 0,
                 q);
    ranges_ = owned_ranges_;
}

QGramTable QGramTable::view_of(std::uint32_t q,
                               std::span<const FmIndex::Range> ranges) {
    if (q == 0 || q > kMaxQ) {
        throw std::runtime_error("QGramTable: view q out of range");
    }
    if (ranges.size() != table_bytes(q) / sizeof(FmIndex::Range)) {
        throw std::runtime_error("QGramTable: view range-count mismatch");
    }
    QGramTable table;
    table.q_ = q;
    table.build_level_offsets();
    table.ranges_ = ranges;
    return table;
}

FmIndex::Range QGramTable::lookup(
    std::span<const std::uint8_t> codes) const noexcept {
    const auto len = static_cast<std::uint32_t>(codes.size());
    std::uint64_t idx = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
        idx |= static_cast<std::uint64_t>(codes[i]) << (2 * (len - 1 - i));
    }
    return lookup(len, idx);
}

std::size_t QGramTable::memory_bytes() const noexcept {
    return ranges_.size() * sizeof(FmIndex::Range) +
           level_offset_.size() * sizeof(std::size_t);
}

std::size_t QGramTable::heap_bytes() const noexcept {
    return owned_ranges_.size() * sizeof(FmIndex::Range) +
           level_offset_.size() * sizeof(std::size_t);
}

} // namespace repute::index
