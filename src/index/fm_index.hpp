#pragma once
// FM-Index (Ferragina & Manzini 2000) over 2-bit DNA with a sampled
// suffix array for locate queries — the preprocessing data structure of
// the paper (§II-A), shared by REPUTE, CORAL and the FM-based baselines.
//
// Layout choices match the paper's memory-footprint concerns:
//   * the BWT is stored 2 bits/symbol with occ checkpoints every 128
//     symbols (1 byte/base overhead, popcount rank within a block),
//   * the suffix array is sampled every `sa_sample` text positions
//     (paper §IV cites Bowtie2-style interval sampling as the fix for
//     its full-SA footprint — we implement that fix).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "genomics/sequence.hpp"
#include "util/bitvector.hpp"
#include "util/packed_dna.hpp"

namespace repute::index {

class FmIndex {
public:
    /// Half-open row interval [lo, hi) in the conceptual sorted-suffix
    /// matrix. Empty when lo >= hi.
    struct Range {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;

        std::uint32_t count() const noexcept { return hi - lo; }
        bool empty() const noexcept { return lo >= hi; }
        bool operator==(const Range&) const noexcept = default;
    };

    /// Builds the index for `reference`. `sa_sample` = 1 keeps the full
    /// suffix array (fastest locate, paper's original configuration);
    /// larger values trade locate speed for memory. `checkpoint_every`
    /// (a power of two, >= 32) spaces the occ checkpoints: wider spacing
    /// shrinks the rank directory but lengthens each occ scan — the
    /// second index-footprint knob the paper's §IV discussion points at.
    explicit FmIndex(const genomics::Reference& reference,
                     std::uint32_t sa_sample = 4,
                     std::uint32_t checkpoint_every = 128);

    /// Text length (without sentinel).
    std::size_t size() const noexcept { return n_; }

    /// Range covering every suffix (n+1 rows including the sentinel).
    Range whole_range() const noexcept {
        return {0, static_cast<std::uint32_t>(n_ + 1)};
    }

    /// Backward-search step: narrows `r` for pattern P to the range for
    /// pattern cP. O(1).
    Range extend(Range r, std::uint8_t code) const noexcept;

    /// Full backward search of `pattern` (2-bit codes, searched from its
    /// last symbol to its first). O(|pattern|).
    Range search(std::span<const std::uint8_t> pattern) const noexcept;

    /// Text position of the suffix at `row`. O(sa_sample) LF steps.
    std::uint32_t locate(std::uint32_t row) const noexcept;

    /// Locates up to `max_hits` rows of `r` into `out` (appended).
    void locate_range(Range r, std::size_t max_hits,
                      std::vector<std::uint32_t>& out) const;

    /// Number of occurrences of `code` in BWT[0, row).
    std::uint32_t occ(std::uint8_t code, std::uint32_t row) const noexcept;

    /// Last-to-first mapping.
    std::uint32_t lf(std::uint32_t row) const noexcept;

    /// Row whose BWT symbol is the sentinel (needed by bidirectional
    /// range synchronization).
    std::uint32_t sentinel_row() const noexcept { return sentinel_row_; }

    std::uint32_t sa_sample() const noexcept { return sa_sample_; }
    std::uint32_t checkpoint_every() const noexcept {
        return checkpoint_every_;
    }

    /// Heap bytes used by the index (footprint accounting for the device
    /// memory ceilings).
    std::size_t memory_bytes() const noexcept;

    /// Binary serialization — build once, reuse across runs (index
    /// construction dominates start-up for large references).
    void save(std::ostream& out) const;
    static FmIndex load(std::istream& in);

private:
    FmIndex() = default; // for load()

    std::size_t n_ = 0;                       ///< text length
    std::array<std::uint32_t, 5> c_{};        ///< C[c], c_[4] = n+1
    std::vector<std::uint64_t> bwt_;          ///< packed BWT, n+1 symbols
    std::uint32_t sentinel_row_ = 0;          ///< row whose BWT char is $
    std::vector<std::array<std::uint32_t, 4>> checkpoints_;
    std::uint32_t sa_sample_ = 4;
    std::uint32_t checkpoint_every_ = 128;
    util::BitVector sampled_rows_;            ///< rank-enabled marks
    std::vector<std::uint32_t> samples_;      ///< SA values at marked rows

    std::uint8_t bwt_code(std::uint32_t i) const noexcept {
        return static_cast<std::uint8_t>((bwt_[i >> 5] >> ((i & 31) * 2)) &
                                         3u);
    }
};

} // namespace repute::index
