#pragma once
// FM-Index (Ferragina & Manzini 2000) over 2-bit DNA with a sampled
// suffix array for locate queries — the preprocessing data structure of
// the paper (§II-A), shared by REPUTE, CORAL and the FM-based baselines.
//
// Layout choices match the paper's memory-footprint concerns, tuned for
// the occ() hot path (the filtration stage is memory-bound on it):
//   * the BWT and its occ rank directory are fused into interleaved
//     cache-line-aligned blocks: each block carries the absolute counts
//     at the block start, the packed 2-bit BWT words of the block, and
//     (for checkpoint spacings <= 256) 8-bit per-word prefix counts —
//     at the default spacing of 128 one occ() is a single 64-byte line
//     (counts + sub-count + one masked popcount) instead of two streams
//     over separate checkpoint and BWT arrays,
//   * the suffix array is sampled every `sa_sample` text positions
//     (paper §IV cites Bowtie2-style interval sampling as the fix for
//     its full-SA footprint — we implement that fix),
//   * an optional q-gram jump table (see qgram_table.hpp) precomputes
//     the FM range of every pattern of length <= q so backward scans
//     start q symbols deep.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "genomics/sequence.hpp"
#include "util/bitvector.hpp"
#include "util/packed_dna.hpp"

namespace repute::index {

class QGramTable;

class FmIndex {
public:
    /// Half-open row interval [lo, hi) in the conceptual sorted-suffix
    /// matrix. Empty when lo >= hi.
    struct Range {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;

        std::uint32_t count() const noexcept { return hi - lo; }
        bool empty() const noexcept { return lo >= hi; }
        bool operator==(const Range&) const noexcept = default;
    };

    /// Default q of the q-gram jump table built alongside the index
    /// (4^8 + ... + 4 ranges, ~700 KB). Pass 0 to skip the table.
    static constexpr std::uint32_t kDefaultQgramLength = 8;

    /// Builds the index for `reference`. `sa_sample` = 1 keeps the full
    /// suffix array (fastest locate, paper's original configuration);
    /// larger values trade locate speed for memory. `checkpoint_every`
    /// (a power of two, >= 32) spaces the occ checkpoints: wider spacing
    /// shrinks the rank directory but lengthens each occ scan — the
    /// second index-footprint knob the paper's §IV discussion points at.
    /// `qgram_length` sizes the jump table (0 disables it).
    explicit FmIndex(const genomics::Reference& reference,
                     std::uint32_t sa_sample = 4,
                     std::uint32_t checkpoint_every = 128,
                     std::uint32_t qgram_length = kDefaultQgramLength);

    /// Everything from_view() needs besides the four arrays — the
    /// header fields of the .rix container.
    struct ViewGeometry {
        std::uint64_t n = 0;               ///< text length (no sentinel)
        std::array<std::uint32_t, 5> c{};  ///< C array, c[4] = n + 1
        std::uint32_t sentinel_row = 0;
        std::uint32_t sa_sample = 1;
        std::uint32_t checkpoint_every = 128;
        /// Effective q of `qgram_ranges` (0 = no jump table).
        std::uint32_t qgram_length = 0;
    };

    /// Zero-copy construction over externally owned arrays — the mmap
    /// load path of the .rix container (index/rix.hpp). The spans must
    /// outlive the index:
    ///   * `rank_words`  — the interleaved rank-block image, exactly
    ///     rank_words_for(n, checkpoint_every) u64 words, 64-byte
    ///     aligned (page alignment in the container guarantees this),
    ///   * `sa_mark_words` — the sampled-row bit words (rank
    ///     directories are rebuilt, they are ~3% of the bits),
    ///   * `sa_samples` — SA values at marked rows, in row order,
    ///   * `qgram_ranges` — the jump-table range array (empty when
    ///     geometry.qgram_length is 0).
    /// Throws std::runtime_error on any size/alignment mismatch; the
    /// caller (the .rix loader) has already checksummed the bytes.
    static FmIndex from_view(const ViewGeometry& geometry,
                             std::span<const std::uint64_t> rank_words,
                             std::span<const std::uint64_t> sa_mark_words,
                             std::span<const std::uint32_t> sa_samples,
                             std::span<const Range> qgram_ranges);

    /// u64 words the interleaved rank-block image occupies for a text
    /// of length `n` at the given checkpoint spacing — the .rix
    /// writer/loader sizing contract.
    static std::size_t rank_words_for(std::uint64_t n,
                                      std::uint32_t checkpoint_every);

    FmIndex(FmIndex&&) noexcept;
    FmIndex& operator=(FmIndex&&) noexcept;
    ~FmIndex();

    /// Text length (without sentinel).
    std::size_t size() const noexcept { return n_; }

    /// Range covering every suffix (n+1 rows including the sentinel).
    Range whole_range() const noexcept {
        return {0, static_cast<std::uint32_t>(n_ + 1)};
    }

    /// Backward-search step: narrows `r` for pattern P to the range for
    /// pattern cP. O(1).
    Range extend(Range r, std::uint8_t code) const noexcept;

    /// Full backward search of `pattern` (2-bit codes, searched from its
    /// last symbol to its first). O(|pattern|). Performs every extend
    /// step — callers that may start q symbols deep (the filtration
    /// scanners) go through qgrams() so the saved work is accounted.
    Range search(std::span<const std::uint8_t> pattern) const noexcept;

    /// Text position of the suffix at `row`. O(sa_sample) LF steps.
    std::uint32_t locate(std::uint32_t row) const noexcept;

    /// Locates up to `max_hits` rows of `r` into `out` (appended).
    void locate_range(Range r, std::size_t max_hits,
                      std::vector<std::uint32_t>& out) const;

    /// Number of occurrences of `code` in BWT[0, row).
    std::uint32_t occ(std::uint8_t code, std::uint32_t row) const noexcept;

    /// Last-to-first mapping.
    std::uint32_t lf(std::uint32_t row) const noexcept;

    /// Row whose BWT symbol is the sentinel (needed by bidirectional
    /// range synchronization).
    std::uint32_t sentinel_row() const noexcept { return sentinel_row_; }

    std::uint32_t sa_sample() const noexcept { return sa_sample_; }
    std::uint32_t checkpoint_every() const noexcept {
        return checkpoint_every_;
    }

    /// The q-gram jump table, or nullptr when built with
    /// qgram_length = 0.
    const QGramTable* qgrams() const noexcept { return qgrams_.get(); }
    std::uint32_t qgram_length() const noexcept { return qgram_length_; }

    /// Total bytes reachable through the index (footprint accounting
    /// for the device memory ceilings): rank blocks incl. alignment
    /// padding, C array, SA samples with their rank directories, and
    /// the q-gram table — mapped or not. Always equals
    /// mapped_bytes() + resident_bytes().
    std::size_t memory_bytes() const noexcept;

    /// Bytes borrowed from an external mapping (the .rix file) — zero
    /// for a built or stream-loaded index. These pages are shared,
    /// demand-paged and evictable; they are NOT resident heap.
    std::size_t mapped_bytes() const noexcept;

    /// Bytes of process-private heap actually owned: everything for a
    /// built index; just the rebuilt rank directories and offsets for a
    /// mapped view.
    std::size_t resident_bytes() const noexcept {
        return memory_bytes() - mapped_bytes();
    }

    /// True when the big arrays are views over an external mapping.
    bool is_view() const noexcept { return view_; }

    /// The serialized-array accessors the .rix writer uses.
    std::span<const std::uint64_t> rank_words() const noexcept {
        return {reinterpret_cast<const std::uint64_t*>(lines_),
                line_count_ * (sizeof(Line) / sizeof(std::uint64_t))};
    }
    const util::BitVector& sampled_rows() const noexcept {
        return sampled_rows_;
    }
    std::span<const std::uint32_t> sa_samples() const noexcept {
        return samples_;
    }
    const std::array<std::uint32_t, 5>& c_array() const noexcept {
        return c_;
    }

    /// BWT words examined by occ() on the calling thread since thread
    /// start — sampled around kernel executions to feed the
    /// `index.occ_words_scanned` metric (one unconditional thread-local
    /// add per occ; no atomics on the hot path).
    static std::uint64_t thread_occ_words() noexcept;

    /// Binary serialization — build once, reuse across runs (index
    /// construction dominates start-up for large references). The
    /// on-disk format stores the flat BWT; interleaved blocks and the
    /// q-gram table are rebuilt on load. Pre-interleaving "FMIX" images
    /// are rejected with a "rebuild" error.
    void save(std::ostream& out) const;
    static FmIndex load(std::istream& in);

private:
    FmIndex() = default; // for load()

    /// 64-byte-aligned backing storage for the interleaved blocks.
    struct alignas(64) Line {
        std::uint64_t w[8] = {};
    };

    std::size_t n_ = 0;                ///< text length
    std::array<std::uint32_t, 5> c_{}; ///< C[c], c_[4] = n+1
    std::uint32_t sentinel_row_ = 0;   ///< row whose BWT char is $

    // Interleaved rank blocks. Block b (rows [b*cpe, (b+1)*cpe)) spans
    // stride_words_ u64 words:
    //   words [0, 2):                     occ counts at the block start
    //                                     (4 x u32, code-major),
    //   words [2, 2+W):                   packed BWT, W = cpe/32,
    //   words [2+W, ...)  (cpe <= 256):   u8 prefix counts per (word,
    //                                     code): symbols equal to `code`
    //                                     in words [0, w) of the block.
    // The stride is padded to a multiple of 8 words so blocks start on
    // cache-line boundaries (exactly one line at the default cpe = 128).
    // `lines_`/`line_count_` describe the active image: the owned
    // vector for a built index, the mmap'd section for a .rix view.
    std::vector<Line> owned_lines_;
    const Line* lines_ = nullptr;
    std::size_t line_count_ = 0;
    bool view_ = false;
    std::uint32_t words_per_block_ = 0;
    std::uint32_t stride_words_ = 0;
    std::uint32_t sub_base_ = 0; ///< word offset of the u8 prefix counts
    std::uint32_t log2_cpe_ = 0;
    bool has_sub_counts_ = false;

    std::uint32_t sa_sample_ = 4;
    std::uint32_t checkpoint_every_ = 128;
    std::uint32_t qgram_length_ = kDefaultQgramLength;
    util::BitVector sampled_rows_; ///< rank-enabled marks
    std::vector<std::uint32_t> owned_samples_;
    std::span<const std::uint32_t> samples_; ///< SA values at marked rows
    std::unique_ptr<QGramTable> qgrams_;

    std::uint32_t rows() const noexcept {
        return static_cast<std::uint32_t>(n_ + 1);
    }
    const std::uint64_t* block_words(std::uint32_t b) const noexcept {
        return reinterpret_cast<const std::uint64_t*>(lines_) +
               static_cast<std::size_t>(b) * stride_words_;
    }
    std::uint64_t* mutable_block_words(std::uint32_t b) noexcept {
        return reinterpret_cast<std::uint64_t*>(owned_lines_.data()) +
               static_cast<std::size_t>(b) * stride_words_;
    }
    std::uint8_t bwt_code(std::uint32_t i) const noexcept {
        const std::uint64_t* blk = block_words(i >> log2_cpe_);
        const std::uint32_t r = i & (checkpoint_every_ - 1);
        return static_cast<std::uint8_t>(
            (blk[2 + (r >> 5)] >> ((r & 31u) * 2)) & 3u);
    }

    void validate_geometry() const;
    /// Computes words_per_block_/stride_words_/sub_base_/... from
    /// checkpoint_every_ — shared by the build and view paths.
    void derive_geometry();
    void build_blocks(std::span<const std::uint64_t> flat_bwt);
    std::vector<std::uint64_t> flat_bwt() const;
    void build_qgrams();
};

} // namespace repute::index
