#pragma once
// Q-gram jump table: precomputed FM ranges for every pattern of length
// 1..q.
//
// FM backward search narrows the row range one prepended symbol at a
// time, so the range of ANY pattern of length L <= q is a pure function
// of its 2-bit encoding — independent of the read it came from. The
// table materializes all (4^(q+1) - 4) / 3 of them (q = 8 default:
// 87,380 ranges, ~700 KB), letting every suffix-frequency scan and
// seed-range computation start q symbols deep: one L2-resident load
// replaces q extend() steps (2q occ() queries over the rank blocks).
//
// Lookups are exact, not approximate: a table hit returns the range
// extend() would have produced symbol by symbol, so mapping output is
// unchanged (the jump-table-equivalence tests pin this).

#include <cstdint>
#include <span>
#include <vector>

#include "index/fm_index.hpp"

namespace repute::index {

class QGramTable {
public:
    /// Largest supported q: 4^12 ranges = 128 MB is already past any
    /// sensible footprint/speed trade-off.
    static constexpr std::uint32_t kMaxQ = 12;

    /// Builds ranges for all patterns of length 1..q over `fm` by a
    /// pruned DFS of extend() steps (cost ~ 4 * distinct substrings of
    /// length <= q, far below 4^q on small references).
    QGramTable(const FmIndex& fm, std::uint32_t q);

    /// Read-only view over an externally owned (mmap'd) range array —
    /// the zero-copy load path of the .rix container. `ranges` must
    /// hold exactly table_bytes(q) / sizeof(Range) entries and outlive
    /// the view; the level offsets (a pure function of q) are
    /// recomputed. Throws std::runtime_error on a size mismatch.
    static QGramTable view_of(std::uint32_t q,
                              std::span<const FmIndex::Range> ranges);

    std::uint32_t q() const noexcept { return q_; }

    /// The backing range array — what the .rix writer serializes.
    std::span<const FmIndex::Range> ranges() const noexcept {
        return ranges_;
    }

    /// Bytes of the range array a depth-`q` table occupies — used by
    /// FmIndex to cap q so the table never outweighs the text itself.
    static constexpr std::size_t table_bytes(std::uint32_t q) noexcept {
        std::size_t entries = 0;
        std::size_t level = 4;
        for (std::uint32_t l = 1; l <= q; ++l) {
            entries += level;
            level *= 4;
        }
        return entries * sizeof(FmIndex::Range);
    }

    /// Range of the length-`len` pattern (1 <= len <= q) whose
    /// big-endian 2-bit encoding is `idx` (first symbol in the highest
    /// bits). Absent patterns yield the canonical empty range {0, 0}.
    /// Callers build `idx` incrementally while walking a read backwards:
    /// prepending symbol c to a length-L pattern is
    /// `idx |= c << (2 * L)`.
    FmIndex::Range lookup(std::uint32_t len,
                          std::uint64_t idx) const noexcept {
        return ranges_[level_offset_[len] + idx];
    }

    /// Range for an explicit pattern (codes 0..3, 1 <= size() <= q).
    FmIndex::Range lookup(std::span<const std::uint8_t> codes) const noexcept;

    /// Total footprint (range array + offsets) — part of the index
    /// image uploaded to every device, mapped or not.
    std::size_t memory_bytes() const noexcept;

    /// Heap bytes actually owned — a view over a mapped range array
    /// reports only its (tiny) level-offset table.
    std::size_t heap_bytes() const noexcept;

private:
    QGramTable() = default; // for view_of()

    void build_level_offsets();

    std::uint32_t q_ = 0;
    std::vector<std::size_t> level_offset_; ///< [L] = base of level L
    std::vector<FmIndex::Range> owned_ranges_;
    std::span<const FmIndex::Range> ranges_; ///< owned_ranges_ or borrowed
};

} // namespace repute::index
