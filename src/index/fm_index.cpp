#include "index/fm_index.hpp"

#include <bit>
#include <stdexcept>

#include "index/suffix_array.hpp"
#include "util/serialize.hpp"

namespace repute::index {

namespace {

constexpr std::uint64_t kLowBits = 0x5555555555555555ULL;

/// 2-bit replication patterns for codes 0..3.
constexpr std::uint64_t kReplicate[4] = {
    0x0000000000000000ULL, kLowBits, ~kLowBits, ~0ULL};

/// Count of symbols equal to `code` among the first `m` (<=32) symbols
/// packed in `word`.
inline std::uint32_t count_eq(std::uint64_t word, std::uint8_t code,
                              std::uint32_t m) noexcept {
    const std::uint64_t x = word ^ kReplicate[code];
    const std::uint64_t diff = (x | (x >> 1)) & kLowBits;
    const std::uint64_t region =
        (m >= 32) ? ~0ULL : ((1ULL << (2 * m)) - 1);
    return static_cast<std::uint32_t>(
        std::popcount(~diff & kLowBits & region));
}

} // namespace

FmIndex::FmIndex(const genomics::Reference& reference,
                 std::uint32_t sa_sample, std::uint32_t checkpoint_every)
    : n_(reference.size()), sa_sample_(sa_sample == 0 ? 1 : sa_sample),
      checkpoint_every_(checkpoint_every) {
    if (checkpoint_every_ < 32 ||
        (checkpoint_every_ & (checkpoint_every_ - 1)) != 0) {
        throw std::invalid_argument(
            "FmIndex: checkpoint_every must be a power of two >= 32");
    }
    const auto& text = reference.sequence();
    const auto sa = build_suffix_array(text); // n+1 rows, SA[0] == n
    const auto rows = static_cast<std::uint32_t>(sa.size());

    // C array: sentinel sorts before everything and occupies one row.
    std::array<std::uint32_t, 4> counts{};
    for (std::size_t i = 0; i < n_; ++i) ++counts[text.code_at(i)];
    c_[0] = 1;
    for (int c = 1; c <= 4; ++c) {
        c_[static_cast<std::size_t>(c)] =
            c_[static_cast<std::size_t>(c - 1)] +
            counts[static_cast<std::size_t>(c - 1)];
    }

    // BWT[i] = text[SA[i] - 1]; the row with SA[i] == 0 holds the
    // sentinel, which we record separately (its packed slot stores 0).
    bwt_.assign((rows + 31) / 32, 0);
    for (std::uint32_t i = 0; i < rows; ++i) {
        std::uint8_t code = 0;
        if (sa[i] == 0) {
            sentinel_row_ = i;
        } else {
            code = text.code_at(static_cast<std::size_t>(sa[i]) - 1);
        }
        bwt_[i >> 5] |= static_cast<std::uint64_t>(code) << ((i & 31) * 2);
    }

    // Occ checkpoints: cumulative counts at every checkpoint_every_
    // rows, over the *raw* packed BWT — the sentinel slot is counted as
    // its stored code 0 here and compensated once in occ().
    const std::uint32_t n_checkpoints = rows / checkpoint_every_ + 1;
    checkpoints_.assign(n_checkpoints, {});
    std::array<std::uint32_t, 4> running{};
    for (std::uint32_t i = 0; i < rows; ++i) {
        if (i % checkpoint_every_ == 0) {
            checkpoints_[i / checkpoint_every_] = running;
        }
        ++running[bwt_code(i)];
    }
    if (rows % checkpoint_every_ == 0) {
        checkpoints_[rows / checkpoint_every_] = running;
    }

    // Suffix-array samples: mark rows whose SA value is a multiple of
    // sa_sample (SA value 0 included, so locate always terminates).
    sampled_rows_ = util::BitVector(rows);
    for (std::uint32_t i = 0; i < rows; ++i) {
        if (static_cast<std::uint32_t>(sa[i]) % sa_sample_ == 0) {
            sampled_rows_.set(i);
        }
    }
    sampled_rows_.build_rank();
    samples_.reserve(sampled_rows_.count_ones());
    for (std::uint32_t i = 0; i < rows; ++i) {
        if (sampled_rows_.get(i)) {
            samples_.push_back(static_cast<std::uint32_t>(sa[i]));
        }
    }
}

std::uint32_t FmIndex::occ(std::uint8_t code,
                           std::uint32_t row) const noexcept {
    const std::uint32_t cp = row / checkpoint_every_;
    std::uint32_t count = checkpoints_[cp][code];
    std::uint32_t i = cp * checkpoint_every_;
    while (i + 32 <= row) {
        count += count_eq(bwt_[i >> 5], code, 32);
        i += 32;
    }
    if (i < row) count += count_eq(bwt_[i >> 5], code, row - i);
    // The sentinel's packed slot stores code 0; un-count it.
    if (code == 0 && sentinel_row_ < row) --count;
    return count;
}

std::uint32_t FmIndex::lf(std::uint32_t row) const noexcept {
    if (row == sentinel_row_) return 0;
    const std::uint8_t code = bwt_code(row);
    return c_[code] + occ(code, row);
}

FmIndex::Range FmIndex::extend(Range r, std::uint8_t code) const noexcept {
    return {c_[code] + occ(code, r.lo), c_[code] + occ(code, r.hi)};
}

FmIndex::Range FmIndex::search(
    std::span<const std::uint8_t> pattern) const noexcept {
    Range r = whole_range();
    for (std::size_t i = pattern.size(); i-- > 0 && !r.empty();) {
        r = extend(r, pattern[i]);
    }
    return r;
}

std::uint32_t FmIndex::locate(std::uint32_t row) const noexcept {
    std::uint32_t steps = 0;
    while (!sampled_rows_.get(row)) {
        row = lf(row);
        ++steps;
    }
    return samples_[sampled_rows_.rank1(row)] + steps;
}

void FmIndex::locate_range(Range r, std::size_t max_hits,
                           std::vector<std::uint32_t>& out) const {
    const std::size_t limit =
        std::min<std::size_t>(max_hits, r.count());
    for (std::size_t k = 0; k < limit; ++k) {
        out.push_back(locate(r.lo + static_cast<std::uint32_t>(k)));
    }
}

void FmIndex::save(std::ostream& out) const {
    util::write_magic(out, 0x464D4958u); // "FMIX"
    util::write_pod<std::uint64_t>(out, n_);
    for (const auto c : c_) util::write_pod<std::uint32_t>(out, c);
    util::write_vector(out, bwt_);
    util::write_pod<std::uint32_t>(out, sentinel_row_);
    std::vector<std::uint32_t> flat;
    flat.reserve(checkpoints_.size() * 4);
    for (const auto& cp : checkpoints_) {
        flat.insert(flat.end(), cp.begin(), cp.end());
    }
    util::write_vector(out, flat);
    util::write_pod<std::uint32_t>(out, sa_sample_);
    util::write_pod<std::uint32_t>(out, checkpoint_every_);
    sampled_rows_.save(out);
    util::write_vector(out, samples_);
}

FmIndex FmIndex::load(std::istream& in) {
    util::check_magic(in, 0x464D4958u, "FmIndex");
    FmIndex fm;
    fm.n_ = util::read_pod<std::uint64_t>(in);
    for (auto& c : fm.c_) c = util::read_pod<std::uint32_t>(in);
    fm.bwt_ = util::read_vector<std::uint64_t>(in);
    fm.sentinel_row_ = util::read_pod<std::uint32_t>(in);
    const auto flat = util::read_vector<std::uint32_t>(in);
    if (flat.size() % 4 != 0) {
        throw std::runtime_error("FmIndex: corrupt checkpoint table");
    }
    fm.checkpoints_.resize(flat.size() / 4);
    for (std::size_t i = 0; i < fm.checkpoints_.size(); ++i) {
        for (std::size_t c = 0; c < 4; ++c) {
            fm.checkpoints_[i][c] = flat[i * 4 + c];
        }
    }
    fm.sa_sample_ = util::read_pod<std::uint32_t>(in);
    fm.checkpoint_every_ = util::read_pod<std::uint32_t>(in);
    fm.sampled_rows_ = util::BitVector::load(in);
    fm.samples_ = util::read_vector<std::uint32_t>(in);
    if (fm.samples_.size() != fm.sampled_rows_.count_ones()) {
        throw std::runtime_error("FmIndex: corrupt SA samples");
    }
    return fm;
}

std::size_t FmIndex::memory_bytes() const noexcept {
    return bwt_.size() * sizeof(std::uint64_t) +
           checkpoints_.size() * sizeof(checkpoints_[0]) +
           samples_.size() * sizeof(std::uint32_t) +
           (sampled_rows_.size() + 7) / 8 + sampled_rows_.size() / 4;
}

} // namespace repute::index
