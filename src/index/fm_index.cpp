#include "index/fm_index.hpp"

#include <bit>
#include <stdexcept>

#include "index/qgram_table.hpp"
#include "index/suffix_array.hpp"
#include "util/serialize.hpp"

namespace repute::index {

namespace {

constexpr std::uint64_t kLowBits = 0x5555555555555555ULL;

/// 2-bit replication patterns for codes 0..3.
constexpr std::uint64_t kReplicate[4] = {
    0x0000000000000000ULL, kLowBits, ~kLowBits, ~0ULL};

/// Count of symbols equal to `code` among the first `m` (<=32) symbols
/// packed in `word`.
inline std::uint32_t count_eq(std::uint64_t word, std::uint8_t code,
                              std::uint32_t m) noexcept {
    const std::uint64_t x = word ^ kReplicate[code];
    const std::uint64_t diff = (x | (x >> 1)) & kLowBits;
    const std::uint64_t region =
        (m >= 32) ? ~0ULL : ((1ULL << (2 * m)) - 1);
    return static_cast<std::uint32_t>(
        std::popcount(~diff & kLowBits & region));
}

// v1 stored checkpoints and BWT as separate arrays; v2 is the
// interleaved-block layout (on disk: flat BWT, blocks rebuilt on load).
constexpr std::uint32_t kMagicV1 = 0x464D4958u; // "FMIX"
constexpr std::uint32_t kMagicV2 = 0x464D4932u; // "FMI2"

thread_local std::uint64_t tls_occ_words = 0;

} // namespace

FmIndex::FmIndex(FmIndex&&) noexcept = default;
FmIndex& FmIndex::operator=(FmIndex&&) noexcept = default;
FmIndex::~FmIndex() = default;

void FmIndex::validate_geometry() const {
    if (checkpoint_every_ < 32 ||
        (checkpoint_every_ & (checkpoint_every_ - 1)) != 0) {
        throw std::invalid_argument(
            "FmIndex: checkpoint_every must be a power of two >= 32");
    }
    if (qgram_length_ > QGramTable::kMaxQ) {
        throw std::invalid_argument(
            "FmIndex: qgram_length exceeds QGramTable::kMaxQ");
    }
}

FmIndex::FmIndex(const genomics::Reference& reference,
                 std::uint32_t sa_sample, std::uint32_t checkpoint_every,
                 std::uint32_t qgram_length)
    : n_(reference.size()), sa_sample_(sa_sample == 0 ? 1 : sa_sample),
      checkpoint_every_(checkpoint_every), qgram_length_(qgram_length) {
    validate_geometry();
    const auto& text = reference.sequence();
    const auto sa = build_suffix_array(text); // n+1 rows, SA[0] == n
    const auto n_rows = static_cast<std::uint32_t>(sa.size());

    // C array: sentinel sorts before everything and occupies one row.
    std::array<std::uint32_t, 4> counts{};
    for (std::size_t i = 0; i < n_; ++i) ++counts[text.code_at(i)];
    c_[0] = 1;
    for (int c = 1; c <= 4; ++c) {
        c_[static_cast<std::size_t>(c)] =
            c_[static_cast<std::size_t>(c - 1)] +
            counts[static_cast<std::size_t>(c - 1)];
    }

    // BWT[i] = text[SA[i] - 1]; the row with SA[i] == 0 holds the
    // sentinel, which we record separately (its packed slot stores 0).
    std::vector<std::uint64_t> flat((n_rows + 31) / 32, 0);
    for (std::uint32_t i = 0; i < n_rows; ++i) {
        std::uint8_t code = 0;
        if (sa[i] == 0) {
            sentinel_row_ = i;
        } else {
            code = text.code_at(static_cast<std::size_t>(sa[i]) - 1);
        }
        flat[i >> 5] |= static_cast<std::uint64_t>(code) << ((i & 31) * 2);
    }
    build_blocks(flat);

    // Suffix-array samples: mark rows whose SA value is a multiple of
    // sa_sample (SA value 0 included, so locate always terminates).
    sampled_rows_ = util::BitVector(n_rows);
    for (std::uint32_t i = 0; i < n_rows; ++i) {
        if (static_cast<std::uint32_t>(sa[i]) % sa_sample_ == 0) {
            sampled_rows_.set(i);
        }
    }
    sampled_rows_.build_rank();
    owned_samples_.reserve(sampled_rows_.count_ones());
    for (std::uint32_t i = 0; i < n_rows; ++i) {
        if (sampled_rows_.get(i)) {
            owned_samples_.push_back(static_cast<std::uint32_t>(sa[i]));
        }
    }
    samples_ = owned_samples_;

    build_qgrams();
}

void FmIndex::derive_geometry() {
    words_per_block_ = checkpoint_every_ / 32;
    log2_cpe_ = static_cast<std::uint32_t>(
        std::countr_zero(checkpoint_every_));
    // u8 prefix counts cap at cpe - 32 = 224 symbols, so they need
    // cpe <= 256; wider spacings fall back to the word-scan occ path.
    has_sub_counts_ = checkpoint_every_ <= 256;
    sub_base_ = 2 + words_per_block_;
    const std::uint32_t sub_words =
        has_sub_counts_ ? (words_per_block_ * 4 + 7) / 8 : 0;
    stride_words_ = (sub_base_ + sub_words + 7u) & ~7u;
}

std::size_t FmIndex::rank_words_for(std::uint64_t n,
                                    std::uint32_t checkpoint_every) {
    FmIndex probe;
    probe.n_ = n;
    probe.checkpoint_every_ = checkpoint_every;
    probe.validate_geometry();
    probe.derive_geometry();
    const std::uint32_t n_blocks =
        probe.rows() / checkpoint_every + 1;
    return static_cast<std::size_t>(n_blocks) * probe.stride_words_;
}

FmIndex FmIndex::from_view(const ViewGeometry& geometry,
                           std::span<const std::uint64_t> rank_words,
                           std::span<const std::uint64_t> sa_mark_words,
                           std::span<const std::uint32_t> sa_samples,
                           std::span<const Range> qgram_ranges) {
    FmIndex fm;
    fm.n_ = geometry.n;
    fm.c_ = geometry.c;
    fm.sentinel_row_ = geometry.sentinel_row;
    fm.sa_sample_ = geometry.sa_sample == 0 ? 1 : geometry.sa_sample;
    fm.checkpoint_every_ = geometry.checkpoint_every;
    fm.qgram_length_ = geometry.qgram_length;
    fm.validate_geometry();
    fm.derive_geometry();

    if (rank_words.size() !=
        rank_words_for(fm.n_, fm.checkpoint_every_)) {
        throw std::runtime_error(
            "FmIndex: view rank-block word count mismatch");
    }
    if (reinterpret_cast<std::uintptr_t>(rank_words.data()) %
            alignof(Line) !=
        0) {
        throw std::runtime_error(
            "FmIndex: view rank blocks not 64-byte aligned");
    }
    fm.lines_ = reinterpret_cast<const Line*>(rank_words.data());
    fm.line_count_ = rank_words.size() / (sizeof(Line) / sizeof(std::uint64_t));

    fm.sampled_rows_ =
        util::BitVector::view_of(sa_mark_words, fm.rows());
    if (sa_samples.size() != fm.sampled_rows_.count_ones()) {
        throw std::runtime_error(
            "FmIndex: view SA sample count mismatch");
    }
    fm.samples_ = sa_samples;

    if (fm.qgram_length_ > 0) {
        fm.qgrams_ = std::make_unique<QGramTable>(
            QGramTable::view_of(fm.qgram_length_, qgram_ranges));
    } else if (!qgram_ranges.empty()) {
        throw std::runtime_error(
            "FmIndex: view has q-gram ranges but qgram_length is 0");
    }
    fm.view_ = true;
    return fm;
}

void FmIndex::build_blocks(std::span<const std::uint64_t> flat_bwt) {
    derive_geometry();

    // One trailing block so occ(rows()) lands on a stored checkpoint.
    const std::uint32_t n_blocks = rows() / checkpoint_every_ + 1;
    owned_lines_.assign(
        static_cast<std::size_t>(n_blocks) * (stride_words_ / 8), Line{});
    lines_ = owned_lines_.data();
    line_count_ = owned_lines_.size();

    // Counts are over the *raw* packed BWT — the sentinel slot counts as
    // its stored code 0 here and is compensated once in occ().
    std::array<std::uint32_t, 4> running{};
    for (std::uint32_t b = 0; b < n_blocks; ++b) {
        std::uint64_t* blk = mutable_block_words(b);
        blk[0] = running[0] |
                 (static_cast<std::uint64_t>(running[1]) << 32);
        blk[1] = running[2] |
                 (static_cast<std::uint64_t>(running[3]) << 32);
        std::array<std::uint32_t, 4> in_block{};
        for (std::uint32_t w = 0; w < words_per_block_; ++w) {
            if (has_sub_counts_) {
                for (std::uint32_t c = 0; c < 4; ++c) {
                    const std::uint32_t byte = w * 4 + c;
                    blk[sub_base_ + (byte >> 3)] |=
                        static_cast<std::uint64_t>(in_block[c] & 0xFFu)
                        << ((byte & 7u) * 8);
                }
            }
            const std::size_t g =
                static_cast<std::size_t>(b) * words_per_block_ + w;
            const std::uint64_t word = g < flat_bwt.size() ? flat_bwt[g] : 0;
            blk[2 + w] = word;
            for (std::uint32_t c = 0; c < 4; ++c) {
                const std::uint32_t k =
                    count_eq(word, static_cast<std::uint8_t>(c), 32);
                in_block[c] += k;
                running[c] += k;
            }
        }
    }
}

std::vector<std::uint64_t> FmIndex::flat_bwt() const {
    std::vector<std::uint64_t> flat((rows() + 31) / 32);
    for (std::size_t g = 0; g < flat.size(); ++g) {
        const auto b = static_cast<std::uint32_t>(g / words_per_block_);
        const auto w = static_cast<std::uint32_t>(g % words_per_block_);
        flat[g] = block_words(b)[2 + w];
    }
    return flat;
}

void FmIndex::build_qgrams() {
    if (qgram_length_ == 0) return;
    // Effective q is capped so the table never outweighs the text it
    // indexes (~n bytes, with a 4 KiB floor so tiny references still
    // get a few levels): device images ship reference + index + table,
    // and the table's marginal value vanishes past distinct-substring
    // saturation anyway.
    const std::size_t budget = std::max<std::size_t>(n_, 4096);
    std::uint32_t q = qgram_length_;
    // Clamp q to the text length too: a tail shard from a contig-granular
    // split can be shorter than q, and a jump table of patterns longer
    // than the text is all-empty — pure footprint, zero jumps.
    while (q > 0 && (QGramTable::table_bytes(q) > budget || q > n_)) --q;
    if (q > 0) qgrams_ = std::make_unique<QGramTable>(*this, q);
}

std::uint32_t FmIndex::occ(std::uint8_t code,
                           std::uint32_t row) const noexcept {
    const std::uint64_t* blk = block_words(row >> log2_cpe_);
    const std::uint32_t r = row & (checkpoint_every_ - 1);
    const std::uint32_t w = r >> 5;
    std::uint32_t count = static_cast<std::uint32_t>(
        blk[code >> 1] >> ((code & 1u) * 32));
    if (has_sub_counts_) {
        const std::uint32_t byte = w * 4 + code;
        count += static_cast<std::uint32_t>(
                     blk[sub_base_ + (byte >> 3)] >> ((byte & 7u) * 8)) &
                 0xFFu;
        count += count_eq(blk[2 + w], code, r & 31u);
        tls_occ_words += 1;
    } else {
        for (std::uint32_t i = 0; i < w; ++i) {
            count += count_eq(blk[2 + i], code, 32);
        }
        count += count_eq(blk[2 + w], code, r & 31u);
        tls_occ_words += w + 1;
    }
    // The sentinel's packed slot stores code 0; un-count it.
    if (code == 0 && sentinel_row_ < row) --count;
    return count;
}

std::uint64_t FmIndex::thread_occ_words() noexcept { return tls_occ_words; }

std::uint32_t FmIndex::lf(std::uint32_t row) const noexcept {
    if (row == sentinel_row_) return 0;
    const std::uint8_t code = bwt_code(row);
    return c_[code] + occ(code, row);
}

FmIndex::Range FmIndex::extend(Range r, std::uint8_t code) const noexcept {
    return {c_[code] + occ(code, r.lo), c_[code] + occ(code, r.hi)};
}

FmIndex::Range FmIndex::search(
    std::span<const std::uint8_t> pattern) const noexcept {
    Range r = whole_range();
    for (std::size_t i = pattern.size(); i-- > 0 && !r.empty();) {
        r = extend(r, pattern[i]);
    }
    return r;
}

std::uint32_t FmIndex::locate(std::uint32_t row) const noexcept {
    std::uint32_t steps = 0;
    while (!sampled_rows_.get(row)) {
        row = lf(row);
        ++steps;
    }
    return samples_[sampled_rows_.rank1(row)] + steps;
}

void FmIndex::locate_range(Range r, std::size_t max_hits,
                           std::vector<std::uint32_t>& out) const {
    const std::size_t limit =
        std::min<std::size_t>(max_hits, r.count());
    for (std::size_t k = 0; k < limit; ++k) {
        out.push_back(locate(r.lo + static_cast<std::uint32_t>(k)));
    }
}

void FmIndex::save(std::ostream& out) const {
    util::write_magic(out, kMagicV2);
    util::write_pod<std::uint64_t>(out, n_);
    for (const auto c : c_) util::write_pod<std::uint32_t>(out, c);
    util::write_vector(out, flat_bwt());
    util::write_pod<std::uint32_t>(out, sentinel_row_);
    util::write_pod<std::uint32_t>(out, sa_sample_);
    util::write_pod<std::uint32_t>(out, checkpoint_every_);
    util::write_pod<std::uint32_t>(out, qgram_length_);
    sampled_rows_.save(out);
    util::write_span(out, samples_);
}

FmIndex FmIndex::load(std::istream& in) {
    const auto magic = util::read_pod<std::uint32_t>(in);
    if (magic == kMagicV1) {
        throw std::runtime_error(
            "FmIndex: legacy FMIX image (pre-interleaved layout) — "
            "rebuild the index with this binary");
    }
    if (magic != kMagicV2) {
        throw std::runtime_error("serialize: bad magic for FmIndex");
    }
    FmIndex fm;
    fm.n_ = util::read_pod<std::uint64_t>(in);
    for (auto& c : fm.c_) c = util::read_pod<std::uint32_t>(in);
    const auto flat = util::read_vector<std::uint64_t>(in);
    fm.sentinel_row_ = util::read_pod<std::uint32_t>(in);
    fm.sa_sample_ = util::read_pod<std::uint32_t>(in);
    fm.checkpoint_every_ = util::read_pod<std::uint32_t>(in);
    fm.qgram_length_ = util::read_pod<std::uint32_t>(in);
    fm.validate_geometry();
    if (flat.size() != (fm.rows() + 31) / 32) {
        throw std::runtime_error("FmIndex: corrupt BWT payload");
    }
    fm.build_blocks(flat);
    fm.sampled_rows_ = util::BitVector::load(in);
    fm.owned_samples_ = util::read_vector<std::uint32_t>(in);
    fm.samples_ = fm.owned_samples_;
    if (fm.samples_.size() != fm.sampled_rows_.count_ones()) {
        throw std::runtime_error("FmIndex: corrupt SA samples");
    }
    fm.build_qgrams();
    return fm;
}

std::size_t FmIndex::memory_bytes() const noexcept {
    return line_count_ * sizeof(Line) + sizeof(c_) +
           samples_.size() * sizeof(std::uint32_t) +
           sampled_rows_.memory_bytes() +
           (qgrams_ ? qgrams_->memory_bytes() : 0);
}

std::size_t FmIndex::mapped_bytes() const noexcept {
    if (!view_) return 0;
    // Everything borrowed from the .rix mapping: the rank-block image,
    // the sampled-row bit words, the SA samples, and the q-gram range
    // array. The rebuilt rank directories and level offsets stay heap.
    return line_count_ * sizeof(Line) +
           samples_.size() * sizeof(std::uint32_t) +
           (sampled_rows_.memory_bytes() - sampled_rows_.heap_bytes()) +
           (qgrams_ ? qgrams_->memory_bytes() - qgrams_->heap_bytes()
                    : 0);
}

} // namespace repute::index
