#include "index/shard_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "index/fm_index.hpp"
#include "index/qgram_table.hpp"

namespace repute::index {

namespace {

/// Owned bp of contigs [first, last) given their boundary table.
std::uint64_t span_bp(const std::vector<std::uint32_t>& starts,
                      std::size_t first, std::size_t last) {
    return starts[last] - starts[first];
}

/// True when contigs can be packed into at most `k` contiguous groups
/// of owned length <= `cap` each (greedy check; optimal for contiguous
/// partitions).
bool fits(const std::vector<std::uint32_t>& starts, std::size_t n,
          std::uint32_t k, std::uint64_t cap) {
    std::uint32_t groups = 1;
    std::uint64_t current = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t len = span_bp(starts, i, i + 1);
        if (len > cap) return false;
        if (current + len > cap) {
            if (++groups > k) return false;
            current = 0;
        }
        current += len;
    }
    return true;
}

} // namespace

std::uint64_t estimate_index_bytes(std::uint64_t bp,
                                   std::uint32_t sa_sample,
                                   std::uint32_t checkpoint_every,
                                   std::uint32_t qgram_length) {
    const std::uint64_t rows = bp + 1;
    std::uint64_t bytes =
        FmIndex::rank_words_for(bp, checkpoint_every) * 8;
    bytes += 5 * sizeof(std::uint32_t); // C array
    // Sampled SA values plus the mark bit-vector (rank directories add
    // ~3% of the bit words; fold them into the word count).
    const std::uint64_t samples =
        (rows + sa_sample - 1) / std::max<std::uint32_t>(sa_sample, 1);
    bytes += samples * sizeof(std::uint32_t);
    const std::uint64_t mark_words = (rows + 63) / 64;
    bytes += mark_words * 8 + mark_words / 4;
    // Q-gram table after the same clamp FmIndex::build_qgrams applies.
    const std::uint64_t table_budget = std::max<std::uint64_t>(bp, 4096);
    std::uint32_t q = std::min(qgram_length, QGramTable::kMaxQ);
    while (q > 0 &&
           (QGramTable::table_bytes(q) > table_budget || q > bp)) {
        --q;
    }
    if (q > 0) bytes += QGramTable::table_bytes(q);
    // 2-bit packed reference text (the kernel verifies windows against
    // it, so it ships with the index image).
    bytes += ((bp + 31) / 32) * 8;
    return bytes;
}

ShardPlan plan_shards(const genomics::MultiReference& multi,
                      const ShardPlanConfig& config) {
    const std::vector<std::uint32_t>& starts = multi.starts();
    const std::size_t n = multi.sequence_count();
    if (config.shard_count == 0 && config.budget_bytes == 0) {
        throw std::invalid_argument(
            "shard plan: need a shard count or a byte budget");
    }

    const auto estimate = [&](std::uint64_t owned_bp) {
        // Conservative: assume both overhangs even though the edge
        // shards drop one each.
        return estimate_index_bytes(
            owned_bp + 2ull * config.overlap, config.sa_sample,
            config.checkpoint_every, config.qgram_length);
    };

    // Decide group boundaries (contiguous runs of contigs).
    std::vector<std::size_t> breaks; // group ends, exclusive
    if (config.shard_count > 0) {
        const std::uint32_t k = static_cast<std::uint32_t>(
            std::min<std::size_t>(config.shard_count, n));
        // Binary-search the minmax owned-length capacity, then place
        // greedy cuts at that capacity.
        std::uint64_t lo = 0, hi = span_bp(starts, 0, n);
        for (std::size_t i = 0; i < n; ++i) {
            lo = std::max(lo, span_bp(starts, i, i + 1));
        }
        while (lo < hi) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            if (fits(starts, n, k, mid)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        const std::uint64_t cap = lo;
        std::uint64_t current = 0;
        std::uint32_t groups_left = k;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t len = span_bp(starts, i, i + 1);
            // Keep enough contigs for the remaining groups: never close
            // a group when the tail could not fill the rest.
            const std::size_t tail = n - i;
            if (current > 0 &&
                (current + len > cap || tail < groups_left)) {
                breaks.push_back(i);
                --groups_left;
                current = 0;
            }
            current += len;
        }
        breaks.push_back(n);
        if (config.budget_bytes > 0) {
            for (std::size_t g = 0; g < breaks.size(); ++g) {
                const std::size_t first = g == 0 ? 0 : breaks[g - 1];
                const std::uint64_t bp = span_bp(starts, first, breaks[g]);
                if (estimate(bp) > config.budget_bytes) {
                    throw std::invalid_argument(
                        "shard plan: " + std::to_string(breaks.size()) +
                        " shards cannot meet the per-shard budget of " +
                        std::to_string(config.budget_bytes) +
                        " bytes — raise --shards or the budget");
                }
            }
        }
    } else {
        // Budget-driven greedy packing.
        std::uint64_t current = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t len = span_bp(starts, i, i + 1);
            if (estimate(len) > config.budget_bytes) {
                throw std::invalid_argument(
                    "shard plan: contig '" + multi.sequence_name(i) +
                    "' (" + std::to_string(len) +
                    " bp) alone exceeds the per-shard budget of " +
                    std::to_string(config.budget_bytes) +
                    " bytes — contigs are never split");
            }
            if (current > 0 && estimate(current + len) >
                                   config.budget_bytes) {
                breaks.push_back(i);
                current = 0;
            }
            current += len;
        }
        breaks.push_back(n);
    }

    ShardPlan plan;
    plan.overlap = config.overlap;
    const std::uint32_t total = starts.back();
    for (std::size_t g = 0; g < breaks.size(); ++g) {
        const std::size_t first = g == 0 ? 0 : breaks[g - 1];
        ShardSpec spec;
        spec.index = static_cast<std::uint32_t>(g);
        spec.first_sequence = static_cast<std::uint32_t>(first);
        spec.sequence_count =
            static_cast<std::uint32_t>(breaks[g] - first);
        spec.base = starts[first];
        spec.owned_length = starts[breaks[g]] - starts[first];
        spec.left_overlap = std::min<std::uint32_t>(
            config.overlap, spec.base);
        spec.right_overlap = std::min<std::uint32_t>(
            config.overlap, total - (spec.base + spec.owned_length));
        plan.shards.push_back(spec);
        plan.max_estimated_bytes = std::max(
            plan.max_estimated_bytes,
            estimate_index_bytes(spec.text_length(), config.sa_sample,
                                 config.checkpoint_every,
                                 config.qgram_length));
    }
    return plan;
}

} // namespace repute::index
