#pragma once
// .rix — the mappable index container (tentpole of the serving stack).
//
// The iostream FMI2 image optimizes for compactness: it stores the flat
// BWT and rebuilds the interleaved rank blocks and q-gram table on every
// load, which costs a construction-shaped burst of CPU and doubles peak
// memory. A daemon that holds one index resident for hours wants the
// opposite trade: pay layout cost once at `repute index build` time and
// make loads O(sections) — open, checksum, point spans at the mapping.
//
// Layout (little-endian only; the header carries an endian tag so a
// foreign-order file is rejected, not misread):
//
//   page 0:        RixHeader (magic "RIX2", version, endian tag, FmIndex
//                  geometry, reference length, section table, FNV-1a
//                  checksum of the header bytes)
//   section k:     raw array bytes, each starting on a 4096-byte page
//                  boundary (=> 64-byte alignment for the rank blocks
//                  under any page-aligned mmap base), zero-padded to the
//                  next page. Every section carries its own FNV-1a 64
//                  checksum in the header table; load verifies all of
//                  them before any span is handed out.
//
// Sections, in file order:
//   RankBlocks   FmIndex interleaved rank-block image (u64 words)
//   SaMarkBits   sampled-row bit words (rank dirs rebuilt on load)
//   SaSamples    SA values at marked rows (u32)
//   QgramRanges  jump-table ranges (2 x u32 each; empty when q = 0)
//   RefWords     2-bit packed reference text (u64 words)
//   SeqNames     string blob: concatenated-reference name, then one
//                name per sequence (u64 count + u64 len + bytes each)
//   SeqStarts    sequence boundaries (u32, sequence_count + 1 entries)
//
// Legacy "FMIX"/"FMI2" stream images and truncated or bit-flipped files
// fail with distinct, actionable errors (test_rix.cpp pins them).

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "genomics/multi_reference.hpp"
#include "index/fm_index.hpp"
#include "util/mmap_file.hpp"

namespace repute::index {

namespace rix {

constexpr std::uint32_t kMagic = 0x52495832u; // "RIX2"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kPageBytes = 4096;

enum SectionId : std::uint32_t {
    kRankBlocks = 0,
    kSaMarkBits = 1,
    kSaSamples = 2,
    kQgramRanges = 3,
    kRefWords = 4,
    kSeqNames = 5,
    kSeqStarts = 6,
    kSectionCount = 7,
};

struct Section {
    std::uint64_t offset = 0; ///< from file start; page-aligned
    std::uint64_t bytes = 0;  ///< payload bytes (before page padding)
    std::uint64_t checksum = 0; ///< FNV-1a 64 over the payload bytes
};

struct Header {
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint32_t endian = kEndianTag;
    std::uint32_t page_bytes = kPageBytes;
    std::uint64_t file_bytes = 0;
    // FmIndex geometry (qgram_length is the *effective* q after the
    // table-budget cap, so the view rebuilds nothing).
    std::uint64_t text_length = 0;
    std::array<std::uint32_t, 5> c{};
    std::uint32_t sentinel_row = 0;
    std::uint32_t sa_sample = 1;
    std::uint32_t checkpoint_every = 128;
    std::uint32_t qgram_length = 0;
    std::uint64_t sequence_count = 0;
    std::array<Section, kSectionCount> sections{};
    std::uint64_t header_checksum = 0; ///< FNV-1a with this field zeroed
};
static_assert(std::is_trivially_copyable_v<Header>);

/// Reads and validates just the header of a .rix container (magic,
/// version, endian, checksum) without mapping the sections — what the
/// .rixm manifest layer uses to pin shard identity. Throws
/// std::runtime_error with the same distinct messages as
/// MappedIndex::open for each failure mode.
Header read_header(const std::string& path);

} // namespace rix

/// Writes `multi` + its built FmIndex as a .rix container at `path`
/// (atomic: written to `path + ".tmp"`, then renamed). Throws
/// std::runtime_error on I/O failure.
void write_rix(const std::string& path,
               const genomics::MultiReference& multi, const FmIndex& fm);

/// A .rix container mapped into the process: owns the mapping, a view
/// FmIndex and a view-backed MultiReference whose big arrays all point
/// into it. Move-only; the accessors stay valid for the object's
/// lifetime (spans into the mapping die with it).
class MappedIndex {
public:
    /// Maps and validates `path`: magic/version/endian/size checks,
    /// then FNV-1a verification of the header and every section, then
    /// zero-copy view construction. Throws std::runtime_error with a
    /// distinct message per failure mode; legacy FMIX/FMI2 stream
    /// images are recognized and reported as such.
    static MappedIndex open(const std::string& path);

    MappedIndex(MappedIndex&&) noexcept = default;
    MappedIndex& operator=(MappedIndex&&) noexcept = default;

    const FmIndex& fm() const noexcept { return *fm_; }
    const genomics::MultiReference& multi() const noexcept {
        return *multi_;
    }
    const std::string& path() const noexcept { return path_; }

    /// Bytes of the file mapping (shared, demand-paged, evictable).
    std::size_t mapped_bytes() const noexcept { return map_.size(); }

    /// Private heap actually owned: rebuilt rank directories, name and
    /// boundary tables — the true resident cost of holding the index.
    std::size_t resident_bytes() const noexcept;

private:
    MappedIndex() = default;

    util::MmapFile map_;
    std::string path_;
    // unique_ptrs keep the spans inside fm_/multi_ stable across moves
    // of the MappedIndex itself.
    std::unique_ptr<FmIndex> fm_;
    std::unique_ptr<genomics::MultiReference> multi_;
};

} // namespace repute::index
