#include "index/rixm.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "index/fm_index.hpp"
#include "util/threadpool.hpp"

namespace repute::index {

namespace {

constexpr std::string_view kMagicLine = "RIXM";

std::string manifest_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string{}
                                      : path.substr(0, slash + 1);
}

std::string basename_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// manifest stem: path minus a trailing ".rixm" (kept whole otherwise).
std::string manifest_stem(const std::string& path) {
    constexpr std::string_view ext = ".rixm";
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
        return path.substr(0, path.size() - ext.size());
    }
    return path;
}

[[noreturn]] void malformed(const std::string& path,
                            const std::string& detail) {
    throw std::runtime_error("rixm: " + path + ": malformed manifest (" +
                             detail + ")");
}

/// Splits one manifest line on tabs.
std::vector<std::string> fields_of(const std::string& line) {
    std::vector<std::string> fields;
    std::size_t from = 0;
    while (true) {
        const std::size_t tab = line.find('\t', from);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(from));
            return fields;
        }
        fields.push_back(line.substr(from, tab - from));
        from = tab + 1;
    }
}

std::uint64_t parse_u64(const std::string& path, const std::string& s) {
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(s, &used);
        if (used != s.size()) malformed(path, "bad number '" + s + "'");
        return v;
    } catch (const std::invalid_argument&) {
        malformed(path, "bad number '" + s + "'");
    } catch (const std::out_of_range&) {
        malformed(path, "bad number '" + s + "'");
    }
}

std::string hex_of(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

bool is_rixm_manifest(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    char head[5] = {};
    in.read(head, sizeof(head));
    return in.gcount() >= 4 &&
           std::string_view(head, 4) == kMagicLine &&
           (in.gcount() == 4 || head[4] == '\t' || head[4] == '\n');
}

ShardedIndex ShardedIndex::open(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("rixm: cannot open " + path);
    }

    std::vector<std::vector<std::string>> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        lines.push_back(fields_of(line));
    }
    if (lines.empty() || lines[0].empty() || lines[0][0] != kMagicLine) {
        malformed(path, "missing RIXM magic line");
    }
    if (lines[0].size() != 2) malformed(path, "bad magic line");
    const std::uint64_t version = parse_u64(path, lines[0][1]);
    if (version != rixm::kVersion) {
        throw std::runtime_error(
            "rixm: " + path + " has unsupported manifest version " +
            std::to_string(version) + " (expected " +
            std::to_string(rixm::kVersion) + ")");
    }

    ShardedIndex si;
    si.path_ = path;
    std::string combined_name;
    std::vector<std::string> names;
    std::vector<std::uint32_t> starts{0};
    struct ShardLine {
        std::string rel;
        std::uint32_t text_offset, left, owned, right;
        std::uint64_t checksum;
    };
    std::vector<ShardLine> shard_lines;
    std::size_t expect_sequences = 0, expect_shards = 0;

    for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto& f = lines[i];
        if (f[0] == "name" && f.size() == 2) {
            combined_name = f[1];
        } else if (f[0] == "overlap" && f.size() == 2) {
            si.overlap_ = static_cast<std::uint32_t>(parse_u64(path, f[1]));
        } else if (f[0] == "sequences" && f.size() == 2) {
            expect_sequences = parse_u64(path, f[1]);
        } else if (f[0] == "seq" && f.size() == 3) {
            names.push_back(f[1]);
            const std::uint64_t len = parse_u64(path, f[2]);
            if (len == 0) malformed(path, "empty sequence " + f[1]);
            starts.push_back(starts.back() +
                             static_cast<std::uint32_t>(len));
        } else if (f[0] == "shards" && f.size() == 2) {
            expect_shards = parse_u64(path, f[1]);
        } else if (f[0] == "shard" && f.size() == 8) {
            if (parse_u64(path, f[1]) != shard_lines.size()) {
                malformed(path, "shard lines out of order");
            }
            ShardLine s;
            s.rel = f[2];
            s.text_offset =
                static_cast<std::uint32_t>(parse_u64(path, f[3]));
            s.left = static_cast<std::uint32_t>(parse_u64(path, f[4]));
            s.owned = static_cast<std::uint32_t>(parse_u64(path, f[5]));
            s.right = static_cast<std::uint32_t>(parse_u64(path, f[6]));
            s.checksum = std::stoull(f[7], nullptr, 16);
            shard_lines.push_back(std::move(s));
        } else {
            malformed(path, "unrecognized line '" + f[0] + "'");
        }
    }
    if (names.empty() || names.size() != expect_sequences) {
        malformed(path, "sequence count mismatch");
    }
    if (shard_lines.empty() || shard_lines.size() != expect_shards) {
        malformed(path, "shard count mismatch");
    }
    const std::uint32_t total = starts.back();
    std::uint32_t cursor = 0;
    for (const ShardLine& s : shard_lines) {
        if (s.text_offset + s.left != cursor || s.owned == 0) {
            malformed(path, "shard owned ranges do not tile the text");
        }
        cursor += s.owned;
    }
    if (cursor != total) {
        malformed(path, "shard owned ranges do not cover the text");
    }

    // Map and validate every shard.
    const std::string dir = manifest_dir(path);
    for (std::size_t i = 0; i < shard_lines.size(); ++i) {
        const ShardLine& sl = shard_lines[i];
        const std::string shard_path =
            (!sl.rel.empty() && sl.rel.front() == '/') ? sl.rel
                                                       : dir + sl.rel;
        const std::string ctx = "rixm: " + path + " shard " +
                                std::to_string(i) + ": ";
        if (std::ifstream probe(shard_path, std::ios::binary); !probe) {
            throw std::runtime_error(
                ctx + "missing shard file " + shard_path +
                " — restore it or re-run `repute index build --shards`");
        }
        rix::Header header;
        try {
            header = rix::read_header(shard_path);
        } catch (const std::runtime_error& e) {
            // Keep the distinct per-mode .rix message (bad magic,
            // version skew, foreign endian, ...) but name the shard.
            throw std::runtime_error(ctx + e.what());
        }
        if (header.header_checksum != sl.checksum) {
            throw std::runtime_error(
                ctx + shard_path +
                " does not match the manifest (header checksum "
                "mismatch) — the shard was rebuilt without its "
                "manifest; re-run `repute index build --shards`");
        }
        auto mapped = [&]() -> MappedIndex {
            try {
                return MappedIndex::open(shard_path);
            } catch (const std::runtime_error& e) {
                throw std::runtime_error(ctx + e.what());
            }
        }();
        Shard shard{std::move(mapped), sl.text_offset, sl.left, sl.owned,
                    sl.right};
        const std::uint64_t expect_len =
            std::uint64_t{sl.left} + sl.owned + sl.right;
        if (shard.mapped.fm().size() != expect_len) {
            throw std::runtime_error(
                ctx + shard_path + " text length " +
                std::to_string(shard.mapped.fm().size()) +
                " disagrees with the manifest (" +
                std::to_string(expect_len) + ")");
        }
        si.shards_.push_back(std::move(shard));
    }

    // Reassemble the combined reference from the owned regions — the
    // emitter, paired-end scorer and accuracy protocols all want real
    // contig names over one concatenated text. O(n) once at open.
    std::vector<std::uint8_t> codes(total);
    for (const Shard& s : si.shards_) {
        s.mapped.multi().concatenated().sequence().extract(
            s.own_lo(), s.owned_length, codes.data() + s.base());
    }
    genomics::Reference combined(
        combined_name.empty() ? "multi" : combined_name,
        util::PackedDna(std::span<const std::uint8_t>(codes)));
    si.multi_ = std::make_unique<genomics::MultiReference>(
        std::move(combined), std::move(names), std::move(starts));
    return si;
}

std::size_t ShardedIndex::mapped_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const Shard& s : shards_) bytes += s.mapped.mapped_bytes();
    return bytes;
}

std::size_t ShardedIndex::resident_bytes() const noexcept {
    std::size_t bytes =
        multi_->concatenated().sequence().memory_bytes();
    for (const Shard& s : shards_) bytes += s.mapped.resident_bytes();
    return bytes;
}

ShardBuildResult build_sharded_index(const genomics::MultiReference& multi,
                                     const std::string& manifest_path,
                                     const ShardBuildConfig& config) {
    ShardBuildResult result;
    result.manifest_path = manifest_path;
    result.plan = plan_shards(multi, config.plan);
    const std::string stem = manifest_stem(manifest_path);
    for (const ShardSpec& spec : result.plan.shards) {
        result.shard_paths.push_back(stem + "." +
                                     std::to_string(spec.index) + ".rix");
    }

    // Shard builds are independent (each owns its text slice, suffix
    // array, rank blocks, q-gram table and output file) — embarrassingly
    // parallel across `jobs` workers.
    const std::uint32_t jobs = std::max<std::uint32_t>(config.jobs, 1);
    util::ThreadPool pool(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    pool.parallel_for(result.plan.shards.size(), [&](std::size_t i) {
        const ShardSpec& spec = result.plan.shards[i];
        std::vector<std::uint8_t> codes(spec.text_length());
        multi.concatenated().sequence().extract(
            spec.text_offset(), spec.text_length(), codes.data());
        genomics::Reference slice(
            "shard" + std::to_string(spec.index),
            util::PackedDna(std::span<const std::uint8_t>(codes)));
        FmIndex fm(slice, config.plan.sa_sample,
                   config.plan.checkpoint_every, config.plan.qgram_length);
        genomics::MultiReference single(std::move(slice));
        write_rix(result.shard_paths[i], single, fm);
    });
    result.build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Manifest last, atomically: a crash mid-build leaves shard files
    // but no manifest — nothing ever opens a half-built set.
    std::ostringstream out;
    out << kMagicLine << '\t' << rixm::kVersion << '\n';
    out << "name\t" << multi.concatenated().name() << '\n';
    out << "overlap\t" << result.plan.overlap << '\n';
    out << "sequences\t" << multi.sequence_count() << '\n';
    for (std::size_t i = 0; i < multi.sequence_count(); ++i) {
        out << "seq\t" << multi.sequence_name(i) << '\t'
            << multi.sequence_length(i) << '\n';
    }
    out << "shards\t" << result.plan.shards.size() << '\n';
    for (std::size_t i = 0; i < result.plan.shards.size(); ++i) {
        const ShardSpec& spec = result.plan.shards[i];
        const rix::Header header =
            rix::read_header(result.shard_paths[i]);
        out << "shard\t" << spec.index << '\t'
            << basename_of(result.shard_paths[i]) << '\t'
            << spec.text_offset() << '\t' << spec.left_overlap << '\t'
            << spec.owned_length << '\t' << spec.right_overlap << '\t'
            << hex_of(header.header_checksum) << '\n';
    }
    const std::string tmp = manifest_path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        if (!file) {
            throw std::runtime_error("rixm: cannot open " + tmp +
                                     " for writing");
        }
        file << out.str();
        if (!file) {
            throw std::runtime_error("rixm: short write to " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), manifest_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("rixm: cannot rename " + tmp + " to " +
                                 manifest_path);
    }
    return result;
}

} // namespace repute::index
