#include "index/suffix_array.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace repute::index {

namespace {

// SA-IS core. Types: S-type suffix (smaller than its right neighbour),
// L-type (larger). LMS = leftmost S-type positions. Induced sorting
// places LMS suffixes, induces L from them, then S from L.

/// is_s[i] == true when suffix i is S-type.
std::vector<bool> classify(std::span<const std::int32_t> text) {
    const std::size_t n = text.size();
    std::vector<bool> is_s(n, false);
    is_s[n - 1] = true; // sentinel is S by definition
    for (std::size_t i = n - 1; i-- > 0;) {
        is_s[i] = text[i] < text[i + 1] ||
                  (text[i] == text[i + 1] && is_s[i + 1]);
    }
    return is_s;
}

bool is_lms(const std::vector<bool>& is_s, std::size_t i) {
    return i > 0 && is_s[i] && !is_s[i - 1];
}

/// Bucket start (heads=true) or end (heads=false) offsets per symbol.
std::vector<std::int32_t> buckets(std::span<const std::int32_t> text,
                                  std::int32_t alphabet_size, bool heads) {
    std::vector<std::int32_t> count(alphabet_size, 0);
    for (const std::int32_t c : text) ++count[c];
    std::vector<std::int32_t> out(alphabet_size, 0);
    std::int32_t sum = 0;
    for (std::int32_t c = 0; c < alphabet_size; ++c) {
        if (heads) {
            out[c] = sum;
            sum += count[c];
        } else {
            sum += count[c];
            out[c] = sum;
        }
    }
    return out;
}

void induce(std::span<const std::int32_t> text, std::int32_t alphabet_size,
            const std::vector<bool>& is_s, std::vector<std::int32_t>& sa) {
    const std::size_t n = text.size();
    // Induce L-type from sorted LMS positions.
    auto heads = buckets(text, alphabet_size, /*heads=*/true);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t j = sa[i] - 1;
        if (sa[i] > 0 && !is_s[static_cast<std::size_t>(j)]) {
            sa[heads[text[j]]++] = j;
        }
    }
    // Induce S-type right-to-left.
    auto tails = buckets(text, alphabet_size, /*heads=*/false);
    for (std::size_t i = n; i-- > 0;) {
        const std::int32_t j = sa[i] - 1;
        if (sa[i] > 0 && is_s[static_cast<std::size_t>(j)]) {
            sa[--tails[text[j]]] = j;
        }
    }
}

std::vector<std::int32_t> sais_impl(std::span<const std::int32_t> text,
                                    std::int32_t alphabet_size) {
    const std::size_t n = text.size();
    std::vector<std::int32_t> sa(n, -1);
    if (n == 1) {
        sa[0] = 0;
        return sa;
    }

    const auto is_s = classify(text);

    // Step 1: place LMS suffixes at their bucket tails (unsorted), induce.
    {
        auto tails = buckets(text, alphabet_size, /*heads=*/false);
        for (std::size_t i = 1; i < n; ++i) {
            if (is_lms(is_s, i)) {
                sa[--tails[text[i]]] = static_cast<std::int32_t>(i);
            }
        }
    }
    induce(text, alphabet_size, is_s, sa);

    // Step 2: compact sorted LMS substrings, name them.
    std::vector<std::int32_t> lms_order;
    lms_order.reserve(n / 2);
    for (std::size_t i = 0; i < n; ++i) {
        if (sa[i] > 0 && is_lms(is_s, static_cast<std::size_t>(sa[i]))) {
            lms_order.push_back(sa[i]);
        }
    }
    // The sentinel suffix (position n-1) is LMS and sorts first.
    // sa[0] == n-1 always after induction; include it.
    std::vector<std::int32_t> lms_all;
    lms_all.push_back(static_cast<std::int32_t>(n - 1));
    for (const std::int32_t p : lms_order) {
        if (p != static_cast<std::int32_t>(n - 1)) lms_all.push_back(p);
    }

    // Assign names by comparing consecutive LMS substrings.
    std::vector<std::int32_t> name_of(n, -1);
    std::int32_t next_name = 0;
    name_of[static_cast<std::size_t>(lms_all[0])] = next_name;
    auto lms_substring_equal = [&](std::int32_t a, std::int32_t b) {
        // Compare LMS substrings starting at a and b (inclusive of the
        // terminating LMS position).
        for (std::size_t off = 0;; ++off) {
            const std::size_t ia = static_cast<std::size_t>(a) + off;
            const std::size_t ib = static_cast<std::size_t>(b) + off;
            if (ia >= n || ib >= n) return false;
            const bool lms_a = off > 0 && is_lms(is_s, ia);
            const bool lms_b = off > 0 && is_lms(is_s, ib);
            if (lms_a != lms_b) return false;
            if (lms_a && lms_b) return true;
            if (text[ia] != text[ib] || is_s[ia] != is_s[ib]) return false;
        }
    };
    for (std::size_t k = 1; k < lms_all.size(); ++k) {
        if (!lms_substring_equal(lms_all[k - 1], lms_all[k])) ++next_name;
        name_of[static_cast<std::size_t>(lms_all[k])] = next_name;
    }
    const std::int32_t n_names = next_name + 1;

    // Ordered list of LMS positions by text order.
    std::vector<std::int32_t> lms_positions;
    lms_positions.reserve(lms_all.size());
    for (std::size_t i = 1; i < n; ++i) {
        if (is_lms(is_s, i)) {
            lms_positions.push_back(static_cast<std::int32_t>(i));
        }
    }

    // Step 3: sort LMS suffixes — recurse if names collide.
    std::vector<std::int32_t> lms_sorted;
    if (n_names == static_cast<std::int32_t>(lms_positions.size())) {
        // All names unique; order is determined directly.
        lms_sorted.resize(lms_positions.size());
        for (const std::int32_t p : lms_positions) {
            lms_sorted[static_cast<std::size_t>(
                name_of[static_cast<std::size_t>(p)])] = p;
        }
    } else {
        std::vector<std::int32_t> reduced;
        reduced.reserve(lms_positions.size());
        for (const std::int32_t p : lms_positions) {
            reduced.push_back(name_of[static_cast<std::size_t>(p)]);
        }
        const auto sub_sa = sais_impl(reduced, n_names);
        lms_sorted.resize(sub_sa.size());
        for (std::size_t i = 0; i < sub_sa.size(); ++i) {
            lms_sorted[i] =
                lms_positions[static_cast<std::size_t>(sub_sa[i])];
        }
    }

    // Step 4: final induced sort from correctly ordered LMS suffixes.
    std::fill(sa.begin(), sa.end(), -1);
    {
        auto tails = buckets(text, alphabet_size, /*heads=*/false);
        for (std::size_t k = lms_sorted.size(); k-- > 0;) {
            const std::int32_t p = lms_sorted[k];
            sa[--tails[text[p]]] = p;
        }
    }
    induce(text, alphabet_size, is_s, sa);
    return sa;
}

} // namespace

std::vector<std::int32_t> sais(std::span<const std::int32_t> text,
                               std::int32_t alphabet_size) {
    if (text.empty()) return {};
    if (text.back() != 0) {
        throw std::invalid_argument("sais: text must end with sentinel 0");
    }
    for (std::size_t i = 0; i + 1 < text.size(); ++i) {
        if (text[i] <= 0) {
            throw std::invalid_argument(
                "sais: sentinel 0 must be unique and final (violated at " +
                std::to_string(i) + ")");
        }
        if (text[i] >= alphabet_size) {
            throw std::invalid_argument("sais: symbol out of alphabet");
        }
    }
    return sais_impl(text, alphabet_size);
}

std::vector<std::int32_t> build_suffix_array(const util::PackedDna& dna) {
    const std::size_t n = dna.size();
    std::vector<std::int32_t> text(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        text[i] = static_cast<std::int32_t>(dna.code_at(i)) + 1;
    }
    text[n] = 0;
    return sais_impl(text, 5);
}

std::vector<std::int32_t> build_suffix_array_naive(
    const util::PackedDna& dna) {
    const std::size_t n = dna.size();
    std::vector<std::int32_t> sa(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
        sa[i] = static_cast<std::int32_t>(i);
    }
    std::sort(sa.begin(), sa.end(), [&](std::int32_t a, std::int32_t b) {
        std::size_t ia = static_cast<std::size_t>(a);
        std::size_t ib = static_cast<std::size_t>(b);
        while (ia < n && ib < n) {
            const auto ca = dna.code_at(ia);
            const auto cb = dna.code_at(ib);
            if (ca != cb) return ca < cb;
            ++ia;
            ++ib;
        }
        return ia > ib; // shorter suffix (ran off the end first) is smaller
    });
    return sa;
}

} // namespace repute::index
