#include "index/rix.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "index/qgram_table.hpp"
#include "util/serialize.hpp"

namespace repute::index {

namespace {

using rix::Header;
using rix::Section;

std::uint64_t header_checksum(Header h) {
    h.header_checksum = 0;
    return util::fnv1a64(&h, sizeof(h));
}

std::size_t page_round(std::size_t bytes) {
    return (bytes + rix::kPageBytes - 1) & ~std::size_t{rix::kPageBytes - 1};
}

/// Serialized name blob: reference name first, then each sequence name
/// (u64 count, then u64 length + raw bytes per string).
std::vector<char> encode_names(const genomics::MultiReference& multi) {
    std::vector<char> blob;
    const auto put_u64 = [&blob](std::uint64_t v) {
        const auto* p = reinterpret_cast<const char*>(&v);
        blob.insert(blob.end(), p, p + sizeof(v));
    };
    const auto put_str = [&](const std::string& s) {
        put_u64(s.size());
        blob.insert(blob.end(), s.begin(), s.end());
    };
    put_u64(multi.sequence_count() + 1);
    put_str(multi.concatenated().name());
    for (std::size_t i = 0; i < multi.sequence_count(); ++i) {
        put_str(multi.sequence_name(i));
    }
    return blob;
}

/// Cursor over the mapped SeqNames blob; every read is bounds-checked
/// (the checksum has passed, but a hostile length field must still not
/// walk off the mapping).
struct BlobReader {
    const char* p;
    std::size_t left;

    std::uint64_t u64() {
        if (left < sizeof(std::uint64_t)) {
            throw std::runtime_error("rix: truncated name table");
        }
        std::uint64_t v;
        std::memcpy(&v, p, sizeof(v));
        p += sizeof(v);
        left -= sizeof(v);
        return v;
    }
    std::string str() {
        const std::uint64_t len = u64();
        if (left < len) {
            throw std::runtime_error("rix: truncated name table");
        }
        std::string s(p, len);
        p += len;
        left -= len;
        return s;
    }
};

/// Shared magic/version/endian/page/checksum validation — the failure
/// modes and messages MappedIndex::open and rix::read_header agree on.
void validate_header(const Header& h, const std::string& path) {
    if (h.magic != rix::kMagic) {
        // The stream images start with their own magics; recognize them
        // so the error says "convert", not "corrupt".
        if (h.magic == 0x464D4932u || h.magic == 0x464D4958u) {
            throw std::runtime_error(
                "rix: " + path +
                " is a legacy FMI stream image, not a .rix container — "
                "regenerate it with `repute index build`");
        }
        throw std::runtime_error("rix: " + path +
                                 " is not a .rix container (bad magic)");
    }
    if (h.version != rix::kVersion) {
        throw std::runtime_error(
            "rix: " + path + " has unsupported version " +
            std::to_string(h.version) + " (expected " +
            std::to_string(rix::kVersion) + ")");
    }
    if (h.endian != rix::kEndianTag) {
        throw std::runtime_error(
            "rix: " + path +
            " was written on a foreign-endian machine — rebuild it here");
    }
    if (h.page_bytes != rix::kPageBytes) {
        throw std::runtime_error("rix: " + path +
                                 " has an unsupported page size");
    }
    if (h.header_checksum != header_checksum(h)) {
        throw std::runtime_error("rix: " + path +
                                 " header checksum mismatch (corrupt)");
    }
}

} // namespace

namespace rix {

Header read_header(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("rix: cannot open " + path);
    }
    Header h;
    in.read(reinterpret_cast<char*>(&h), sizeof(h));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(h))) {
        throw std::runtime_error("rix: " + path +
                                 " is too small to be a .rix container");
    }
    validate_header(h, path);
    return h;
}

} // namespace rix

void write_rix(const std::string& path,
               const genomics::MultiReference& multi, const FmIndex& fm) {
    if (fm.size() != multi.concatenated().size()) {
        throw std::runtime_error(
            "rix: index and reference lengths disagree");
    }

    Header h;
    h.text_length = fm.size();
    h.c = fm.c_array();
    h.sentinel_row = fm.sentinel_row();
    h.sa_sample = fm.sa_sample();
    h.checkpoint_every = fm.checkpoint_every();
    h.qgram_length = fm.qgrams() ? fm.qgrams()->q() : 0;
    h.sequence_count = multi.sequence_count();

    const auto names = encode_names(multi);
    const auto qgram_ranges =
        fm.qgrams() ? fm.qgrams()->ranges()
                    : std::span<const FmIndex::Range>{};

    struct Payload {
        const void* data;
        std::size_t bytes;
    };
    const Payload payloads[rix::kSectionCount] = {
        {fm.rank_words().data(),
         fm.rank_words().size() * sizeof(std::uint64_t)},
        {fm.sampled_rows().words().data(),
         fm.sampled_rows().words().size() * sizeof(std::uint64_t)},
        {fm.sa_samples().data(),
         fm.sa_samples().size() * sizeof(std::uint32_t)},
        {qgram_ranges.data(),
         qgram_ranges.size() * sizeof(FmIndex::Range)},
        {multi.concatenated().sequence().words().data(),
         multi.concatenated().sequence().words().size() *
             sizeof(std::uint64_t)},
        {names.data(), names.size()},
        {multi.starts().data(),
         multi.starts().size() * sizeof(std::uint32_t)},
    };

    std::uint64_t offset = rix::kPageBytes; // header owns page 0
    for (std::uint32_t s = 0; s < rix::kSectionCount; ++s) {
        h.sections[s] = {offset, payloads[s].bytes,
                         util::fnv1a64(payloads[s].data,
                                       payloads[s].bytes)};
        offset += page_round(payloads[s].bytes);
    }
    h.file_bytes = offset;
    h.header_checksum = header_checksum(h);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("rix: cannot open " + tmp +
                                     " for writing");
        }
        const std::vector<char> pad(rix::kPageBytes, 0);
        out.write(reinterpret_cast<const char*>(&h), sizeof(h));
        out.write(pad.data(),
                  static_cast<std::streamsize>(rix::kPageBytes - sizeof(h)));
        for (const auto& p : payloads) {
            if (p.bytes > 0) {
                out.write(static_cast<const char*>(p.data),
                          static_cast<std::streamsize>(p.bytes));
            }
            out.write(pad.data(), static_cast<std::streamsize>(
                                      page_round(p.bytes) - p.bytes));
        }
        if (!out) throw std::runtime_error("rix: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("rix: cannot rename " + tmp + " to " +
                                 path);
    }
}

MappedIndex MappedIndex::open(const std::string& path) {
    MappedIndex mi;
    mi.map_ = util::MmapFile::open_readonly(path);
    mi.path_ = path;

    if (mi.map_.size() < sizeof(Header)) {
        throw std::runtime_error("rix: " + path +
                                 " is too small to be a .rix container");
    }
    Header h;
    std::memcpy(&h, mi.map_.data(), sizeof(h));

    validate_header(h, path);
    if (h.file_bytes != mi.map_.size()) {
        throw std::runtime_error("rix: " + path + " is truncated (" +
                                 std::to_string(mi.map_.size()) + " of " +
                                 std::to_string(h.file_bytes) + " bytes)");
    }

    static const char* kSectionNames[rix::kSectionCount] = {
        "rank blocks", "SA mark bits",   "SA samples", "q-gram ranges",
        "ref words",   "sequence names", "sequence starts"};
    for (std::uint32_t s = 0; s < rix::kSectionCount; ++s) {
        const Section& sec = h.sections[s];
        if (sec.offset % rix::kPageBytes != 0 ||
            sec.offset + sec.bytes > mi.map_.size() ||
            sec.offset + sec.bytes < sec.offset) {
            throw std::runtime_error(
                std::string("rix: section out of bounds (") +
                kSectionNames[s] + ")");
        }
        if (util::fnv1a64(mi.map_.data() + sec.offset, sec.bytes) !=
            sec.checksum) {
            throw std::runtime_error(
                std::string("rix: checksum mismatch in section ") +
                kSectionNames[s] + " — the file is corrupt");
        }
    }

    const auto span_u64 = [&](rix::SectionId s) {
        const Section& sec = h.sections[s];
        return mi.map_.view<std::uint64_t>(
            sec.offset, sec.bytes / sizeof(std::uint64_t));
    };
    const auto span_u32 = [&](rix::SectionId s) {
        const Section& sec = h.sections[s];
        return mi.map_.view<std::uint32_t>(
            sec.offset, sec.bytes / sizeof(std::uint32_t));
    };

    FmIndex::ViewGeometry g;
    g.n = h.text_length;
    g.c = h.c;
    g.sentinel_row = h.sentinel_row;
    g.sa_sample = h.sa_sample;
    g.checkpoint_every = h.checkpoint_every;
    g.qgram_length = h.qgram_length;
    const Section& qsec = h.sections[rix::kQgramRanges];
    const auto qgram_ranges = mi.map_.view<FmIndex::Range>(
        qsec.offset, qsec.bytes / sizeof(FmIndex::Range));
    mi.fm_ = std::make_unique<FmIndex>(FmIndex::from_view(
        g, span_u64(rix::kRankBlocks), span_u64(rix::kSaMarkBits),
        span_u32(rix::kSaSamples), qgram_ranges));

    const Section& nsec = h.sections[rix::kSeqNames];
    BlobReader names_in{
        reinterpret_cast<const char*>(mi.map_.data() + nsec.offset),
        static_cast<std::size_t>(nsec.bytes)};
    const std::uint64_t name_count = names_in.u64();
    if (name_count != h.sequence_count + 1) {
        throw std::runtime_error("rix: sequence-name count mismatch");
    }
    std::string ref_name = names_in.str();
    std::vector<std::string> names;
    names.reserve(h.sequence_count);
    for (std::uint64_t i = 0; i < h.sequence_count; ++i) {
        names.push_back(names_in.str());
    }

    const auto starts_span = span_u32(rix::kSeqStarts);
    std::vector<std::uint32_t> starts(starts_span.begin(),
                                      starts_span.end());

    genomics::Reference reference(
        std::move(ref_name),
        util::PackedDna::view_of(span_u64(rix::kRefWords),
                                 h.text_length));
    mi.multi_ = std::make_unique<genomics::MultiReference>(
        std::move(reference), std::move(names), std::move(starts));
    return mi;
}

std::size_t MappedIndex::resident_bytes() const noexcept {
    std::size_t names_bytes = 0;
    for (std::size_t i = 0; i < multi_->sequence_count(); ++i) {
        names_bytes += multi_->sequence_name(i).size();
    }
    return fm_->resident_bytes() + names_bytes +
           multi_->starts().size() * sizeof(std::uint32_t);
}

} // namespace repute::index
