#pragma once
// Reference shard planner — contig-granular partitioning of a
// MultiReference into K contiguous slices whose per-shard FM-index
// images fit a device memory budget.
//
// The paper's OpenCL 1.2 embedded profile caps any single allocation at
// a quarter of device RAM (DeviceProfile::max_single_allocation), so a
// monolithic index bounds the mappable reference size per device.
// Sharding splits the concatenated reference at contig boundaries
// (mappings never span contigs anyway — SamEmitter demotes straddlers),
// indexes each slice independently, and lets the mapper scatter-gather
// batches across shards. Each shard additionally indexes an overlap
// overhang into its neighbours so candidate windows near a shard cut
// see exactly the bytes the monolithic index would show them; ownership
// of reported positions stays disjoint (see core/sharded_mapper.hpp).
//
// SHRiMP ships this exact workflow as utils/SPLIT-DB + per-shard index
// sets; GRIM-Filter partitions into per-memory-unit bins the same way.

#include <cstdint>
#include <vector>

#include "genomics/multi_reference.hpp"

namespace repute::index {

/// Per-shard index-image budget implied by a device's global memory:
/// the OpenCL 1.2 quarter-RAM single-allocation ceiling (mirrors
/// ocl::DeviceProfile::max_single_allocation without an ocl dependency).
constexpr std::uint64_t device_shard_budget(
    std::uint64_t global_memory_bytes) noexcept {
    return global_memory_bytes / 4;
}

struct ShardPlanConfig {
    /// Explicit shard count (clamped to the contig count; 0 = derive
    /// the count from `budget_bytes` instead).
    std::uint32_t shard_count = 0;
    /// Per-shard estimated index-image byte budget (0 = unbudgeted).
    /// With `shard_count` 0, the planner packs greedily under this
    /// budget; with both set, the explicit count wins and the budget is
    /// only validated. A single contig whose image alone exceeds the
    /// budget is an error — contigs are never split.
    std::uint64_t budget_bytes = 0;
    /// Overhang indexed into each neighbour (bp). Must be at least
    /// read_length + delta at mapping time so candidate windows near a
    /// cut are verified against the same bytes as the monolithic index
    /// (the mapper enforces this per batch).
    std::uint32_t overlap = 512;
    // Index geometry the estimates are computed for.
    std::uint32_t sa_sample = 4;
    std::uint32_t checkpoint_every = 128;
    std::uint32_t qgram_length = 8;
};

/// One planned shard: a contiguous run of contigs plus its overhangs.
/// Global coordinates are positions in the concatenated reference.
struct ShardSpec {
    std::uint32_t index = 0;          ///< shard ordinal
    std::uint32_t first_sequence = 0; ///< first owned contig
    std::uint32_t sequence_count = 0; ///< owned contigs
    std::uint32_t base = 0;           ///< global start of the owned range
    std::uint32_t owned_length = 0;   ///< bp owned (reported) by the shard
    std::uint32_t left_overlap = 0;   ///< overhang bp before `base`
    std::uint32_t right_overlap = 0;  ///< overhang bp after the owned end

    /// Global start of the shard's indexed text.
    std::uint32_t text_offset() const noexcept {
        return base - left_overlap;
    }
    /// Length of the shard's indexed text (owned + overhangs).
    std::uint32_t text_length() const noexcept {
        return left_overlap + owned_length + right_overlap;
    }
};

struct ShardPlan {
    std::vector<ShardSpec> shards;
    std::uint32_t overlap = 0; ///< the configured overhang
    /// Largest estimated per-shard index image (bytes) — what the
    /// mapper's resident buffer must hold, checked against budgets.
    std::uint64_t max_estimated_bytes = 0;
};

/// Estimated bytes of the device index image for a text of `bp` bases
/// at the given geometry: interleaved rank blocks (exact, via
/// FmIndex::rank_words_for), C array, sampled SA + mark bits, q-gram
/// table (after the same budget/length clamp build_qgrams applies) and
/// the 2-bit packed text. Monotonic in `bp` — the planner's greedy
/// packing and the minmax binary search both rely on that.
std::uint64_t estimate_index_bytes(std::uint64_t bp,
                                   std::uint32_t sa_sample,
                                   std::uint32_t checkpoint_every,
                                   std::uint32_t qgram_length);

/// Plans shards over `multi`. Contiguous, contig-granular, covering
/// every contig exactly once; shard 0 has no left overhang and the last
/// shard no right overhang. With an explicit count the partition
/// minimizes the maximum owned length (minmax over contiguous
/// partitions); with a budget it packs greedily. Throws
/// std::invalid_argument when no shards are requested at all, when a
/// single contig cannot fit the budget, or when the explicit plan
/// exceeds a configured budget.
ShardPlan plan_shards(const genomics::MultiReference& multi,
                      const ShardPlanConfig& config);

} // namespace repute::index
