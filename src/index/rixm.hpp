#pragma once
// .rixm — the sharded-index manifest over the .rix container.
//
// A sharded index is K ordinary .rix files (one FM-index per reference
// slice, each storing its slice as a single pseudo-sequence) plus one
// small text manifest that carries what the slices cannot: the real
// contig names and boundaries of the combined reference, each shard's
// placement in the concatenated text (owned range + overlap overhangs),
// and a header-checksum pin per shard so a shard rebuilt or swapped
// behind the manifest's back is caught at open time, not as silently
// wrong coordinates.
//
// Format (line-based, tab-separated, first line is the sniffable
// magic — "RIXM" never collides with the binary .rix magic, whose
// little-endian file bytes are "2XIR"):
//
//   RIXM <version>
//   name <combined reference name>
//   overlap <bp>
//   sequences <count>
//   seq <name> <length>                      x count
//   shards <count>
//   shard <i> <relpath> <text_offset> <left_overlap> <owned_length>
//         <right_overlap> <header_checksum_hex>                x count
//
// Shard paths are relative to the manifest's directory, so the set
// moves as a unit. Missing files, foreign files, version skew and
// rebuilt-without-the-manifest shards all fail with distinct,
// actionable errors (tests in test_rix.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/multi_reference.hpp"
#include "index/rix.hpp"
#include "index/shard_plan.hpp"

namespace repute::index {

namespace rixm {
constexpr std::uint32_t kVersion = 1;
} // namespace rixm

/// True when `path` starts with the .rixm text magic — how
/// MappingSession::from_rix and `repute serve` dispatch between a
/// monolithic container and a manifest without trusting the extension.
bool is_rixm_manifest(const std::string& path);

/// A sharded index opened from a .rixm manifest: every shard's .rix
/// container mapped resident, placement metadata validated against the
/// shard headers, and the combined MultiReference (real contig names /
/// boundaries, concatenated text reassembled from the owned regions)
/// rebuilt host-side. Move-only, like MappedIndex.
class ShardedIndex {
public:
    /// One mapped shard plus its placement in the combined text.
    /// Local coordinates are positions in the shard's own indexed text;
    /// global coordinates are positions in the concatenated reference.
    struct Shard {
        MappedIndex mapped;
        std::uint32_t text_offset = 0;  ///< global start of indexed text
        std::uint32_t left_overlap = 0;
        std::uint32_t owned_length = 0;
        std::uint32_t right_overlap = 0;

        /// Global start of the owned (reported) range.
        std::uint32_t base() const noexcept {
            return text_offset + left_overlap;
        }
        /// Owned range in local coordinates — the kernel's
        /// [report_lo, report_hi) ownership window.
        std::uint32_t own_lo() const noexcept { return left_overlap; }
        std::uint32_t own_hi() const noexcept {
            return left_overlap + owned_length;
        }
    };

    /// Parses `path`, maps every shard and validates the set:
    /// missing shard file, non-.rix shard, .rix version skew and a
    /// header-checksum mismatch (shard rebuilt without the manifest)
    /// each throw std::runtime_error with a distinct message naming the
    /// shard.
    static ShardedIndex open(const std::string& path);

    ShardedIndex(ShardedIndex&&) noexcept = default;
    ShardedIndex& operator=(ShardedIndex&&) noexcept = default;

    const std::vector<Shard>& shards() const noexcept { return shards_; }
    /// The combined reference (real contig names and boundaries; text
    /// reassembled from the shards' owned regions).
    const genomics::MultiReference& multi() const noexcept {
        return *multi_;
    }
    std::uint32_t overlap() const noexcept { return overlap_; }
    const std::string& path() const noexcept { return path_; }

    /// Sum of the shard file mappings (shared, demand-paged).
    std::size_t mapped_bytes() const noexcept;
    /// Private heap: per-shard view overhead plus the reassembled
    /// combined text.
    std::size_t resident_bytes() const noexcept;

private:
    ShardedIndex() = default;

    std::vector<Shard> shards_;
    std::unique_ptr<genomics::MultiReference> multi_;
    std::uint32_t overlap_ = 0;
    std::string path_;
};

struct ShardBuildConfig {
    ShardPlanConfig plan;
    /// Parallel shard index builds (each shard's suffix array, rank
    /// blocks and q-gram table are independent — index construction is
    /// the wall-clock monster, and this is its near-linear speedup).
    std::uint32_t jobs = 1;
};

struct ShardBuildResult {
    std::string manifest_path;
    std::vector<std::string> shard_paths;
    ShardPlan plan;
    double build_seconds = 0.0; ///< wall clock of the shard builds
};

/// Plans shards over `multi`, builds each shard's FmIndex (in parallel
/// across `jobs` threads), writes the .rix containers next to
/// `manifest_path` (stem + ".<i>.rix") and finally the manifest itself
/// (atomic, like write_rix). Throws on planning or I/O failure.
ShardBuildResult build_sharded_index(const genomics::MultiReference& multi,
                                     const std::string& manifest_path,
                                     const ShardBuildConfig& config);

} // namespace repute::index
