#pragma once
// GEM-style mapper (Marco-Sola et al. 2012), simplified core.
//
// GEM's adaptive progressive filtration grows each region of the read
// until it is specific enough (few FM-index hits), independent of the
// error budget — which is why GEM's runtime is flat across delta in
// Table I. Configured as in the paper's comparison, it behaves as a
// best-mapper (best stratum reported), giving low §III-A accuracy
// against an all-mapper gold standard but ~90% any-best accuracy.

#include "baselines/single_device_mapper.hpp"
#include "index/fm_index.hpp"

namespace repute::baselines {

class GemLike final : public SingleDeviceMapper {
public:
    GemLike(const genomics::Reference& reference, const index::FmIndex& fm,
            ocl::Device& device, std::uint32_t specificity_threshold = 20,
            std::uint32_t max_region_length = 30,
            std::uint32_t max_hits_per_region = 200)
        : SingleDeviceMapper("GEM", device, /*power_scale=*/0.45),
          reference_(&reference), fm_(&fm),
          threshold_(specificity_threshold),
          max_region_length_(max_region_length),
          max_hits_per_region_(max_hits_per_region) {}

protected:
    std::uint64_t map_read(const genomics::Read& read, std::uint32_t delta,
                           std::vector<core::ReadMapping>& out) override;

private:
    const genomics::Reference* reference_;
    const index::FmIndex* fm_;
    std::uint32_t threshold_;
    std::uint32_t max_region_length_;
    std::uint32_t max_hits_per_region_;

    std::uint64_t map_strand(std::span<const std::uint8_t> codes,
                             genomics::Strand strand, std::uint32_t delta,
                             std::vector<core::ReadMapping>& out) const;
};

} // namespace repute::baselines
