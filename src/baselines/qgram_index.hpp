#pragma once
// q-gram inverted index of the reference (RazerS3/Hobbes3 substrate).
//
// Hash-based mappers pre-process the reference into an occurrence table
// keyed by the 2q-bit packed q-gram. Layout is the classic two-array
// form: `starts` (4^q + 1 prefix sums) into a flat `positions` array,
// built with a counting pass — O(N) construction, O(1) bucket lookup.

#include <cstdint>
#include <span>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::baselines {

class QGramIndex {
public:
    /// q in [4, 14] (4^14 buckets = 1 GiB of prefix sums is the
    /// practical ceiling); throws std::invalid_argument otherwise.
    QGramIndex(const genomics::Reference& reference, std::uint32_t q);

    std::uint32_t q() const noexcept { return q_; }

    /// Reference positions where the packed q-gram `key` occurs.
    std::span<const std::uint32_t> occurrences(std::uint64_t key) const {
        return {positions_.data() + starts_[key],
                starts_[key + 1] - starts_[key]};
    }

    /// Packs codes[0..q) into a key (code 0 = lowest-order pair).
    static std::uint64_t pack(std::span<const std::uint8_t> codes,
                              std::uint32_t q) noexcept {
        std::uint64_t key = 0;
        for (std::uint32_t i = 0; i < q; ++i) {
            key |= static_cast<std::uint64_t>(codes[i] & 3u) << (2 * i);
        }
        return key;
    }

    /// Rolls `key` one base to the right: drop codes[i], admit
    /// codes[i+q] (constant time; used when scanning a read).
    std::uint64_t roll(std::uint64_t key, std::uint8_t incoming) const
        noexcept {
        key >>= 2;
        key |= static_cast<std::uint64_t>(incoming & 3u)
               << (2 * (q_ - 1));
        return key;
    }

    std::size_t memory_bytes() const noexcept {
        return starts_.size() * sizeof(std::uint32_t) +
               positions_.size() * sizeof(std::uint32_t);
    }

private:
    std::uint32_t q_;
    std::vector<std::uint32_t> starts_;    ///< 4^q + 1 prefix sums
    std::vector<std::uint32_t> positions_; ///< reference offsets
};

} // namespace repute::baselines
