#include "baselines/razers3_like.hpp"

#include <algorithm>
#include <bit>

#include "baselines/verify_common.hpp"

namespace repute::baselines {

namespace {
constexpr std::uint64_t kOpsPerLookup = 4;
constexpr std::uint64_t kOpsPerHit = 3;
constexpr std::uint64_t kOpsMyersWord = 4;
} // namespace

std::uint32_t RazerS3Like::choose_q(std::size_t read_length,
                                    std::uint32_t delta,
                                    std::uint32_t max_q) noexcept {
    // Largest q with (n - q + 1) - q*delta >= 1  =>  q <= n / (delta+1),
    // capped to keep the 4^q bucket array practical. Like RazerS3's
    // shape-selection heuristics, the weight is additionally lowered at
    // high error rates to hold sensitivity with indels — the cost is a
    // denser hit stream, which is why RazerS3's runtime grows so
    // steeply with delta in Table I.
    const auto by_lemma =
        static_cast<std::uint32_t>(read_length / (delta + 1));
    std::uint32_t q = std::min<std::uint32_t>(
        max_q, std::max<std::uint32_t>(4, by_lemma));
    if (delta >= 5 && q > 4) --q;
    if (delta >= 7 && q > 4) --q;
    return q;
}

std::uint32_t RazerS3Like::threshold(std::size_t read_length,
                                     std::uint32_t q,
                                     std::uint32_t delta) noexcept {
    const auto n = static_cast<std::int64_t>(read_length);
    const std::int64_t t = (n - q + 1) - static_cast<std::int64_t>(q) * delta;
    return t < 1 ? 1u : static_cast<std::uint32_t>(t);
}

void RazerS3Like::prepare(const genomics::ReadBatch& batch,
                          std::uint32_t delta) {
    const std::uint32_t q = choose_q(batch.read_length, delta, max_q_);
    if (!index_ || index_->q() != q) {
        index_ = std::make_unique<QGramIndex>(*reference_, q);
    }
}

std::uint64_t RazerS3Like::map_strand(
    std::span<const std::uint8_t> codes, genomics::Strand strand,
    std::uint32_t delta, std::vector<core::ReadMapping>& out) const {
    const auto n = static_cast<std::uint32_t>(codes.size());
    const std::uint32_t q = index_->q();
    const std::uint32_t t = threshold(n, q, delta);
    std::uint64_t ops = 0;

    // Collect candidate diagonals (read-start positions) of every
    // q-gram hit.
    std::vector<std::uint32_t> diagonals;
    std::uint64_t key = QGramIndex::pack(codes, q);
    for (std::uint32_t o = 0;; ++o) {
        const auto occ = index_->occurrences(key);
        ops += kOpsPerLookup + occ.size() * kOpsPerHit;
        for (const std::uint32_t p : occ) {
            diagonals.push_back(p >= o ? p - o : 0);
        }
        if (o + q >= n) break;
        key = index_->roll(key, codes[o + q]);
    }

    std::sort(diagonals.begin(), diagonals.end());
    ops += diagonals.size() *
           (diagonals.empty()
                ? 0
                : std::bit_width(diagonals.size()));

    // Counting stage: a window of diagonals of width delta holding >= t
    // hits is a candidate parallelogram.
    std::vector<std::uint32_t> candidates;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < diagonals.size(); ++hi) {
        while (diagonals[hi] > diagonals[lo] + delta) ++lo;
        if (hi - lo + 1 >= t) candidates.push_back(diagonals[lo]);
    }
    dedup_positions(candidates, delta);

    const auto stats =
        verify_candidates(*reference_, codes, strand, candidates, delta,
                          max_locations_, kOpsMyersWord, out);
    return ops + stats.ops;
}

std::uint64_t RazerS3Like::map_read(const genomics::Read& read,
                                    std::uint32_t delta,
                                    std::vector<core::ReadMapping>& out) {
    std::uint64_t ops =
        map_strand(read.codes, genomics::Strand::Forward, delta, out);
    const auto rc = read.reverse_complement();
    ops += map_strand(rc, genomics::Strand::Reverse, delta, out);
    return ops;
}

} // namespace repute::baselines
