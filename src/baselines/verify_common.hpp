#pragma once
// Candidate verification shared by the baseline mappers: Myers
// bit-vector over a delta-padded reference window, identical semantics
// to the REPUTE kernel so accuracy comparisons measure filtration
// quality, not verifier differences.

#include <cstdint>
#include <span>
#include <vector>

#include "core/mapping.hpp"
#include "genomics/sequence.hpp"

namespace repute::baselines {

struct VerifyStats {
    std::uint64_t ops = 0;
    std::uint32_t accepted = 0;
};

/// Verifies sorted candidate read-start positions of one strand's codes
/// and appends accepted mappings to `out` until `cap` total entries.
/// `weights_myers_word` is the per-word-column op weight.
VerifyStats verify_candidates(const genomics::Reference& reference,
                              std::span<const std::uint8_t> codes,
                              genomics::Strand strand,
                              std::span<const std::uint32_t> positions,
                              std::uint32_t delta, std::size_t cap,
                              std::uint64_t weights_myers_word,
                              std::vector<core::ReadMapping>& out);

/// Sorts and collapses candidate diagonals within `radius` (shared
/// dedup used by every filtration scheme).
void dedup_positions(std::vector<std::uint32_t>& positions,
                     std::uint32_t radius);

/// Best-mapper semantics (Yara / BWA-MEM / GEM as configured in the
/// paper): keep only mappings whose edit distance equals the minimum —
/// the "best stratum". No-op on empty input.
void keep_best_stratum(std::vector<core::ReadMapping>& mappings);

} // namespace repute::baselines
