#include "baselines/qgram_index.hpp"

#include <stdexcept>

namespace repute::baselines {

QGramIndex::QGramIndex(const genomics::Reference& reference,
                       std::uint32_t q)
    : q_(q) {
    if (q < 4 || q > 14) {
        throw std::invalid_argument("QGramIndex: q must be in [4, 14]");
    }
    const std::size_t n = reference.size();
    if (n < q) {
        throw std::invalid_argument("QGramIndex: reference shorter than q");
    }
    const std::size_t n_grams = n - q + 1;
    const std::size_t n_buckets = 1ULL << (2 * q);
    starts_.assign(n_buckets + 1, 0);

    // Pass 1: counts. Keys are rolled across the text.
    std::uint64_t key = 0;
    for (std::uint32_t i = 0; i < q; ++i) {
        key |= static_cast<std::uint64_t>(reference.code_at(i)) << (2 * i);
    }
    for (std::size_t p = 0;; ++p) {
        ++starts_[key + 1];
        if (p + 1 >= n_grams) break;
        key = roll(key, reference.code_at(p + q));
    }
    for (std::size_t b = 0; b < n_buckets; ++b) {
        starts_[b + 1] += starts_[b];
    }

    // Pass 2: fill.
    positions_.resize(n_grams);
    std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
    key = 0;
    for (std::uint32_t i = 0; i < q; ++i) {
        key |= static_cast<std::uint64_t>(reference.code_at(i)) << (2 * i);
    }
    for (std::size_t p = 0;; ++p) {
        positions_[cursor[key]++] = static_cast<std::uint32_t>(p);
        if (p + 1 >= n_grams) break;
        key = roll(key, reference.code_at(p + q));
    }
}

} // namespace repute::baselines
