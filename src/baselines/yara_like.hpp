#pragma once
// Yara-style all-best mapper (Siragusa 2015), simplified core.
//
// Yara searches few long seeds *approximately* in the FM-index
// (backtracking with per-seed error budgets derived from the pigeonhole
// principle: budgets e_1..e_k with sum(e_i + 1) >= delta + 1 guarantee a
// seed match at every true location) and reports every location in the
// best stratum. The backtracking tree grows steeply with the per-seed
// budget, which is exactly why Yara's runtime explodes with delta in
// Table I (321 s at n=150, delta=7) — and the best-stratum output is
// why its §III-A accuracy against an all-mapper gold standard is in the
// single digits while its §III-B any-best accuracy is ~100%.

#include "baselines/single_device_mapper.hpp"
#include "index/approx_search.hpp"
#include "index/fm_index.hpp"

namespace repute::baselines {

class YaraLike final : public SingleDeviceMapper {
public:
    YaraLike(const genomics::Reference& reference,
             const index::FmIndex& fm, ocl::Device& device,
             std::uint32_t n_seeds = 2, std::uint32_t max_locations = 4096)
        : SingleDeviceMapper("Yara", device, /*power_scale=*/0.45),
          reference_(&reference), fm_(&fm), n_seeds_(n_seeds),
          max_locations_(max_locations) {}

    /// Pigeonhole error budgets for k seeds at edit budget delta:
    /// sum(e_i + 1) = delta + 1 (clamped at >= 0 each).
    static std::vector<std::uint32_t> seed_budgets(std::uint32_t delta,
                                                   std::uint32_t k);

protected:
    std::uint64_t map_read(const genomics::Read& read, std::uint32_t delta,
                           std::vector<core::ReadMapping>& out) override;

private:
    const genomics::Reference* reference_;
    const index::FmIndex* fm_;
    std::uint32_t n_seeds_;
    std::uint32_t max_locations_;

    std::uint64_t map_strand(std::span<const std::uint8_t> codes,
                             genomics::Strand strand, std::uint32_t delta,
                             std::vector<core::ReadMapping>& out) const;
};

} // namespace repute::baselines
