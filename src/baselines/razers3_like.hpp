#pragma once
// RazerS3-style all-mapper (Weese et al. 2012), simplified core.
//
// The gold standard of the paper's accuracy protocols. Filtration is the
// q-gram counting lemma: an occurrence of a length-n read with at most
// delta errors shares at least t = (n - q + 1) - q*delta q-grams with
// the reference, so diagonals accumulating >= t q-gram hits are the only
// places an alignment can exist — a *lossless* filter. Candidates are
// verified with the same Myers kernel as every other tool here.
//
// Matching the paper's configuration, the mapper reports up to
// `max_locations` mappings per read (RazerS3 was run with 100).

#include <memory>

#include "baselines/qgram_index.hpp"
#include "baselines/single_device_mapper.hpp"

namespace repute::baselines {

class RazerS3Like final : public SingleDeviceMapper {
public:
    /// `max_q` caps the q-gram length (the memory/specificity knob —
    /// RazerS3 picks its shape for the reference scale; smaller values
    /// emulate larger-genome hit densities on small references).
    RazerS3Like(const genomics::Reference& reference, ocl::Device& device,
                std::uint32_t max_locations = 100, std::uint32_t max_q = 12)
        : SingleDeviceMapper("RazerS3", device, /*power_scale=*/0.42),
          reference_(&reference), max_locations_(max_locations),
          max_q_(max_q) {}

    /// Lossless q for the given read parameters: the largest q <= max_q
    /// with threshold >= 1.
    static std::uint32_t choose_q(std::size_t read_length,
                                  std::uint32_t delta,
                                  std::uint32_t max_q = 12) noexcept;
    /// q-gram lemma threshold (>= 1 by construction of choose_q).
    static std::uint32_t threshold(std::size_t read_length,
                                   std::uint32_t q,
                                   std::uint32_t delta) noexcept;

protected:
    void prepare(const genomics::ReadBatch& batch,
                 std::uint32_t delta) override;
    std::uint64_t map_read(const genomics::Read& read, std::uint32_t delta,
                           std::vector<core::ReadMapping>& out) override;

private:
    const genomics::Reference* reference_;
    std::uint32_t max_locations_;
    std::uint32_t max_q_;
    std::unique_ptr<QGramIndex> index_;

    std::uint64_t map_strand(std::span<const std::uint8_t> codes,
                             genomics::Strand strand, std::uint32_t delta,
                             std::vector<core::ReadMapping>& out) const;
};

} // namespace repute::baselines
