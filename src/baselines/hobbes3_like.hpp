#pragma once
// Hobbes3-style mapper (Kim, Li & Xie 2016), simplified core.
//
// Hobbes3's idea: instead of naively splitting the read, *dynamically
// choose where the delta+1 signatures sit* using the occurrence counts
// of an inverted q-gram index, minimizing the total candidate count.
// This is the hash-table cousin of optimal seed selection: signatures
// have a fixed base length q but their positions are optimized by a
// small DP over the read (non-overlapping placement).
//
// All-mapper semantics with a per-read location cap (the paper ran
// Hobbes3 with up to 1000 locations).

#include <memory>

#include "baselines/qgram_index.hpp"
#include "baselines/single_device_mapper.hpp"

namespace repute::baselines {

class Hobbes3Like final : public SingleDeviceMapper {
public:
    Hobbes3Like(const genomics::Reference& reference, ocl::Device& device,
                std::uint32_t max_locations = 1000, std::uint32_t q = 11)
        : SingleDeviceMapper("Hobbes3", device, /*power_scale=*/0.48),
          reference_(&reference), max_locations_(max_locations), q_(q) {}

protected:
    void prepare(const genomics::ReadBatch& batch,
                 std::uint32_t delta) override;
    std::uint64_t map_read(const genomics::Read& read, std::uint32_t delta,
                           std::vector<core::ReadMapping>& out) override;

private:
    const genomics::Reference* reference_;
    std::uint32_t max_locations_;
    std::uint32_t q_;
    std::unique_ptr<QGramIndex> index_;

    std::uint64_t map_strand(std::span<const std::uint8_t> codes,
                             genomics::Strand strand, std::uint32_t delta,
                             std::vector<core::ReadMapping>& out) const;
};

} // namespace repute::baselines
