#include "baselines/single_device_mapper.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace repute::baselines {

core::MapResult SingleDeviceMapper::map(const genomics::ReadBatch& batch,
                                        std::uint32_t delta) {
    core::MapResult result;
    result.per_read.resize(batch.size());
    if (batch.empty()) return result;

    prepare(batch, delta);

    const ocl::LaunchStats stats = device_->execute(
        batch.size(),
        [this, &batch, &result, delta](std::size_t i) -> std::uint64_t {
            auto& out = result.per_read[i];
            out.clear();
            const std::uint64_t ops = map_read(batch.reads[i], delta, out);
            std::sort(out.begin(), out.end(),
                      [](const core::ReadMapping& a,
                         const core::ReadMapping& b) {
                          return a.position != b.position
                                     ? a.position < b.position
                                     : a.strand < b.strand;
                      });
            // Streaming verifiers can accept one window through several
            // seeds; merge duplicates in the host-side output pass.
            out.erase(
                std::unique(out.begin(), out.end(),
                            [](const core::ReadMapping& a,
                               const core::ReadMapping& b) {
                                return a.position == b.position &&
                                       a.strand == b.strand;
                            }),
                out.end());
            return ops;
        },
        scratch_bytes(batch.read_length, delta));

    if (auto* recorder = obs::trace()) {
        // Baselines dispatch straight to the device (no queue); record
        // the whole launch so cross-tool traces stay comparable.
        obs::TraceSpan span;
        span.name = name_ + "::map";
        span.device = device_->name();
        span.start_seconds = stats.start_seconds;
        span.duration_seconds = stats.seconds;
        recorder->record(std::move(span));
    }

    core::DeviceRun run;
    run.device_name = device_->name();
    run.reads = batch.size();
    run.stats = stats;
    run.power_scale = power_scale_;
    result.device_runs.push_back(std::move(run));
    result.mapping_seconds = stats.seconds;
    return result;
}

} // namespace repute::baselines
