#include "baselines/bwamem_like.hpp"

#include <algorithm>

#include "baselines/verify_common.hpp"

namespace repute::baselines {

namespace {
constexpr std::uint64_t kOpsPerFmExtend = 8;
constexpr std::uint64_t kOpsPerLocate = 40;
constexpr std::uint64_t kOpsPerCandidate = 48;
// BWA-MEM extends chains with affine-gap Smith-Waterman, several times
// the cost of a bit-parallel Myers column; modeled by a heavier
// per-word verification weight.
constexpr std::uint64_t kOpsMyersWord = 24;
} // namespace

std::uint64_t BwaMemLike::map_strand(
    std::span<const std::uint8_t> codes, genomics::Strand strand,
    std::uint32_t delta, std::vector<core::ReadMapping>& out) const {
    const auto n = static_cast<std::uint32_t>(codes.size());
    std::uint64_t ops = 0;
    if (n < seed_length_) return ops;

    // Fixed-length exact seeds on a stride (SMEM approximation).
    std::vector<std::uint32_t> candidates;
    std::vector<std::uint32_t> hits;
    for (std::uint32_t off = 0;; off += stride_) {
        if (off + seed_length_ > n) {
            // Final seed flush against the read end.
            off = n - seed_length_;
        }
        const auto range =
            fm_->search(codes.subspan(off, seed_length_));
        ops += seed_length_ * kOpsPerFmExtend;
        if (!range.empty() && range.count() <= max_hits_per_seed_) {
            hits.clear();
            fm_->locate_range(range, max_hits_per_seed_, hits);
            ops += hits.size() * kOpsPerLocate;
            for (const std::uint32_t p : hits) {
                candidates.push_back(p >= off ? p - off : 0);
            }
        }
        if (off == n - seed_length_) break;
    }
    ops += candidates.size() * kOpsPerCandidate;

    // Chain by diagonal: dedup within the fixed band, not delta — the
    // mapper is oblivious to the caller's error budget.
    dedup_positions(candidates, kBand);

    // Verify at the fixed band; accept into the result under delta.
    const std::uint32_t verify_radius = std::max(delta, kBand);
    const auto stats = verify_candidates(*reference_, codes, strand,
                                         candidates, verify_radius,
                                         /*cap=*/4096, kOpsMyersWord, out);
    ops += stats.ops;
    // Enforce the caller's acceptance threshold after the fact.
    std::erase_if(out, [delta](const core::ReadMapping& m) {
        return m.edit_distance > delta;
    });
    return ops;
}

std::uint64_t BwaMemLike::map_read(const genomics::Read& read,
                                   std::uint32_t delta,
                                   std::vector<core::ReadMapping>& out) {
    std::uint64_t ops =
        map_strand(read.codes, genomics::Strand::Forward, delta, out);
    const auto rc = read.reverse_complement();
    ops += map_strand(rc, genomics::Strand::Reverse, delta, out);
    keep_best_stratum(out);
    return ops;
}

} // namespace repute::baselines
