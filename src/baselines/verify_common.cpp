#include "baselines/verify_common.hpp"

#include <algorithm>

#include "align/myers.hpp"

namespace repute::baselines {

void dedup_positions(std::vector<std::uint32_t>& positions,
                     std::uint32_t radius) {
    std::sort(positions.begin(), positions.end());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        if (kept == 0 || positions[i] > positions[kept - 1] + radius) {
            positions[kept++] = positions[i];
        }
    }
    positions.resize(kept);
}

void keep_best_stratum(std::vector<core::ReadMapping>& mappings) {
    if (mappings.empty()) return;
    std::uint16_t best = mappings.front().edit_distance;
    for (const auto& m : mappings) best = std::min(best, m.edit_distance);
    std::erase_if(mappings, [best](const core::ReadMapping& m) {
        return m.edit_distance != best;
    });
}

VerifyStats verify_candidates(const genomics::Reference& reference,
                              std::span<const std::uint8_t> codes,
                              genomics::Strand strand,
                              std::span<const std::uint32_t> positions,
                              std::uint32_t delta, std::size_t cap,
                              std::uint64_t weights_myers_word,
                              std::vector<core::ReadMapping>& out) {
    VerifyStats stats;
    const align::MyersMatcher matcher(codes);
    const auto n = static_cast<std::uint32_t>(codes.size());
    const auto text_len =
        static_cast<std::uint32_t>(reference.size());
    std::vector<std::uint8_t> window;
    window.reserve(n + 2 * delta);

    for (const std::uint32_t start : positions) {
        if (out.size() >= cap) break;
        const std::uint32_t win_lo = start >= delta ? start - delta : 0;
        if (win_lo >= text_len) continue;
        const std::uint32_t win_len =
            std::min<std::uint32_t>(n + 2 * delta, text_len - win_lo);
        if (win_len + delta < n) continue;

        window.resize(win_len);
        reference.sequence().extract(win_lo, win_len, window.data());
        const auto hit = matcher.best_in(window);
        stats.ops += matcher.scan_cost(win_len) * weights_myers_word;

        if (hit.distance <= delta) {
            core::ReadMapping m;
            m.position = start;
            m.edit_distance = static_cast<std::uint16_t>(hit.distance);
            m.strand = strand;
            out.push_back(m);
            ++stats.accepted;
        }
    }
    return stats;
}

} // namespace repute::baselines
