#include "baselines/yara_like.hpp"

#include <algorithm>

#include "baselines/verify_common.hpp"

namespace repute::baselines {

namespace {
constexpr std::uint64_t kOpsPerSearchNode = 14; // extend + backtrack state
constexpr std::uint64_t kOpsPerLocate = 40;
constexpr std::uint64_t kOpsPerCandidate = 48;
constexpr std::uint64_t kOpsMyersWord = 4;
constexpr std::uint32_t kMaxHitsPerSeed = 4096;
} // namespace

std::vector<std::uint32_t> YaraLike::seed_budgets(std::uint32_t delta,
                                                  std::uint32_t k) {
    // Distribute delta+1 "slots" over k seeds: e_i + 1 per seed.
    std::vector<std::uint32_t> budgets(k, 0);
    const std::uint32_t total = delta + 1;
    const std::uint32_t base = total / k;
    const std::uint32_t extra = total % k;
    for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint32_t slots = base + (i < extra ? 1 : 0);
        budgets[i] = slots > 0 ? slots - 1 : 0;
    }
    return budgets;
}

std::uint64_t YaraLike::map_strand(
    std::span<const std::uint8_t> codes, genomics::Strand strand,
    std::uint32_t delta, std::vector<core::ReadMapping>& out) const {
    const auto n = static_cast<std::uint32_t>(codes.size());
    std::uint64_t ops = 0;

    const std::uint32_t k = std::min(n_seeds_, delta + 1);
    const auto budgets = seed_budgets(delta, k);

    // Equal-length segments; approximate-search each with its budget.
    std::vector<std::uint32_t> candidates;
    std::vector<std::uint32_t> hits;
    for (std::uint32_t s = 0; s < k; ++s) {
        const std::uint32_t seg_start = s * n / k;
        const std::uint32_t seg_end = (s + 1) * n / k;
        index::ApproxSearchStats stats;
        const auto matches = index::approximate_search(
            *fm_, codes.subspan(seg_start, seg_end - seg_start),
            budgets[s], &stats, /*node_budget=*/1u << 18);
        ops += stats.visited_nodes * kOpsPerSearchNode;

        for (const auto& match : matches) {
            if (match.range.count() > kMaxHitsPerSeed) continue;
            hits.clear();
            fm_->locate_range(match.range, kMaxHitsPerSeed, hits);
            ops += hits.size() * kOpsPerLocate;
            for (const std::uint32_t p : hits) {
                candidates.push_back(p >= seg_start ? p - seg_start : 0);
            }
        }
    }
    ops += candidates.size() * kOpsPerCandidate;
    dedup_positions(candidates, delta);

    const auto stats =
        verify_candidates(*reference_, codes, strand, candidates, delta,
                          max_locations_, kOpsMyersWord, out);
    return ops + stats.ops;
}

std::uint64_t YaraLike::map_read(const genomics::Read& read,
                                 std::uint32_t delta,
                                 std::vector<core::ReadMapping>& out) {
    std::uint64_t ops =
        map_strand(read.codes, genomics::Strand::Forward, delta, out);
    const auto rc = read.reverse_complement();
    ops += map_strand(rc, genomics::Strand::Reverse, delta, out);
    keep_best_stratum(out);
    return ops;
}

} // namespace repute::baselines
