#pragma once
// BWA-MEM-style best-mapper (Li 2013 / Li & Durbin 2010 lineage),
// simplified core.
//
// BWA-MEM seeds with (super)maximal exact matches and extends the best
// chains with banded DP; it has no edit-distance parameter, which is why
// its runtime in Tables I/II is a single value per read length. We model
// the seeding as fixed-length exact seeds on a stride (a common SMEM
// approximation), chain by diagonal, and verify with the shared Myers
// kernel at a *fixed* band — the caller's delta only gates which
// alignments are accepted into the result, not the work performed.

#include "baselines/single_device_mapper.hpp"
#include "index/fm_index.hpp"

namespace repute::baselines {

class BwaMemLike final : public SingleDeviceMapper {
public:
    BwaMemLike(const genomics::Reference& reference,
               const index::FmIndex& fm, ocl::Device& device,
               std::uint32_t seed_length = 19, std::uint32_t stride = 11,
               std::uint32_t max_hits_per_seed = 256)
        : SingleDeviceMapper("BWA-MEM", device, /*power_scale=*/0.45),
          reference_(&reference), fm_(&fm), seed_length_(seed_length),
          stride_(stride), max_hits_per_seed_(max_hits_per_seed) {}

    /// The fixed verification band (chosen like BWA's default gap
    /// limits; independent of the caller's delta).
    static constexpr std::uint32_t kBand = 8;

protected:
    std::uint64_t map_read(const genomics::Read& read, std::uint32_t delta,
                           std::vector<core::ReadMapping>& out) override;

private:
    const genomics::Reference* reference_;
    const index::FmIndex* fm_;
    std::uint32_t seed_length_;
    std::uint32_t stride_;
    std::uint32_t max_hits_per_seed_;

    std::uint64_t map_strand(std::span<const std::uint8_t> codes,
                             genomics::Strand strand, std::uint32_t delta,
                             std::vector<core::ReadMapping>& out) const;
};

} // namespace repute::baselines
