#include "baselines/hobbes3_like.hpp"

#include <algorithm>
#include <limits>

#include "baselines/verify_common.hpp"

namespace repute::baselines {

namespace {
constexpr std::uint64_t kOpsPerLookup = 4;
constexpr std::uint64_t kOpsPerDpCell = 2;
constexpr std::uint64_t kOpsPerHit = 3;
constexpr std::uint64_t kOpsMyersWord = 4;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
} // namespace

void Hobbes3Like::prepare(const genomics::ReadBatch& batch,
                          std::uint32_t delta) {
    // The signature length must allow delta+1 disjoint signatures.
    std::uint32_t q = q_;
    while (q > 4 && static_cast<std::uint64_t>(q) * (delta + 1) >
                        batch.read_length) {
        --q;
    }
    if (!index_ || index_->q() != q) {
        index_ = std::make_unique<QGramIndex>(*reference_, q);
    }
}

std::uint64_t Hobbes3Like::map_strand(
    std::span<const std::uint8_t> codes, genomics::Strand strand,
    std::uint32_t delta, std::vector<core::ReadMapping>& out) const {
    const auto n = static_cast<std::uint32_t>(codes.size());
    const std::uint32_t q = index_->q();
    const std::uint32_t n_sig = delta + 1;
    std::uint64_t ops = 0;

    // Occurrence count of the q-gram at every read offset.
    const std::uint32_t n_offsets = n - q + 1;
    std::vector<std::uint32_t> freq(n_offsets);
    std::vector<std::uint64_t> keys(n_offsets);
    std::uint64_t key = QGramIndex::pack(codes, q);
    for (std::uint32_t o = 0; o < n_offsets; ++o) {
        keys[o] = key;
        freq[o] =
            static_cast<std::uint32_t>(index_->occurrences(key).size());
        ops += kOpsPerLookup;
        if (o + 1 < n_offsets) key = index_->roll(key, codes[o + q]);
    }

    // DP (dynamic signature placement): best[s][o] = minimum total
    // occurrence count when placing s more signatures at offsets >= o,
    // signatures q apart (non-overlapping).
    //   best[0][o] = 0
    //   best[s][o] = min(best[s][o+1],            skip offset o
    //                    freq[o] + best[s-1][o+q]) place one at o
    const std::size_t stride = n_offsets + 1;
    std::vector<std::uint32_t> best((n_sig + 1) * stride, kInf);
    for (std::size_t o = 0; o <= n_offsets; ++o) best[o] = 0;
    for (std::uint32_t s = 1; s <= n_sig; ++s) {
        for (std::uint32_t o = n_offsets; o-- > 0;) {
            ops += kOpsPerDpCell;
            std::uint32_t value = best[s * stride + o + 1];
            const std::uint32_t after = o + q;
            if (after <= n_offsets) {
                const std::uint32_t tail = best[(s - 1) * stride + after];
                if (tail != kInf) {
                    const std::uint32_t placed =
                        freq[o] > kInf - tail ? kInf : freq[o] + tail;
                    value = std::min(value, placed);
                }
            }
            best[s * stride + o] = value;
        }
    }

    // Backtrack the chosen offsets (leftmost optimal placement).
    std::vector<std::uint32_t> chosen;
    chosen.reserve(n_sig);
    {
        std::uint32_t s = n_sig, o = 0;
        while (s > 0 && o < n_offsets) {
            const std::uint32_t here = best[s * stride + o];
            if (here == kInf) break;
            const std::uint32_t after = o + q;
            const std::uint32_t tail =
                after <= n_offsets ? best[(s - 1) * stride + after] : kInf;
            if (tail != kInf && freq[o] != kInf &&
                tail <= kInf - freq[o] && freq[o] + tail == here) {
                chosen.push_back(o);
                o = after;
                --s;
            } else {
                ++o;
            }
        }
    }

    // Gather candidate diagonals from the chosen signatures. Hobbes3
    // verifies occurrences signature-by-signature (streaming, in-place
    // verification) — no cross-signature diagonal dedup, so windows
    // shared by several signatures are re-verified.
    std::vector<std::uint32_t> candidates;
    for (const std::uint32_t off : chosen) {
        const auto occ = index_->occurrences(keys[off]);
        ops += occ.size() * kOpsPerHit;
        for (const std::uint32_t p : occ) {
            candidates.push_back(p >= off ? p - off : 0);
        }
    }
    std::sort(candidates.begin(), candidates.end());

    const auto stats =
        verify_candidates(*reference_, codes, strand, candidates, delta,
                          max_locations_, kOpsMyersWord, out);
    return ops + stats.ops;
}

std::uint64_t Hobbes3Like::map_read(const genomics::Read& read,
                                    std::uint32_t delta,
                                    std::vector<core::ReadMapping>& out) {
    std::uint64_t ops =
        map_strand(read.codes, genomics::Strand::Forward, delta, out);
    const auto rc = read.reverse_complement();
    ops += map_strand(rc, genomics::Strand::Reverse, delta, out);
    return ops;
}

} // namespace repute::baselines
