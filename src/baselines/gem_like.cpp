#include "baselines/gem_like.hpp"

#include <algorithm>

#include "baselines/verify_common.hpp"

namespace repute::baselines {

namespace {
constexpr std::uint64_t kOpsPerFmExtend = 8;
constexpr std::uint64_t kOpsPerLocate = 40;
constexpr std::uint64_t kOpsPerCandidate = 48;
constexpr std::uint64_t kOpsMyersWord = 4;
constexpr std::uint32_t kMinRegionLength = 10;
} // namespace

std::uint64_t GemLike::map_strand(
    std::span<const std::uint8_t> codes, genomics::Strand strand,
    std::uint32_t delta, std::vector<core::ReadMapping>& out) const {
    const auto n = static_cast<std::uint32_t>(codes.size());
    std::uint64_t ops = 0;

    // Adaptive region profile: sweep right-to-left (FM backward search
    // prepends), closing a region once it is specific enough or at its
    // length cap. The region count is data-driven, not delta-driven.
    std::vector<std::uint32_t> candidates;
    std::vector<std::uint32_t> hits;
    std::uint32_t end = n;
    while (end >= kMinRegionLength) {
        auto range = fm_->whole_range();
        std::uint32_t start = end;
        while (start > 0 && end - start < max_region_length_) {
            const std::uint32_t len = end - start;
            if (len >= kMinRegionLength &&
                (range.empty() || range.count() <= threshold_)) {
                break;
            }
            --start;
            range = fm_->extend(range, codes[start]);
            ++ops; // counted below at fm weight
        }
        ops += (end - start) * (kOpsPerFmExtend - 1);
        if (!range.empty() && range.count() <= max_hits_per_region_) {
            hits.clear();
            fm_->locate_range(range, max_hits_per_region_, hits);
            ops += hits.size() * kOpsPerLocate;
            for (const std::uint32_t p : hits) {
                candidates.push_back(p >= start ? p - start : 0);
            }
        }
        if (start == 0) break;
        end = start;
    }
    ops += candidates.size() * kOpsPerCandidate;
    // GEM verifies region matches progressively (per region, streaming)
    // rather than collapsing diagonals across regions first.
    std::sort(candidates.begin(), candidates.end());

    const auto stats =
        verify_candidates(*reference_, codes, strand, candidates, delta,
                          /*cap=*/4096, kOpsMyersWord, out);
    return ops + stats.ops;
}

std::uint64_t GemLike::map_read(const genomics::Read& read,
                                std::uint32_t delta,
                                std::vector<core::ReadMapping>& out) {
    std::uint64_t ops =
        map_strand(read.codes, genomics::Strand::Forward, delta, out);
    const auto rc = read.reverse_complement();
    ops += map_strand(rc, genomics::Strand::Reverse, delta, out);
    keep_best_stratum(out);
    return ops;
}

} // namespace repute::baselines
