#pragma once
// Shared chassis for the baseline mappers.
//
// The tools REPUTE is compared against (RazerS3, Hobbes3, Yara, BWA-MEM,
// GEM) are multi-threaded CPU programs: one device, embarrassingly
// parallel over reads. This base class runs a subclass's per-read body
// through the device model so every tool's time and energy come from
// the same accounting, making the cross-tool tables apples-to-apples.
//
// The per-(n, delta) preparation a tool performs (e.g. RazerS3 picking
// its q-gram length and building the q-gram index) happens in prepare()
// and is excluded from mapping time, matching the paper ("we have
// compared, only, the mapping times").

#include <string>

#include "core/mapping.hpp"
#include "ocl/device.hpp"

namespace repute::baselines {

class SingleDeviceMapper : public core::Mapper {
public:
    core::MapResult map(const genomics::ReadBatch& batch,
                        std::uint32_t delta) final;

    std::string_view name() const noexcept final { return name_; }
    double power_scale() const noexcept final { return power_scale_; }

protected:
    /// `device` must outlive the mapper.
    SingleDeviceMapper(std::string name, ocl::Device& device,
                       double power_scale)
        : name_(std::move(name)), device_(&device),
          power_scale_(power_scale) {}

    /// Called once per map() before the kernel runs; not charged to
    /// mapping time.
    virtual void prepare(const genomics::ReadBatch& batch,
                         std::uint32_t delta) {
        (void)batch;
        (void)delta;
    }

    /// Per-read body; returns modeled ops, fills `out` (pre-cleared).
    virtual std::uint64_t map_read(const genomics::Read& read,
                                   std::uint32_t delta,
                                   std::vector<core::ReadMapping>& out) = 0;

    /// Modeled per-thread scratch (occupancy is irrelevant on CPUs but
    /// keeps the accounting uniform).
    virtual std::uint64_t scratch_bytes(std::size_t read_length,
                                        std::uint32_t delta) const {
        (void)read_length;
        (void)delta;
        return 8 * 1024;
    }

    ocl::Device& device() const noexcept { return *device_; }

private:
    std::string name_;
    ocl::Device* device_;
    double power_scale_;
};

} // namespace repute::baselines
