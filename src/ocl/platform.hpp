#pragma once
// Calibrated platforms reproducing the paper's two systems (§III):
//
//   System 1: Intel Core i7-2600 (4C/8T @ 3.4 GHz, 16 GB) +
//             2x GeForce GTX 590 (1.5 GB each)
//   System 2: HiKey970 SoC — ARM Cortex-A73 quad + Cortex-A53 quad,
//             6 GB shared RAM
//
// Throughputs are calibrated so that the *relative* speeds match the
// paper (each GTX 590 ~0.75x the i7 on this divergent integer kernel;
// the whole HiKey970 ~0.42x the i7), and absolute scale roughly matches
// Table I (~250k reads/s for REPUTE-cpu at n=100, delta=3). Power deltas
// are fitted to Table IV. See DESIGN.md §2 for the substitution note.

#include <memory>
#include <string_view>
#include <vector>

#include "ocl/device.hpp"

namespace repute::ocl {

class Platform {
public:
    /// System 1 devices: "i7-2600", "gtx590-0", "gtx590-1".
    static Platform system1();
    /// System 2 devices: "hikey970-a73", "hikey970-a53".
    static Platform system2();
    /// Custom platform.
    Platform(std::string name, double idle_watts,
             std::vector<DeviceProfile> profiles);

    const std::string& name() const noexcept { return name_; }
    /// Wall-socket idle power of the whole system (paper §III-D).
    double idle_watts() const noexcept { return idle_watts_; }

    std::vector<Device*> devices();
    /// Throws std::out_of_range when no device carries `name`.
    Device& device(std::string_view device_name);
    Device* find(std::string_view device_name) noexcept;

    /// Resets accumulated busy time on every device.
    void reset_busy_times() noexcept;

private:
    std::string name_;
    double idle_watts_ = 0.0;
    std::vector<std::unique_ptr<Device>> devices_;
};

/// Individual profile builders (exposed for tests and custom platforms).
DeviceProfile profile_i7_2600();
DeviceProfile profile_gtx590(int ordinal);
DeviceProfile profile_a73_cluster();
DeviceProfile profile_a53_cluster();

} // namespace repute::ocl
