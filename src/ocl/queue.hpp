#pragma once
// In-order command queue with asynchronous kernel launches.
//
// REPUTE's host program creates one queue per device, enqueues the
// mapping kernel on each with its share of the reads, and waits on all
// events — the task-parallel multi-device pattern of the paper (§III-B).
// enqueue() returns immediately; the kernel runs on a launcher thread
// using the device's worker pool. Event::wait() joins and yields the
// modeled LaunchStats.
//
// In-order means in order: each enqueue is implicitly chained on the
// queue's previous event (clEnqueue semantics on an in-order queue), so
// launches submitted through one queue start on the device in
// submission order — which keeps their modeled start times, and hence
// trace spans, deterministic. When an obs::TraceRecorder is installed,
// every completed launch records a span on (device, queue id).

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ocl/context.hpp"
#include "ocl/device.hpp"

namespace repute::ocl {

/// Kernel launch description (the NDRange plus the cost-model inputs).
struct KernelLaunch {
    std::string name;
    std::size_t n_items = 0;
    Device::WorkItem body; ///< must be safe to call concurrently
    std::uint64_t scratch_bytes_per_item = 0;
};

class Event {
public:
    Event() = default;

    /// Blocks until the kernel completes; rethrows kernel exceptions
    /// (including OclError, on every call). Idempotent, and safe to
    /// call concurrently from several threads — all copies of an Event
    /// share one mutex-guarded completion state, so scheduler workers
    /// may wait on the same event without external synchronization.
    const LaunchStats& wait();

    bool valid() const noexcept { return state_ != nullptr; }

private:
    friend class CommandQueue;
    struct State {
        std::shared_future<LaunchStats> future;
        std::mutex mutex;
        LaunchStats stats; ///< written once under mutex, then immutable
        bool done = false;
    };
    explicit Event(std::shared_future<LaunchStats> future);

    std::shared_ptr<State> state_;
};

class CommandQueue {
public:
    /// The device must outlive the queue. `queue_id` labels this
    /// queue's track in trace exports (tid within the device).
    explicit CommandQueue(Device& device, std::uint64_t queue_id = 0)
        : device_(&device), queue_id_(queue_id) {}

    CommandQueue(const CommandQueue&) = delete;
    CommandQueue& operator=(const CommandQueue&) = delete;

    Device& device() const noexcept { return *device_; }
    std::uint64_t queue_id() const noexcept { return queue_id_; }

    /// Asynchronous launch; kernels on one queue execute in order —
    /// each launch waits on the queue's previous event — while queues
    /// on different devices overlap.
    Event enqueue(KernelLaunch launch);

    /// Launch with an event wait-list (OpenCL clEnqueueNDRangeKernel
    /// semantics): the kernel starts only after every event in
    /// `wait_list` (plus the queue's previous event) completed — on the
    /// modeled clock too: the launch starts no earlier than the latest
    /// wait-list event end, and any gap forced on the compute timeline
    /// is LaunchStats::queue_wait_seconds. A failed dependency fails
    /// this event too.
    Event enqueue(KernelLaunch launch, std::vector<Event> wait_list);

    /// Like the wait-list overload, with a second, *ordering-only*
    /// dependency list: the launch starts after every `reuse_list`
    /// event settled, but a failed reuse dependency neither fails this
    /// event nor contributes ready time (a failed launch never advanced
    /// the modeled clock and never touched its buffers, so reusing its
    /// buffer needs no wait). This is how double-buffered staging
    /// chains "buffer free again" dependencies without letting one
    /// injected kernel fault cascade through every later stage.
    Event enqueue(KernelLaunch launch, std::vector<Event> wait_list,
                  std::vector<Event> reuse_list);

    /// Asynchronously stages `bytes` host-to-device into `buffer` once
    /// every `wait_list` event completed (`reuse_list` as above). The
    /// modeled duration comes from the device's TransferSpec (zero when
    /// unmodeled) on the h2d DMA channel, which overlaps compute; the
    /// buffer's and device's transfer counters advance either way.
    /// Writes on one queue serialize against each other, not against
    /// kernels. Throws std::invalid_argument when `bytes` exceeds the
    /// buffer size.
    Event enqueue_write(const Buffer& buffer, std::uint64_t bytes,
                        std::vector<Event> wait_list = {},
                        std::vector<Event> reuse_list = {});

    /// Device-to-host counterpart of enqueue_write (d2h DMA channel).
    Event enqueue_read(const Buffer& buffer, std::uint64_t bytes,
                       std::vector<Event> wait_list = {},
                       std::vector<Event> reuse_list = {});

    /// Synchronous convenience: enqueue + wait.
    LaunchStats run(KernelLaunch launch);

private:
    Event enqueue_transfer(const Buffer& buffer, std::uint64_t bytes,
                           bool host_to_device,
                           std::vector<Event> wait_list,
                           std::vector<Event> reuse_list);

    Device* device_;
    std::uint64_t queue_id_;
    std::mutex order_mutex_; ///< guards the chain tails across threads
    Event last_;             ///< tail of the in-order kernel chain
    Event last_write_;       ///< tail of the h2d transfer chain
    Event last_read_;        ///< tail of the d2h transfer chain
};

} // namespace repute::ocl
