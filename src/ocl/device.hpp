#pragma once
// Simulated OpenCL device.
//
// Substitution for a real OpenCL 1.2 runtime (none is available in this
// environment — see DESIGN.md §2). The programming model is preserved:
// devices expose compute units, global/private memory ceilings and
// in-order queues; kernels are dispatched as NDRanges of independent
// work-items. Execution is real (host threads compute real results);
// *time* is modeled: each work-item reports the abstract operations it
// performed (FM extensions, DP cells, Myers word-ops, SA locates) and
// the device converts operations to seconds through a calibrated
// throughput, with a GPU-style occupancy penalty when per-item scratch
// memory limits residency. This keeps every trade-off the paper explores
// (workload splits, Fig. 3; scratch-vs-s_min, Fig. 4; out-of-resource
// failures) live in the reproduction while making results deterministic
// and host-independent.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/prng.hpp"
#include "util/threadpool.hpp"

namespace repute::ocl {

enum class DeviceType { Cpu, Gpu, Embedded };

/// Error codes mirroring the OpenCL status values the paper's host code
/// has to handle.
enum class OclStatus {
    Success,
    OutOfResources,     ///< per-item scratch exceeds private memory
    MemObjectAllocFail, ///< global memory exhausted
    InvalidBufferSize,  ///< single buffer above the 1/4-RAM ceiling
};

class OclError : public std::runtime_error {
public:
    OclError(OclStatus status, const std::string& message)
        : std::runtime_error(message), status_(status) {}
    OclStatus status() const noexcept { return status_; }

private:
    OclStatus status_;
};

struct PowerSpec {
    double active_watts = 0.0; ///< delta over system idle when busy
};

/// Modeled host<->device transfer channel (PCIe link, SoC interconnect).
/// The default — zero bandwidth, zero latency — leaves transfers
/// *unmodeled*: enqueue_write/enqueue_read still count bytes but take
/// zero modeled time, so legacy profiles and every pinned modeled-time
/// expectation stay bit-identical. Benches and sessions opt in via
/// Device::set_transfer_spec().
struct TransferSpec {
    double bytes_per_second = 0.0; ///< sustained link bandwidth
    double latency_seconds = 0.0;  ///< fixed per-transfer setup cost

    bool modeled() const noexcept {
        return bytes_per_second > 0.0 || latency_seconds > 0.0;
    }
    /// Modeled duration of one transfer: latency + bytes/bandwidth
    /// (0 when unmodeled).
    double seconds_for(std::uint64_t bytes) const noexcept {
        if (!modeled()) return 0.0;
        double seconds = latency_seconds;
        if (bytes_per_second > 0.0) {
            seconds += static_cast<double>(bytes) / bytes_per_second;
        }
        return seconds;
    }
};

struct DeviceProfile {
    std::string name;
    DeviceType type = DeviceType::Cpu;
    std::uint32_t compute_units = 1;
    /// Modeled work-item operations per second per compute unit.
    double ops_per_unit_per_second = 1e8;
    std::uint64_t global_memory_bytes = 1ULL << 30;
    /// Per-compute-unit scratch pool shared by resident work-items.
    std::uint64_t private_memory_per_unit = 64 * 1024;
    /// Resident work-items per unit needed to hide latency (1 for CPUs;
    /// >1 for GPUs, where low occupancy stalls the pipeline).
    std::uint32_t min_resident_items = 1;
    double dispatch_overhead_seconds = 1e-4;
    PowerSpec power;
    /// Host<->device transfer model (unmodeled by default).
    TransferSpec transfer;

    /// OpenCL 1.2 restriction (paper §III-b): one allocation may not
    /// exceed a quarter of device memory.
    std::uint64_t max_single_allocation() const noexcept {
        return global_memory_bytes / 4;
    }
};

/// Aggregate statistics of one kernel execution.
struct LaunchStats {
    std::uint64_t items = 0;
    std::uint64_t total_ops = 0;
    std::uint64_t scratch_bytes_per_item = 0;
    /// Device-clock time the launch began (the device's accumulated
    /// busy seconds when it was dispatched) — the timebase trace spans
    /// are recorded against. Meaningless for aggregated stats.
    double start_seconds = 0.0;
    double seconds = 0.0;   ///< modeled duration on the device
    /// Time this launch sat idle on the device waiting for its wait-list
    /// dependencies (staged input / free buffer) after the device itself
    /// became available. A stall, not busy time: Device::busy_seconds()
    /// and DeviceScheduleStats::busy_seconds exclude it so utilization
    /// can no longer exceed 100% when events are chained via wait-lists.
    double queue_wait_seconds = 0.0;
    double utilization = 1.0;
};

/// Cumulative host<->device transfer accounting for one device.
/// "written" = host-to-device staging, "read" = device-to-host drains —
/// the clEnqueueWriteBuffer / clEnqueueReadBuffer directions.
struct TransferStats {
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    double write_seconds = 0.0; ///< modeled h2d DMA time
    double read_seconds = 0.0;  ///< modeled d2h DMA time
};

/// Deterministic fault-injection plan (testing / resilience work).
/// Faults fire at dispatch, before any work-item runs: a failed launch
/// performs no work and writes no output, so requeueing it elsewhere
/// reproduces exactly the state a clean retry would — the model of a
/// clEnqueueNDRangeKernel that errors out. Any combination of the
/// trigger fields may be armed at once.
struct FaultPlan {
    /// Fail the Nth execute() call after arming (1-based; 0 = never).
    std::uint64_t fail_on_launch = 0;
    /// With `fail_on_launch`: fail every launch from the Nth onward
    /// (a device dying mid-batch) instead of only the Nth.
    bool fail_forever = false;
    /// Independent per-launch failure probability (transient faults),
    /// drawn from a stream seeded by `seed` — the failure schedule is a
    /// pure function of the device's launch ordinals.
    double transient_rate = 0.0;
    std::uint64_t seed = 0x5eedf417;
    /// Status carried by the injected OclError.
    OclStatus status = OclStatus::OutOfResources;
};

class Device {
public:
    explicit Device(DeviceProfile profile);

    const DeviceProfile& profile() const noexcept { return profile_; }
    const std::string& name() const noexcept { return profile_.name; }

    /// Work-item body: receives the global id, returns the abstract ops
    /// it consumed.
    using WorkItem = std::function<std::uint64_t(std::size_t)>;

    /// Executes `n_items` work-items (blocking). Throws OclError
    /// (OutOfResources) when `scratch_bytes_per_item` exceeds private
    /// memory. Thread-safe; concurrent callers serialize on the device
    /// like in-order queues sharing hardware. `ready_seconds` is the
    /// device-clock instant the launch's inputs are available (the max
    /// end of its wait-list events): the launch starts no earlier, and
    /// any gap it forces on the compute timeline is reported as
    /// LaunchStats::queue_wait_seconds rather than folded into
    /// busy_seconds().
    LaunchStats execute(std::size_t n_items, const WorkItem& body,
                        std::uint64_t scratch_bytes_per_item,
                        double ready_seconds = 0.0);

    /// Advances the modeled DMA clock for one host<->device transfer of
    /// `bytes` (write = host-to-device). h2d and d2h run on independent
    /// channels (full-duplex link) and both overlap compute; within one
    /// direction transfers serialize. Returns stats on the same device
    /// clock as execute() (items/total_ops are 0). Zero modeled duration
    /// when the profile's TransferSpec is unmodeled — bytes still count.
    LaunchStats transfer(std::uint64_t bytes, bool host_to_device,
                         double ready_seconds = 0.0);

    /// Modeled occupancy-adjusted utilization for a given per-item
    /// scratch requirement (1.0 = full throughput).
    double utilization_for_scratch(
        std::uint64_t scratch_bytes_per_item) const noexcept;

    /// Total modeled busy seconds accumulated by execute() calls — pure
    /// kernel time, excluding queue-wait stalls and DMA transfers.
    double busy_seconds() const noexcept;
    /// Resets the compute clock, both DMA clocks and transfer counters.
    void reset_busy_time() noexcept;

    /// Installs a transfer model (benches/sessions opt in per device;
    /// built-in profiles default to unmodeled).
    void set_transfer_spec(const TransferSpec& spec) noexcept;
    /// Cumulative transfer accounting since construction / reset.
    TransferStats transfer_stats() const noexcept;

    /// Arms fault injection for subsequent launches (resets the launch
    /// counter and the transient stream). Thread-safe.
    void inject_faults(const FaultPlan& plan);
    /// Disarms fault injection.
    void clear_faults();
    /// Launches dispatched since the fault plan was armed (0 when
    /// disarmed); failed dispatches count.
    std::uint64_t fault_launches() const;

    /// Bytes currently allocated on the device (maintained by Context).
    std::uint64_t allocated_bytes() const noexcept {
        return allocated_.load(std::memory_order_relaxed);
    }

private:
    friend class Context;
    friend class Buffer;

    /// Throws per the armed FaultPlan; called at dispatch under
    /// exec_mutex_ so launch ordinals are well-defined per device.
    void maybe_inject_fault();

    DeviceProfile profile_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::mutex exec_mutex_;   ///< serializes launches (in-order device)
    double busy_seconds_ = 0.0;   ///< pure exec time (no waits, no DMA)
    double compute_clock_ = 0.0;  ///< frontier of the in-order timeline
    double h2d_clock_ = 0.0;      ///< host-to-device DMA channel frontier
    double d2h_clock_ = 0.0;      ///< device-to-host DMA channel frontier
    TransferStats xfer_;
    mutable std::mutex time_mutex_;
    /// Atomic: mappers sharing one device (a MappingSession pool)
    /// allocate and release from concurrent map workers.
    std::atomic<std::uint64_t> allocated_{0};

    mutable std::mutex fault_mutex_;
    bool fault_armed_ = false;
    FaultPlan fault_plan_;
    std::uint64_t fault_launches_ = 0;
    util::Xoshiro256 fault_rng_;
};

} // namespace repute::ocl
