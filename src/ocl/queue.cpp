#include "ocl/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace repute::ocl {

Event::Event(std::shared_future<LaunchStats> future)
    : state_(std::make_shared<State>()) {
    state_->future = std::move(future);
}

const LaunchStats& Event::wait() {
    if (!state_) {
        throw std::future_error(std::future_errc::no_state);
    }
    // Serializing on the state mutex both caches the stats exactly once
    // and keeps shared_future::get() off concurrent callers (get() on
    // one shared_future *object* is not thread-safe). A failed kernel
    // rethrows to every waiter.
    const std::lock_guard lock(state_->mutex);
    if (!state_->done) {
        state_->stats = state_->future.get();
        state_->done = true;
    }
    return state_->stats;
}

namespace {

/// Settles both dependency lists and returns the modeled instant the
/// dependent operation's inputs are ready: the max end (start + seconds)
/// over all completed events. A throwing `wait_list` dependency
/// propagates; a throwing `reuse_list` dependency is absorbed and
/// contributes no ready time — a failed launch never advanced the
/// modeled clock and never touched its buffers, so reuse needs no wait.
double settle_dependencies(std::vector<Event>& wait_list,
                           std::vector<Event>& reuse_list) {
    double ready = 0.0;
    for (Event& dependency : wait_list) {
        const LaunchStats& dep = dependency.wait();
        ready = std::max(ready, dep.start_seconds + dep.seconds);
    }
    for (Event& dependency : reuse_list) {
        try {
            const LaunchStats& dep = dependency.wait();
            ready = std::max(ready, dep.start_seconds + dep.seconds);
        } catch (...) {
            // Ordering only; the producer's error surfaces through its
            // own event.
        }
    }
    return ready;
}

} // namespace

Event CommandQueue::enqueue(KernelLaunch launch) {
    return enqueue(std::move(launch), {}, {});
}

Event CommandQueue::enqueue(KernelLaunch launch,
                            std::vector<Event> wait_list) {
    return enqueue(std::move(launch), std::move(wait_list), {});
}

Event CommandQueue::enqueue(KernelLaunch launch,
                            std::vector<Event> wait_list,
                            std::vector<Event> reuse_list) {
    Device* device = device_;
    const std::uint64_t queue_id = queue_id_;

    // Chain on the queue's previous event so the in-order contract
    // holds across launcher threads (std::async tasks would otherwise
    // race for the device and start out of submission order). The chain
    // only orders: a failed predecessor does not fail this launch (the
    // scheduler retries chunks on a queue whose last launch faulted).
    const std::lock_guard order_lock(order_mutex_);
    Event prev = last_;

    auto future =
        std::async(std::launch::async,
                   [device, queue_id, prev, launch = std::move(launch),
                    wait_list = std::move(wait_list),
                    reuse_list = std::move(reuse_list)]() mutable
                   -> LaunchStats {
                       // Dependencies first; a throwing wait-list
                       // dependency propagates and fails this event too.
                       const double ready =
                           settle_dependencies(wait_list, reuse_list);
                       if (prev.valid()) {
                           try {
                               prev.wait();
                           } catch (...) {
                               // Ordering only; the predecessor's error
                               // surfaces through its own event.
                           }
                       }
                       const LaunchStats stats =
                           device->execute(launch.n_items, launch.body,
                                           launch.scratch_bytes_per_item,
                                           ready);
                       if (auto* recorder = obs::trace()) {
                           obs::TraceSpan span;
                           span.name = launch.name;
                           span.device = device->name();
                           span.track = queue_id;
                           span.start_seconds = stats.start_seconds;
                           span.duration_seconds = stats.seconds;
                           recorder->record(std::move(span));
                       }
                       return stats;
                   })
            .share();
    Event event{std::move(future)};
    last_ = event;
    return event;
}

Event CommandQueue::enqueue_write(const Buffer& buffer, std::uint64_t bytes,
                                  std::vector<Event> wait_list,
                                  std::vector<Event> reuse_list) {
    return enqueue_transfer(buffer, bytes, /*host_to_device=*/true,
                            std::move(wait_list), std::move(reuse_list));
}

Event CommandQueue::enqueue_read(const Buffer& buffer, std::uint64_t bytes,
                                 std::vector<Event> wait_list,
                                 std::vector<Event> reuse_list) {
    return enqueue_transfer(buffer, bytes, /*host_to_device=*/false,
                            std::move(wait_list), std::move(reuse_list));
}

Event CommandQueue::enqueue_transfer(const Buffer& buffer,
                                     std::uint64_t bytes,
                                     bool host_to_device,
                                     std::vector<Event> wait_list,
                                     std::vector<Event> reuse_list) {
    if (!buffer.valid()) {
        throw std::invalid_argument("enqueue transfer on a released buffer");
    }
    if (bytes > buffer.bytes()) {
        throw std::invalid_argument(
            "transfer of " + std::to_string(bytes) + " bytes overruns '" +
            buffer.name() + "' (" + std::to_string(buffer.bytes()) +
            " bytes)");
    }
    Device* device = device_;
    // The task captures the shared counter block, not the Buffer: the
    // handle may be moved or released while the transfer is in flight.
    std::shared_ptr<BufferXfer> xfer = buffer.xfer();
    std::string buffer_name = buffer.name();

    // Transfers serialize per direction (one DMA engine per channel) so
    // channel-clock assignment is deterministic, but chain neither on
    // kernels nor on the opposite direction — staging batch k+1 overlaps
    // both compute and the drain of batch k.
    const std::lock_guard order_lock(order_mutex_);
    Event prev = host_to_device ? last_write_ : last_read_;

    auto future =
        std::async(std::launch::async,
                   [device, bytes, host_to_device, prev,
                    xfer = std::move(xfer),
                    buffer_name = std::move(buffer_name),
                    wait_list = std::move(wait_list),
                    reuse_list = std::move(reuse_list)]() mutable
                   -> LaunchStats {
                       const double ready =
                           settle_dependencies(wait_list, reuse_list);
                       if (prev.valid()) {
                           try {
                               prev.wait();
                           } catch (...) {
                               // Ordering only.
                           }
                       }
                       const LaunchStats stats =
                           device->transfer(bytes, host_to_device, ready);
                       if (host_to_device) {
                           xfer->bytes_written.fetch_add(
                               bytes, std::memory_order_relaxed);
                           xfer->writes.fetch_add(1,
                                                  std::memory_order_relaxed);
                       } else {
                           xfer->bytes_read.fetch_add(
                               bytes, std::memory_order_relaxed);
                           xfer->reads.fetch_add(1,
                                                 std::memory_order_relaxed);
                       }
                       if (auto* metrics = obs::metrics()) {
                           const char* direction = host_to_device
                                                       ? "bytes_written"
                                                       : "bytes_read";
                           metrics
                               ->counter(std::string("xfer.") + direction)
                               .add(bytes);
                           metrics
                               ->counter(host_to_device ? "xfer.writes"
                                                        : "xfer.reads")
                               .add();
                           metrics
                               ->counter("xfer.buf." + buffer_name + "." +
                                         direction)
                               .add(bytes);
                           if (stats.seconds > 0.0) {
                               metrics->histogram("xfer.seconds")
                                   .observe(stats.seconds);
                           }
                       }
                       // Zero-duration (unmodeled) transfers stay out of
                       // the trace so legacy exports are byte-identical.
                       if (stats.seconds > 0.0) {
                           if (auto* recorder = obs::trace()) {
                               obs::TraceSpan span;
                               span.name =
                                   (host_to_device ? "h2d:" : "d2h:") +
                                   buffer_name;
                               span.device = device->name();
                               span.track = host_to_device
                                                ? obs::kXferWriteTrack
                                                : obs::kXferReadTrack;
                               span.start_seconds = stats.start_seconds;
                               span.duration_seconds = stats.seconds;
                               span.detail =
                                   std::to_string(bytes) + " bytes";
                               recorder->record(std::move(span));
                           }
                       }
                       return stats;
                   })
            .share();
    Event event{std::move(future)};
    (host_to_device ? last_write_ : last_read_) = event;
    return event;
}

LaunchStats CommandQueue::run(KernelLaunch launch) {
    return enqueue(std::move(launch)).wait();
}

} // namespace repute::ocl
