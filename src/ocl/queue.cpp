#include "ocl/queue.hpp"

namespace repute::ocl {

const LaunchStats& Event::wait() {
    if (!done_) {
        stats_ = future_.get();
        done_ = true;
    }
    return stats_;
}

Event CommandQueue::enqueue(KernelLaunch launch) {
    return enqueue(std::move(launch), {});
}

Event CommandQueue::enqueue(KernelLaunch launch,
                            std::vector<Event> wait_list) {
    Device* device = device_;
    auto future =
        std::async(std::launch::async,
                   [device, launch = std::move(launch),
                    wait_list = std::move(wait_list)]() mutable
                   -> LaunchStats {
                       // Dependencies first; a throwing dependency
                       // propagates and fails this event as well.
                       for (Event& dependency : wait_list) {
                           dependency.wait();
                       }
                       return device->execute(launch.n_items, launch.body,
                                              launch.scratch_bytes_per_item);
                   })
            .share();
    return Event(std::move(future));
}

LaunchStats CommandQueue::run(KernelLaunch launch) {
    return enqueue(std::move(launch)).wait();
}

} // namespace repute::ocl
