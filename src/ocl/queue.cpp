#include "ocl/queue.hpp"

#include "obs/trace.hpp"

namespace repute::ocl {

Event::Event(std::shared_future<LaunchStats> future)
    : state_(std::make_shared<State>()) {
    state_->future = std::move(future);
}

const LaunchStats& Event::wait() {
    if (!state_) {
        throw std::future_error(std::future_errc::no_state);
    }
    // Serializing on the state mutex both caches the stats exactly once
    // and keeps shared_future::get() off concurrent callers (get() on
    // one shared_future *object* is not thread-safe). A failed kernel
    // rethrows to every waiter.
    const std::lock_guard lock(state_->mutex);
    if (!state_->done) {
        state_->stats = state_->future.get();
        state_->done = true;
    }
    return state_->stats;
}

Event CommandQueue::enqueue(KernelLaunch launch) {
    return enqueue(std::move(launch), {});
}

Event CommandQueue::enqueue(KernelLaunch launch,
                            std::vector<Event> wait_list) {
    Device* device = device_;
    const std::uint64_t queue_id = queue_id_;

    // Chain on the queue's previous event so the in-order contract
    // holds across launcher threads (std::async tasks would otherwise
    // race for the device and start out of submission order). The chain
    // only orders: a failed predecessor does not fail this launch (the
    // scheduler retries chunks on a queue whose last launch faulted).
    const std::lock_guard order_lock(order_mutex_);
    Event prev = last_;

    auto future =
        std::async(std::launch::async,
                   [device, queue_id, prev, launch = std::move(launch),
                    wait_list = std::move(wait_list)]() mutable
                   -> LaunchStats {
                       // Dependencies first; a throwing dependency
                       // propagates and fails this event as well.
                       for (Event& dependency : wait_list) {
                           dependency.wait();
                       }
                       if (prev.valid()) {
                           try {
                               prev.wait();
                           } catch (...) {
                               // Ordering only; the predecessor's error
                               // surfaces through its own event.
                           }
                       }
                       const LaunchStats stats =
                           device->execute(launch.n_items, launch.body,
                                           launch.scratch_bytes_per_item);
                       if (auto* recorder = obs::trace()) {
                           obs::TraceSpan span;
                           span.name = launch.name;
                           span.device = device->name();
                           span.track = queue_id;
                           span.start_seconds = stats.start_seconds;
                           span.duration_seconds = stats.seconds;
                           recorder->record(std::move(span));
                       }
                       return stats;
                   })
            .share();
    Event event{std::move(future)};
    last_ = event;
    return event;
}

LaunchStats CommandQueue::run(KernelLaunch launch) {
    return enqueue(std::move(launch)).wait();
}

} // namespace repute::ocl
