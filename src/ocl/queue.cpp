#include "ocl/queue.hpp"

namespace repute::ocl {

Event::Event(std::shared_future<LaunchStats> future)
    : state_(std::make_shared<State>()) {
    state_->future = std::move(future);
}

const LaunchStats& Event::wait() {
    if (!state_) {
        throw std::future_error(std::future_errc::no_state);
    }
    // Serializing on the state mutex both caches the stats exactly once
    // and keeps shared_future::get() off concurrent callers (get() on
    // one shared_future *object* is not thread-safe). A failed kernel
    // rethrows to every waiter.
    const std::lock_guard lock(state_->mutex);
    if (!state_->done) {
        state_->stats = state_->future.get();
        state_->done = true;
    }
    return state_->stats;
}

Event CommandQueue::enqueue(KernelLaunch launch) {
    return enqueue(std::move(launch), {});
}

Event CommandQueue::enqueue(KernelLaunch launch,
                            std::vector<Event> wait_list) {
    Device* device = device_;
    auto future =
        std::async(std::launch::async,
                   [device, launch = std::move(launch),
                    wait_list = std::move(wait_list)]() mutable
                   -> LaunchStats {
                       // Dependencies first; a throwing dependency
                       // propagates and fails this event as well.
                       for (Event& dependency : wait_list) {
                           dependency.wait();
                       }
                       return device->execute(launch.n_items, launch.body,
                                              launch.scratch_bytes_per_item);
                   })
            .share();
    return Event(std::move(future));
}

LaunchStats CommandQueue::run(KernelLaunch launch) {
    return enqueue(std::move(launch)).wait();
}

} // namespace repute::ocl
