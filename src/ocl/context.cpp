#include "ocl/context.hpp"

#include <algorithm>
#include <stdexcept>

namespace repute::ocl {

Buffer::Buffer(Buffer&& other) noexcept
    : device_(other.device_), bytes_(other.bytes_),
      name_(std::move(other.name_)), xfer_(std::move(other.xfer_)) {
    other.device_ = nullptr;
    other.bytes_ = 0;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
    if (this != &other) {
        release();
        device_ = other.device_;
        bytes_ = other.bytes_;
        name_ = std::move(other.name_);
        xfer_ = std::move(other.xfer_);
        other.device_ = nullptr;
        other.bytes_ = 0;
    }
    return *this;
}

Buffer::~Buffer() { release(); }

void Buffer::release() noexcept {
    if (device_ != nullptr) {
        device_->allocated_.fetch_sub(bytes_, std::memory_order_relaxed);
        device_ = nullptr;
        bytes_ = 0;
    }
}

Context::Context(std::vector<Device*> devices)
    : devices_(std::move(devices)) {
    if (devices_.empty()) {
        throw std::invalid_argument("Context requires at least one device");
    }
    for (const Device* d : devices_) {
        if (d == nullptr) {
            throw std::invalid_argument("Context received a null device");
        }
    }
}

Buffer Context::allocate(Device& device, std::uint64_t bytes,
                         std::string name) {
    const auto& profile = device.profile();
    if (bytes > profile.max_single_allocation()) {
        throw OclError(OclStatus::InvalidBufferSize,
                       "buffer '" + name + "' of " + std::to_string(bytes) +
                           " bytes exceeds 1/4 of " + profile.name +
                           " memory (" +
                           std::to_string(profile.max_single_allocation()) +
                           ")");
    }
    // CAS reserve: the exhaustion check and the charge must be one
    // step, or two mappers sharing the device could both pass the
    // check and over-commit its global memory.
    std::uint64_t current =
        device.allocated_.load(std::memory_order_relaxed);
    do {
        if (current + bytes > profile.global_memory_bytes) {
            throw OclError(OclStatus::MemObjectAllocFail,
                           "allocating '" + name + "' (" +
                               std::to_string(bytes) + " bytes) exhausts " +
                               profile.name + " global memory");
        }
    } while (!device.allocated_.compare_exchange_weak(
        current, current + bytes, std::memory_order_relaxed));
    return Buffer(&device, bytes, std::move(name));
}

std::uint64_t Context::available_for_allocation(
    const Device& device) const {
    const auto& profile = device.profile();
    const std::uint64_t free_bytes =
        profile.global_memory_bytes - device.allocated_bytes();
    return std::min(free_bytes, profile.max_single_allocation());
}

} // namespace repute::ocl
