#include "ocl/device.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace repute::ocl {

Device::Device(DeviceProfile profile) : profile_(std::move(profile)) {
    // Execute with real parallelism up to the host's core count; the
    // modeled compute-unit count only affects the time model.
    const std::size_t threads =
        std::min<std::size_t>(profile_.compute_units,
                              std::max(1u, std::thread::hardware_concurrency()));
    pool_ = std::make_unique<util::ThreadPool>(threads);
}

double Device::utilization_for_scratch(
    std::uint64_t scratch_bytes_per_item) const noexcept {
    if (scratch_bytes_per_item == 0) return 1.0;
    const double resident =
        static_cast<double>(profile_.private_memory_per_unit) /
        static_cast<double>(scratch_bytes_per_item);
    if (profile_.min_resident_items <= 1) {
        return resident >= 1.0 ? 1.0 : resident;
    }
    return std::min(1.0,
                    resident /
                        static_cast<double>(profile_.min_resident_items));
}

LaunchStats Device::execute(std::size_t n_items, const WorkItem& body,
                            std::uint64_t scratch_bytes_per_item,
                            double ready_seconds) {
    if (scratch_bytes_per_item > profile_.private_memory_per_unit) {
        throw OclError(
            OclStatus::OutOfResources,
            "kernel on " + profile_.name + " needs " +
                std::to_string(scratch_bytes_per_item) +
                " bytes of private memory per work-item, device offers " +
                std::to_string(profile_.private_memory_per_unit));
    }

    const std::lock_guard exec_lock(exec_mutex_);
    maybe_inject_fault();

    std::atomic<std::uint64_t> total_ops{0};
    pool_->parallel_for(n_items, [&](std::size_t i) {
        total_ops.fetch_add(body(i), std::memory_order_relaxed);
    });

    LaunchStats stats;
    stats.items = n_items;
    stats.total_ops = total_ops.load();
    stats.scratch_bytes_per_item = scratch_bytes_per_item;
    stats.utilization = utilization_for_scratch(scratch_bytes_per_item);
    const double throughput = profile_.ops_per_unit_per_second *
                              profile_.compute_units * stats.utilization;
    stats.seconds = profile_.dispatch_overhead_seconds +
                    static_cast<double>(stats.total_ops) / throughput;

    {
        // The launch occupies [start, start + seconds) on the device
        // clock: launches serialize on exec_mutex_, so back-to-back
        // intervals model an in-order device. A launch whose inputs are
        // still in flight (ready_seconds ahead of the compute frontier)
        // stalls the timeline — that gap is queue_wait_seconds, kept out
        // of busy_seconds_ so utilization never exceeds 100%.
        const std::lock_guard time_lock(time_mutex_);
        const double start = std::max(compute_clock_, ready_seconds);
        stats.queue_wait_seconds = start - compute_clock_;
        stats.start_seconds = start;
        compute_clock_ = start + stats.seconds;
        busy_seconds_ += stats.seconds;
    }
    return stats;
}

LaunchStats Device::transfer(std::uint64_t bytes, bool host_to_device,
                             double ready_seconds) {
    LaunchStats stats;
    // DMA does not occupy compute units: only the per-direction channel
    // clock advances, so transfers overlap kernel execution and each
    // other across directions (full-duplex link).
    const std::lock_guard time_lock(time_mutex_);
    stats.seconds = profile_.transfer.seconds_for(bytes);
    double& channel = host_to_device ? h2d_clock_ : d2h_clock_;
    const double start = std::max(channel, ready_seconds);
    stats.queue_wait_seconds = start - channel;
    stats.start_seconds = start;
    channel = start + stats.seconds;
    if (host_to_device) {
        xfer_.bytes_written += bytes;
        xfer_.writes += 1;
        xfer_.write_seconds += stats.seconds;
    } else {
        xfer_.bytes_read += bytes;
        xfer_.reads += 1;
        xfer_.read_seconds += stats.seconds;
    }
    return stats;
}

void Device::inject_faults(const FaultPlan& plan) {
    const std::lock_guard lock(fault_mutex_);
    fault_armed_ = true;
    fault_plan_ = plan;
    fault_launches_ = 0;
    fault_rng_ = util::Xoshiro256(plan.seed);
}

void Device::clear_faults() {
    const std::lock_guard lock(fault_mutex_);
    fault_armed_ = false;
    fault_launches_ = 0;
}

std::uint64_t Device::fault_launches() const {
    const std::lock_guard lock(fault_mutex_);
    return fault_launches_;
}

void Device::maybe_inject_fault() {
    const std::lock_guard lock(fault_mutex_);
    if (!fault_armed_) return;
    const std::uint64_t launch = ++fault_launches_;
    bool fail = false;
    if (fault_plan_.fail_on_launch != 0) {
        fail = fault_plan_.fail_forever
                   ? launch >= fault_plan_.fail_on_launch
                   : launch == fault_plan_.fail_on_launch;
    }
    // The transient stream advances on every launch so the failure
    // schedule depends only on launch ordinals, not on which other
    // trigger fired first.
    if (fault_plan_.transient_rate > 0.0 &&
        fault_rng_.chance(fault_plan_.transient_rate)) {
        fail = true;
    }
    if (fail) {
        throw OclError(fault_plan_.status,
                       profile_.name + ": injected fault at launch #" +
                           std::to_string(launch));
    }
}

double Device::busy_seconds() const noexcept {
    const std::lock_guard lock(time_mutex_);
    return busy_seconds_;
}

void Device::reset_busy_time() noexcept {
    const std::lock_guard lock(time_mutex_);
    busy_seconds_ = 0.0;
    compute_clock_ = 0.0;
    h2d_clock_ = 0.0;
    d2h_clock_ = 0.0;
    xfer_ = TransferStats{};
}

void Device::set_transfer_spec(const TransferSpec& spec) noexcept {
    const std::lock_guard lock(time_mutex_);
    profile_.transfer = spec;
}

TransferStats Device::transfer_stats() const noexcept {
    const std::lock_guard lock(time_mutex_);
    return xfer_;
}

} // namespace repute::ocl
