#pragma once
// Context and Buffer: device-memory accounting with the OpenCL 1.2
// restrictions the paper designs around (§III):
//   a) no dynamic allocation inside kernels — outputs are fixed-size
//      buffers sized for first-n results,
//   b) no single buffer larger than 1/4 of device memory.
//
// Buffers are accounting objects: the payload lives in ordinary host
// vectors (the simulated devices share the host address space), but
// every allocation is charged against the owning device and the two
// ceilings are enforced, so host code hits exactly the sizing decisions
// the paper describes (limit mappings per read, or split the read set
// and run the kernel multiple times).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ocl/device.hpp"

namespace repute::ocl {

class Context;

/// Per-buffer transfer counters, shared between the Buffer handle and
/// in-flight enqueue_write/enqueue_read tasks (which may outlive a
/// moved-from handle). Relaxed atomics: counts, not synchronization.
struct BufferXfer {
    std::atomic<std::uint64_t> bytes_written{0};
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> reads{0};
};

/// RAII device allocation. Move-only.
class Buffer {
public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept;
    Buffer& operator=(Buffer&& other) noexcept;
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer();

    std::uint64_t bytes() const noexcept { return bytes_; }
    const std::string& name() const noexcept { return name_; }
    bool valid() const noexcept { return device_ != nullptr; }

    /// Host-to-device bytes staged into this buffer so far.
    std::uint64_t bytes_written() const noexcept {
        return xfer_ ? xfer_->bytes_written.load(std::memory_order_relaxed)
                     : 0;
    }
    /// Device-to-host bytes drained from this buffer so far.
    std::uint64_t bytes_read() const noexcept {
        return xfer_ ? xfer_->bytes_read.load(std::memory_order_relaxed) : 0;
    }
    /// Shared counter block (used by CommandQueue transfer tasks).
    const std::shared_ptr<BufferXfer>& xfer() const noexcept { return xfer_; }

    /// Releases the allocation early.
    void release() noexcept;

private:
    friend class Context;
    Buffer(Device* device, std::uint64_t bytes, std::string name)
        : device_(device), bytes_(bytes), name_(std::move(name)),
          xfer_(std::make_shared<BufferXfer>()) {}

    Device* device_ = nullptr;
    std::uint64_t bytes_ = 0;
    std::string name_;
    std::shared_ptr<BufferXfer> xfer_;
};

class Context {
public:
    /// Devices must outlive the context.
    explicit Context(std::vector<Device*> devices);

    const std::vector<Device*>& devices() const noexcept { return devices_; }

    /// Allocates `bytes` on `device`. Throws OclError with
    /// InvalidBufferSize (single-buffer ceiling) or MemObjectAllocFail
    /// (global memory exhausted).
    Buffer allocate(Device& device, std::uint64_t bytes, std::string name);

    /// Largest single allocation currently possible on `device`.
    std::uint64_t available_for_allocation(const Device& device) const;

private:
    std::vector<Device*> devices_;
};

} // namespace repute::ocl
