#include "ocl/platform.hpp"

#include <stdexcept>

namespace repute::ocl {

DeviceProfile profile_i7_2600() {
    DeviceProfile p;
    p.name = "i7-2600";
    p.type = DeviceType::Cpu;
    p.compute_units = 8; // 4 cores, 2-way SMT
    p.ops_per_unit_per_second = 1.0e9;
    p.global_memory_bytes = 16ULL << 30;
    p.private_memory_per_unit = 256 * 1024; // generous L2 share
    p.min_resident_items = 1;
    p.dispatch_overhead_seconds = 5e-5;
    p.power.active_watts = 195.0; // wall delta at full load (Table IV)
    return p;
}

DeviceProfile profile_gtx590(int ordinal) {
    DeviceProfile p;
    p.name = "gtx590-" + std::to_string(ordinal);
    p.type = DeviceType::Gpu;
    p.compute_units = 256; // modeled lanes of one GF110 die
    p.ops_per_unit_per_second = 19.0e6; // 4.9e9 total, ~0.6x the i7
    p.global_memory_bytes = 1536ULL << 20; // 1.5 GB
    p.private_memory_per_unit = 8 * 1024;
    p.min_resident_items = 3; // needs residency to hide memory latency
    p.dispatch_overhead_seconds = 4e-4;
    p.power.active_watts = 50.0; // throttled integer kernel per die
    return p;
}

DeviceProfile profile_a73_cluster() {
    DeviceProfile p;
    p.name = "hikey970-a73";
    p.type = DeviceType::Embedded;
    p.compute_units = 4;
    p.ops_per_unit_per_second = 600.0e6;
    p.global_memory_bytes = 3ULL << 30; // half of the shared 6 GB
    p.private_memory_per_unit = 128 * 1024;
    p.min_resident_items = 1;
    p.dispatch_overhead_seconds = 1e-4;
    p.power.active_watts = 3.0;
    return p;
}

DeviceProfile profile_a53_cluster() {
    DeviceProfile p;
    p.name = "hikey970-a53";
    p.type = DeviceType::Embedded;
    p.compute_units = 4;
    p.ops_per_unit_per_second = 240.0e6;
    p.global_memory_bytes = 3ULL << 30;
    p.private_memory_per_unit = 64 * 1024;
    p.min_resident_items = 1;
    p.dispatch_overhead_seconds = 1e-4;
    p.power.active_watts = 1.5;
    return p;
}

Platform::Platform(std::string name, double idle_watts,
                   std::vector<DeviceProfile> profiles)
    : name_(std::move(name)), idle_watts_(idle_watts) {
    devices_.reserve(profiles.size());
    for (auto& profile : profiles) {
        devices_.push_back(std::make_unique<Device>(std::move(profile)));
    }
}

Platform Platform::system1() {
    return Platform("system1-workstation", 160.0,
                    {profile_i7_2600(), profile_gtx590(0),
                     profile_gtx590(1)});
}

Platform Platform::system2() {
    return Platform("system2-hikey970", 3.5,
                    {profile_a73_cluster(), profile_a53_cluster()});
}

std::vector<Device*> Platform::devices() {
    std::vector<Device*> out;
    out.reserve(devices_.size());
    for (const auto& d : devices_) out.push_back(d.get());
    return out;
}

Device& Platform::device(std::string_view device_name) {
    if (Device* d = find(device_name)) return *d;
    throw std::out_of_range("platform " + name_ + " has no device '" +
                            std::string(device_name) + "'");
}

Device* Platform::find(std::string_view device_name) noexcept {
    for (const auto& d : devices_) {
        if (d->name() == device_name) return d.get();
    }
    return nullptr;
}

void Platform::reset_busy_times() noexcept {
    for (const auto& d : devices_) d->reset_busy_time();
}

} // namespace repute::ocl
