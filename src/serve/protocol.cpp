#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

namespace repute::serve {

namespace {

void write_all(int fd, const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::write(fd, p, bytes);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(
                std::string("serve: socket write failed: ") +
                std::strerror(errno));
        }
        p += n;
        bytes -= static_cast<std::size_t>(n);
    }
}

/// False on clean EOF before the first byte; throws on EOF mid-buffer.
bool read_all(int fd, void* data, std::size_t bytes) {
    char* p = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < bytes) {
        const ssize_t n = ::read(fd, p + got, bytes - got);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(
                std::string("serve: socket read failed: ") +
                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0) return false;
            throw std::runtime_error("serve: connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void put_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_blob(std::string& out, const std::string& blob) {
    const auto bytes = static_cast<std::uint64_t>(blob.size());
    out.append(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
    out += blob;
}

struct Cursor {
    const char* p;
    std::size_t left;

    template <typename T>
    T pod() {
        if (left < sizeof(T)) {
            throw std::runtime_error("serve: truncated request payload");
        }
        T v;
        std::memcpy(&v, p, sizeof(T));
        p += sizeof(T);
        left -= sizeof(T);
        return v;
    }
    std::string blob() {
        const auto bytes = pod<std::uint64_t>();
        if (left < bytes) {
            throw std::runtime_error("serve: truncated request payload");
        }
        std::string s(p, bytes);
        p += bytes;
        left -= bytes;
        return s;
    }
};

} // namespace

void write_frame(int fd, FrameType type, const void* payload,
                 std::size_t bytes) {
    if (bytes > kMaxFrameBytes) {
        throw std::runtime_error("serve: frame payload too large");
    }
    char header[5];
    const auto len = static_cast<std::uint32_t>(bytes);
    std::memcpy(header, &len, sizeof(len));
    header[4] = static_cast<char>(type);
    write_all(fd, header, sizeof(header));
    if (bytes > 0) write_all(fd, payload, bytes);
}

Frame read_frame(int fd) {
    char header[5];
    if (!read_all(fd, header, sizeof(header))) {
        throw std::runtime_error(
            "serve: connection closed before a frame arrived");
    }
    std::uint32_t len = 0;
    std::memcpy(&len, header, sizeof(len));
    if (len > kMaxFrameBytes) {
        throw std::runtime_error("serve: oversized frame rejected");
    }
    const auto type = static_cast<std::uint8_t>(header[4]);
    if (type < static_cast<std::uint8_t>(FrameType::Request) ||
        type > static_cast<std::uint8_t>(FrameType::Error)) {
        throw std::runtime_error("serve: unknown frame type");
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.resize(len);
    if (len > 0 && !read_all(fd, frame.payload.data(), len)) {
        throw std::runtime_error("serve: connection closed mid-frame");
    }
    return frame;
}

std::string encode_request(const WireRequest& request) {
    std::string out;
    out.reserve(64 + request.tenant.size() + request.reads.size() +
                request.reads2.size());
    put_u32(out, request.delta);
    out.push_back(static_cast<char>(request.cigar));
    out.push_back(static_cast<char>(request.fail_on_malformed));
    put_u32(out, request.map_workers);
    put_u32(out, request.batch_size);
    put_u32(out, request.queue_depth);
    put_u32(out, request.read_length);
    put_u32(out, request.min_insert);
    put_u32(out, request.max_insert);
    put_blob(out, request.tenant);
    put_blob(out, request.reads);
    put_blob(out, request.reads2);
    // Trailing extension fields follow the blobs; old decoders that
    // stop here reject the extra bytes loudly, new decoders default
    // them when absent.
    put_u32(out, request.length_grid);
    return out;
}

WireRequest decode_request(const std::string& payload) {
    Cursor in{payload.data(), payload.size()};
    WireRequest request;
    request.delta = in.pod<std::uint32_t>();
    request.cigar = in.pod<std::uint8_t>();
    request.fail_on_malformed = in.pod<std::uint8_t>();
    request.map_workers = in.pod<std::uint32_t>();
    request.batch_size = in.pod<std::uint32_t>();
    request.queue_depth = in.pod<std::uint32_t>();
    request.read_length = in.pod<std::uint32_t>();
    request.min_insert = in.pod<std::uint32_t>();
    request.max_insert = in.pod<std::uint32_t>();
    request.tenant = in.blob();
    request.reads = in.blob();
    request.reads2 = in.blob();
    if (in.left >= sizeof(std::uint32_t)) {
        request.length_grid = in.pod<std::uint32_t>();
    }
    if (in.left != 0) {
        throw std::runtime_error(
            "serve: trailing bytes after request payload");
    }
    return request;
}

} // namespace repute::serve
