#pragma once
// Wire protocol of the mapping daemon (`repute serve`).
//
// Transport: a Unix-domain SOCK_STREAM socket, one mapping request per
// connection. Every message is a length-prefixed frame:
//
//   u32 payload_bytes (little-endian) | u8 type | payload
//
// Conversation:
//   client -> server   Request       (exactly one)
//   server -> client   SamChunk *    (SAM bytes, in order, chunked)
//   server -> client   Done | Error  (terminal; Done carries a summary
//                                     line, Error a diagnostic)
//
// The request payload is a fixed little-endian header (per-request
// mapping knobs — the wire twin of pipeline::MapRequest) followed by
// length-prefixed tenant / reads / mates byte blobs, then optional
// trailing extension fields (currently: u32 length_grid). Decoders
// default any absent trailing field, so payloads from older clients —
// which simply end after the blobs — keep working; newer clients
// talking to an older server are rejected by its trailing-bytes check,
// a loud failure rather than silent misconfiguration. Kernel- and
// index-level knobs are deliberately NOT on the wire: they are fixed at
// session construction (`repute serve --index ...`), so every request
// maps against the same resident index with the same kernel config —
// requests only choose delta, batching, pairing and output shape.
// Read blobs may themselves be gzip-compressed (the FASTX layer sniffs
// the magic), so clients can ship .gz files byte-for-byte.
//
// Frames are capped (kMaxFrameBytes) so a corrupt or hostile length
// prefix cannot make the server allocate unbounded memory.

#include <cstdint>
#include <string>

namespace repute::serve {

enum class FrameType : std::uint8_t {
    Request = 1,
    SamChunk = 2,
    Done = 3,
    Error = 4,
};

/// Hard per-frame ceiling (1 GiB) — rejects corrupt length prefixes.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// SAM bytes accumulated before a SamChunk frame is flushed.
constexpr std::size_t kSamChunkBytes = 64 * 1024;

struct Frame {
    FrameType type = FrameType::Error;
    std::string payload;
};

/// Blocking frame I/O over a connected socket fd. Both loop over
/// EINTR/short transfers; both throw std::runtime_error on EOF
/// mid-frame, oversized frames, or socket errors.
void write_frame(int fd, FrameType type, const void* payload,
                 std::size_t bytes);
Frame read_frame(int fd);

/// The per-request knobs carried on the wire (see header comment for
/// what intentionally is not here).
struct WireRequest {
    std::uint32_t delta = 5;
    std::uint8_t cigar = 1;
    std::uint8_t fail_on_malformed = 0;
    std::uint32_t map_workers = 1;
    std::uint32_t batch_size = 4096;
    std::uint32_t queue_depth = 4;
    /// 0 = length-bucketed mixed-length mapping (the default); non-zero
    /// pins a fixed length and drops everything else.
    std::uint32_t read_length = 0;
    std::uint32_t min_insert = 200;
    std::uint32_t max_insert = 600;
    std::string tenant;
    std::string reads;  ///< FASTQ/FASTA payload bytes (may be gzip)
    std::string reads2; ///< second mates; empty = single-end
    /// Trailing extension field: length-class quantization grid for
    /// bucketed requests. Absent on the wire (old clients) = 16.
    std::uint32_t length_grid = 16;
};

/// Serializes `request` into a Request-frame payload.
std::string encode_request(const WireRequest& request);

/// Parses a Request-frame payload; throws std::runtime_error on a
/// truncated or malformed payload.
WireRequest decode_request(const std::string& payload);

} // namespace repute::serve
