#include "serve/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "pipeline/bounded_queue.hpp"
#include "serve/protocol.hpp"

namespace repute::serve {

namespace {

/// std::streambuf that frames buffered SAM bytes as SamChunk messages —
/// the emitter writes into an ostream as usual and chunks leave the
/// socket as they fill, so response streaming overlaps mapping.
class FrameStreambuf final : public std::streambuf {
public:
    explicit FrameStreambuf(int fd) : fd_(fd) {
        buffer_.resize(kSamChunkBytes);
        setp(buffer_.data(), buffer_.data() + buffer_.size());
    }

    void flush_chunk() {
        const auto bytes = static_cast<std::size_t>(pptr() - pbase());
        if (bytes > 0) {
            write_frame(fd_, FrameType::SamChunk, pbase(), bytes);
            setp(buffer_.data(), buffer_.data() + buffer_.size());
        }
    }

protected:
    int overflow(int ch) override {
        flush_chunk();
        if (ch != traits_type::eof()) {
            *pptr() = static_cast<char>(ch);
            pbump(1);
        }
        return ch;
    }
    int sync() override {
        flush_chunk();
        return 0;
    }

private:
    int fd_;
    std::vector<char> buffer_;
};

void throw_errno(const std::string& what) {
    throw std::runtime_error("serve: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

Server::Server(pipeline::MappingSession& session, ServerConfig config)
    : session_(&session), config_(std::move(config)) {
    if (config_.socket_path.empty()) {
        throw std::runtime_error("serve: socket path required");
    }
    if (config_.handlers == 0) config_.handlers = 1;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("serve: socket path too long: " +
                                 config_.socket_path);
    }
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(config_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("bind " + config_.socket_path);
    }
    if (::listen(listen_fd_, 64) != 0) throw_errno("listen");

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) throw_errno("pipe");
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
}

Server::~Server() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
    ::unlink(config_.socket_path.c_str());
}

void Server::stop() noexcept {
    const char byte = 's';
    // Ignore the result: either the byte lands and poll() wakes, or the
    // pipe is already gone because run() finished.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write_fd_, &byte, 1);
}

std::size_t Server::run() {
    pipeline::BoundedQueue<int> admission(config_.pending);

    std::vector<std::thread> handlers;
    handlers.reserve(config_.handlers);
    for (std::size_t h = 0; h < config_.handlers; ++h) {
        handlers.emplace_back([&] {
            while (auto fd = admission.pop()) {
                handle_connection(*fd);
                ::close(*fd);
            }
        });
    }

    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                         {wake_read_fd_, POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            admission.close();
            for (auto& t : handlers) t.join();
            throw_errno("poll");
        }
        if (fds[1].revents != 0) break; // stop() requested
        if ((fds[0].revents & POLLIN) == 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            admission.close();
            for (auto& t : handlers) t.join();
            throw_errno("accept");
        }
        if (auto* registry = obs::metrics()) {
            registry->gauge("serve.admission_queue_depth")
                .set(static_cast<double>(admission.depth()));
        }
        if (!admission.push(client)) {
            ::close(client); // queue closed: shutting down
            break;
        }
    }

    // Drain: no new admissions, but queued + in-flight requests finish.
    admission.close();
    for (auto& t : handlers) t.join();
    return handled_.load();
}

void Server::handle_connection(int fd) {
    try {
        const Frame frame = read_frame(fd);
        if (frame.type != FrameType::Request) {
            throw std::runtime_error(
                "serve: expected a Request frame first");
        }
        const WireRequest wire = decode_request(frame.payload);

        std::istringstream reads(wire.reads);
        std::istringstream reads2(wire.reads2);
        pipeline::MapRequest request;
        request.reads = &reads;
        request.reads2 = wire.reads2.empty() ? nullptr : &reads2;
        request.delta = wire.delta;
        request.cigar = wire.cigar != 0;
        request.map_workers = wire.map_workers;
        request.queue_depth = wire.queue_depth;
        request.reader.batch_size = wire.batch_size;
        request.reader.read_length = wire.read_length;
        request.reader.length_grid = wire.length_grid;
        request.reader.on_malformed = wire.fail_on_malformed != 0
                                          ? pipeline::OnMalformed::Fail
                                          : pipeline::OnMalformed::Drop;
        request.pair.min_insert = wire.min_insert;
        request.pair.max_insert = wire.max_insert;
        request.tenant = wire.tenant;

        FrameStreambuf sam_buf(fd);
        std::ostream sam_out(&sam_buf);
        const auto response = session_->map(request, sam_out);
        sam_out.flush();

        char summary[256];
        std::snprintf(summary, sizeof summary,
                      "reads_in=%zu dropped=%zu records=%zu "
                      "boundary_dropped=%zu cigar_dropped=%zu "
                      "workers=%zu wall_seconds=%.6f",
                      response.reads_in, response.dropped,
                      response.emitted.records,
                      response.emitted.dropped_boundary,
                      response.emitted.dropped_cigar,
                      response.workers_granted, response.wall_seconds);
        write_frame(fd, FrameType::Done, summary, std::strlen(summary));
        handled_.fetch_add(1);
        if (auto* registry = obs::metrics()) {
            registry->counter("serve.requests_ok").add();
        }
    } catch (const std::exception& e) {
        if (auto* registry = obs::metrics()) {
            registry->counter("serve.requests_failed").add();
        }
        // Best effort: the client may already be gone.
        try {
            const std::string what = e.what();
            write_frame(fd, FrameType::Error, what.data(), what.size());
        } catch (...) {
        }
    }
}

} // namespace repute::serve
