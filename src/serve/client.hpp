#pragma once
// Socket client for the mapping daemon — the library behind
// `repute client` and the serve tests.

#include <iosfwd>
#include <string>

#include "serve/protocol.hpp"

namespace repute::serve {

struct ClientResult {
    std::string summary; ///< the server's Done-frame payload
};

/// Connects to the daemon at `socket_path`, submits `request` and
/// streams the returned SAM bytes into `sam_out`. Throws
/// std::runtime_error on connection failure, protocol violations, or a
/// server-side Error frame (whose message is rethrown verbatim).
ClientResult run_client(const std::string& socket_path,
                        const WireRequest& request, std::ostream& sam_out);

} // namespace repute::serve
