#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace repute::serve {

namespace {

/// Connected-socket RAII.
struct Connection {
    int fd = -1;
    ~Connection() {
        if (fd >= 0) ::close(fd);
    }
};

} // namespace

ClientResult run_client(const std::string& socket_path,
                        const WireRequest& request,
                        std::ostream& sam_out) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("client: socket path too long: " +
                                 socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    Connection conn;
    conn.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) {
        throw std::runtime_error(std::string("client: socket: ") +
                                 std::strerror(errno));
    }
    if (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        throw std::runtime_error("client: cannot connect to " +
                                 socket_path + ": " +
                                 std::strerror(errno));
    }

    const std::string payload = encode_request(request);
    write_frame(conn.fd, FrameType::Request, payload.data(),
                payload.size());

    for (;;) {
        const Frame frame = read_frame(conn.fd);
        switch (frame.type) {
        case FrameType::SamChunk:
            sam_out.write(frame.payload.data(),
                          static_cast<std::streamsize>(
                              frame.payload.size()));
            break;
        case FrameType::Done:
            sam_out.flush();
            return {frame.payload};
        case FrameType::Error:
            throw std::runtime_error("server error: " + frame.payload);
        case FrameType::Request:
            throw std::runtime_error(
                "client: unexpected Request frame from server");
        }
    }
}

} // namespace repute::serve
