#pragma once
// The mapping daemon: a MappingSession behind a Unix-domain socket.
//
// Thread shape:
//
//   accept loop ---BoundedQueue<fd>---> handler pool --> MappingSession
//
// One thread accepts connections and pushes the fds into a bounded
// queue — the admission-control valve: when every handler is busy and
// the queue is full, accept stalls and the kernel's listen backlog (and
// then connecting clients) absorb the pressure, so server memory stays
// O(handlers x queue_depth x batch_size) no matter how many clients
// arrive. Handler threads pop fds, read the single request frame,
// stream the request through the shared session (fair-share mapper
// scheduling happens inside MappingSession::acquire) and frame SAM
// bytes back as they are produced — a request's output starts flowing
// while its later batches still map.
//
// Shutdown: stop() (async-signal-safe, callable from a SIGTERM/SIGINT
// handler) writes one byte to a self-pipe; the accept loop's poll()
// wakes, the listen socket closes, the admission queue closes, and
// run() joins the handlers — every in-flight request finishes and
// flushes its Done frame before run() returns. Nothing is aborted
// mid-request.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/mapping_api.hpp"

namespace repute::serve {

struct ServerConfig {
    std::string socket_path;
    /// Concurrent request handlers (and the admission-queue capacity is
    /// `pending` beyond those).
    std::size_t handlers = 2;
    std::size_t pending = 8;
};

class Server {
public:
    /// Binds and listens on `config.socket_path` (an existing socket
    /// file is unlinked first). The session is shared by every handler
    /// and must outlive the server. Throws std::runtime_error on bind
    /// failure.
    Server(pipeline::MappingSession& session, ServerConfig config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serves until stop(). Returns the number of requests handled.
    std::size_t run();

    /// Requests shutdown; async-signal-safe (one write() to a pipe).
    /// run() drains in-flight requests before returning.
    void stop() noexcept;

    const std::string& socket_path() const noexcept {
        return config_.socket_path;
    }

private:
    void handle_connection(int fd);

    pipeline::MappingSession* session_;
    ServerConfig config_;
    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    std::atomic<std::size_t> handled_{0};
};

} // namespace repute::serve
