#include "genomics/fastx.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/gzip_stream.hpp"
#include "util/packed_dna.hpp"

namespace repute::genomics {

namespace {

std::string header_name(const std::string& line, std::size_t offset) {
    const std::size_t end = line.find_first_of(" \t", offset);
    return line.substr(offset,
                       end == std::string::npos ? end : end - offset);
}

std::ifstream open_or_throw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open file: " + path);
    return in;
}

std::vector<FastaRecord> read_fasta_plain(std::istream& in);
std::vector<FastqRecord> read_fastq_plain(std::istream& in);

} // namespace

std::vector<FastaRecord> read_fasta(std::istream& in) {
    if (util::sniff_gzip_magic(in)) {
        util::GzipInputStream gz(in);
        return read_fasta_plain(gz.stream());
    }
    return read_fasta_plain(in);
}

namespace {

std::vector<FastaRecord> read_fasta_plain(std::istream& in) {
    std::vector<FastaRecord> records;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (line[0] == '>') {
            records.push_back({header_name(line, 1), {}});
        } else if (line[0] == ';') {
            continue; // legacy FASTA comment
        } else {
            if (records.empty()) {
                throw std::runtime_error(
                    "FASTA: sequence data before first header");
            }
            records.back().sequence += line;
        }
    }
    return records;
}

} // namespace

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
    auto in = open_or_throw(path);
    return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
    for (const auto& r : records) {
        out << '>' << r.name << '\n';
        for (std::size_t i = 0; i < r.sequence.size(); i += line_width) {
            out << r.sequence.substr(i, line_width) << '\n';
        }
    }
}

std::vector<FastqRecord> read_fastq(std::istream& in) {
    if (util::sniff_gzip_magic(in)) {
        util::GzipInputStream gz(in);
        return read_fastq_plain(gz.stream());
    }
    return read_fastq_plain(in);
}

namespace {

std::vector<FastqRecord> read_fastq_plain(std::istream& in) {
    std::vector<FastqRecord> records;
    std::string header, seq, plus, qual;
    while (std::getline(in, header)) {
        if (!header.empty() && header.back() == '\r') header.pop_back();
        if (header.empty()) continue;
        if (header[0] != '@') {
            throw std::runtime_error("FASTQ: expected '@', got: " + header);
        }
        if (!std::getline(in, seq) || !std::getline(in, plus) ||
            !std::getline(in, qual)) {
            throw std::runtime_error("FASTQ: truncated record: " + header);
        }
        if (!seq.empty() && seq.back() == '\r') seq.pop_back();
        if (!qual.empty() && qual.back() == '\r') qual.pop_back();
        if (plus.empty() || plus[0] != '+') {
            throw std::runtime_error("FASTQ: missing '+' line in record: " +
                                     header);
        }
        if (seq.size() != qual.size()) {
            throw std::runtime_error(
                "FASTQ: sequence/quality length mismatch in record: " +
                header);
        }
        records.push_back({header_name(header, 1), std::move(seq),
                           std::move(qual)});
    }
    return records;
}

} // namespace

std::vector<FastqRecord> read_fastq_file(const std::string& path) {
    auto in = open_or_throw(path);
    return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records) {
    for (const auto& r : records) {
        out << '@' << r.name << '\n'
            << r.sequence << "\n+\n"
            << r.quality << '\n';
    }
}

ReadBatch to_read_batch(const std::vector<FastqRecord>& records,
                        std::size_t* dropped) {
    ReadBatch batch;
    if (records.empty()) {
        if (dropped) *dropped = 0;
        return batch;
    }
    // Majority length wins.
    std::map<std::size_t, std::size_t> hist;
    for (const auto& r : records) ++hist[r.sequence.size()];
    const auto majority = std::max_element(
        hist.begin(), hist.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    batch.read_length = majority->first;

    std::size_t n_dropped = 0;
    for (const auto& r : records) {
        if (r.sequence.size() != batch.read_length) {
            ++n_dropped;
            continue;
        }
        Read read;
        read.id = static_cast<std::uint32_t>(batch.reads.size());
        read.name = r.name;
        read.codes.resize(r.sequence.size());
        for (std::size_t i = 0; i < r.sequence.size(); ++i) {
            read.codes[i] = util::base_to_code(r.sequence[i]);
        }
        batch.reads.push_back(std::move(read));
    }
    if (dropped) *dropped = n_dropped;
    return batch;
}

FastxRecordStream::FastxRecordStream(std::istream& in, FastxFormat format)
    : in_(&in), format_(format) {
    if (util::sniff_gzip_magic(in)) {
        // Throws the clear "rebuilt without zlib" error when the build
        // carries no zlib (see util::GzipInputStream).
        gz_ = std::make_unique<util::GzipInputStream>(in);
        in_ = &gz_->stream();
    }
}

FastxRecordStream::~FastxRecordStream() = default;

std::uint64_t FastxRecordStream::compressed_offset() const noexcept {
    return gz_ ? gz_->compressed_offset() : 0;
}

std::string FastxRecordStream::offset_suffix() const {
    if (gz_) {
        return " (at uncompressed byte " + std::to_string(record_offset_) +
               ", compressed byte <= " +
               std::to_string(compressed_offset()) + ")";
    }
    return " (at byte " + std::to_string(record_offset_) + ")";
}

bool FastxRecordStream::next_line(std::string& line) {
    if (has_pending_) {
        line = std::move(pending_);
        has_pending_ = false;
        line_offset_ = pending_offset_;
        return true;
    }
    while (true) {
        line_offset_ = next_offset_;
        if (!std::getline(*in_, line)) return false;
        // Count raw bytes consumed (CR included, before stripping; the
        // final line of a file without a trailing newline sets eofbit).
        next_offset_ += line.size() + (in_->eof() ? 0 : 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) return true; // blank lines are never records
    }
}

FastxRecordStream::Status FastxRecordStream::next(FastqRecord& out,
                                                  std::string* error) {
    if (format_ == FastxFormat::Auto) {
        std::string line;
        if (!next_line(line)) return Status::End;
        format_ = line[0] == '@' ? FastxFormat::Fastq : FastxFormat::Fasta;
        pending_ = std::move(line);
        has_pending_ = true;
        pending_offset_ = line_offset_;
    }
    const Status status = format_ == FastxFormat::Fasta
                              ? next_fasta(out, error)
                              : next_fastq(out, error);
    if (status != Status::End) ++records_seen_;
    return status;
}

FastxRecordStream::Status FastxRecordStream::next_fasta(
    FastqRecord& out, std::string* error) {
    std::string line;
    while (next_line(line)) {
        record_offset_ = line_offset_;
        if (line[0] == ';') continue; // legacy FASTA comment
        if (line[0] != '>') {
            if (error) {
                *error = "FASTA: sequence data before header: " + line +
                         offset_suffix();
            }
            return Status::Malformed; // consume the stray line, resync
        }
        out.name = header_name(line, 1);
        out.sequence.clear();
        out.quality.clear();
        while (next_line(line)) {
            if (line[0] == '>') { // next record: push back as lookahead
                pending_ = std::move(line);
                has_pending_ = true;
                pending_offset_ = line_offset_;
                break;
            }
            if (line[0] == ';') continue;
            out.sequence += line;
        }
        return Status::Record;
    }
    return Status::End;
}

FastxRecordStream::Status FastxRecordStream::next_fastq(
    FastqRecord& out, std::string* error) {
    std::string header;
    if (!next_line(header)) return Status::End;
    record_offset_ = line_offset_;
    if (header[0] != '@') {
        if (error) {
            *error = "FASTQ: expected '@', got: " + header +
                     offset_suffix();
        }
        return Status::Malformed; // consume one line, resync on next '@'
    }
    std::string seq, plus, qual;
    std::uint64_t plus_offset = 0;
    const auto read_plus = [&] {
        if (!next_line(plus)) return false;
        plus_offset = line_offset_;
        return true;
    };
    if (!next_line(seq) || !read_plus() || !next_line(qual)) {
        if (error) {
            *error = "FASTQ: truncated record: " + header +
                     offset_suffix();
        }
        return Status::Malformed;
    }
    if (plus.empty() || plus[0] != '+') {
        if (error) {
            *error = "FASTQ: missing '+' line in record: " + header +
                     offset_suffix();
        }
        // The '+' slot held something else — likely the start of the
        // next record; push it back so one bad record costs one record.
        pending_ = std::move(plus);
        has_pending_ = true;
        pending_offset_ = plus_offset;
        return Status::Malformed;
    }
    if (seq.size() != qual.size()) {
        if (error) {
            *error = "FASTQ: sequence/quality length mismatch in record: " +
                     header + offset_suffix();
        }
        return Status::Malformed;
    }
    out.name = header_name(header, 1);
    out.sequence = std::move(seq);
    out.quality = std::move(qual);
    return Status::Record;
}

} // namespace repute::genomics
