#include "genomics/sequence.hpp"

#include "util/prng.hpp"

namespace repute::genomics {

std::string Read::to_string() const {
    std::string s(codes.size(), '\0');
    for (std::size_t i = 0; i < codes.size(); ++i) {
        s[i] = util::code_to_base(codes[i]);
    }
    return s;
}

std::vector<std::uint8_t> Read::reverse_complement() const {
    std::vector<std::uint8_t> rc;
    reverse_complement(rc);
    return rc;
}

void Read::reverse_complement(std::vector<std::uint8_t>& rc) const {
    rc.resize(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
        rc[i] = util::complement_code(codes[codes.size() - 1 - i]);
    }
}

Reference Reference::from_ascii(std::string name, std::string_view ascii,
                                std::uint64_t n_seed) {
    util::PackedDna packed;
    for (std::size_t i = 0; i < ascii.size(); ++i) {
        const char c = ascii[i];
        switch (c) {
            case 'A': case 'a': packed.push_back(0); break;
            case 'C': case 'c': packed.push_back(1); break;
            case 'G': case 'g': packed.push_back(2); break;
            case 'T': case 't': packed.push_back(3); break;
            default:
                // Deterministic stand-in base for N / ambiguity codes.
                packed.push_back(static_cast<std::uint8_t>(
                    util::mix64(n_seed ^ (i * 0x9E3779B97F4A7C15ULL)) & 3u));
                break;
        }
    }
    return Reference(std::move(name), std::move(packed));
}

} // namespace repute::genomics
