#pragma once
// Read simulator with a sequencing-error model.
//
// Stand-in for the paper's real read sets (ERR012100_1, n=100 and
// SRR826460_1, n=150). Reads are sampled uniformly from both strands of
// the reference and corrupted with substitutions and indels whose total
// count is drawn from [0, max_errors], so a batch simulated for error
// budget delta is mappable at edit distance <= delta. Each read carries
// its ground-truth origin, which powers the oracle-based accuracy checks
// in the tests (the benchmark protocol itself uses the paper's gold-
// standard comparison instead).

#include <cstdint>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/sequence.hpp"

namespace repute::genomics {

struct ReadSimConfig {
    std::size_t n_reads = 100'000;
    std::size_t read_length = 100;
    std::uint32_t max_errors = 5;   ///< per-read edit budget (uniform 0..max)
    double indel_fraction = 0.15;   ///< fraction of errors that are indels
    std::uint64_t seed = 100;

    /// Illumina-like quality model: instead of a uniform error count,
    /// each base errs with probability 10^(-q/10) where the Phred score
    /// q ramps linearly from phred_start (5' end) to phred_end (3'
    /// end); the total stays capped at max_errors so the mapping
    /// guarantee holds. Reads carry their Phred+33 quality strings.
    bool quality_model = false;
    double phred_start = 36.0;
    double phred_end = 20.0;
};

/// Ground truth for one simulated read.
struct ReadOrigin {
    std::uint32_t position = 0;  ///< 0-based start on the forward strand
    Strand strand = Strand::Forward;
    std::uint32_t edits = 0;     ///< errors actually injected
};

struct SimulatedReads {
    ReadBatch batch;
    std::vector<ReadOrigin> origins; ///< parallel to batch.reads
};

/// Samples reads from `reference` under `config`.
/// Throws std::invalid_argument if the reference is shorter than
/// read_length + max_errors (no valid sampling window).
SimulatedReads simulate_reads(const Reference& reference,
                              const ReadSimConfig& config);

/// Converts simulated reads into FASTQ records (quality strings from
/// the quality model when enabled, otherwise constant 'I').
std::vector<FastqRecord> to_fastq_records(const SimulatedReads& sim);

} // namespace repute::genomics
