#include "genomics/pair_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace repute::genomics {

namespace {

using util::Xoshiro256;

/// Single-mate corruption: substitutions/indels capped at `budget`,
/// length restored from the window tail (same contract as read_sim).
std::uint32_t corrupt_mate(Xoshiro256& rng,
                           std::vector<std::uint8_t>& bases,
                           std::size_t target_len, std::uint32_t budget,
                           double indel_fraction) {
    const auto n_errors =
        static_cast<std::uint32_t>(rng.bounded(budget + 1));
    std::uint32_t applied = 0;
    for (std::uint32_t e = 0; e < n_errors; ++e) {
        const double kind = rng.uniform();
        if (kind >= indel_fraction || bases.size() <= target_len) {
            const std::size_t pos =
                rng.bounded(std::min(bases.size(), target_len));
            bases[pos] = static_cast<std::uint8_t>(
                (bases[pos] + 1 + rng.bounded(3)) & 3u);
        } else if (rng.chance(0.5)) {
            const std::size_t pos = rng.bounded(target_len);
            bases.insert(bases.begin() + static_cast<std::ptrdiff_t>(pos),
                         static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            const std::size_t pos = rng.bounded(target_len);
            bases.erase(bases.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        ++applied;
    }
    return applied;
}

} // namespace

SimulatedPairs simulate_pairs(const Reference& reference,
                              const PairSimConfig& config) {
    const auto max_fragment = static_cast<std::uint32_t>(
        std::max<double>(static_cast<double>(config.read_length),
                         4.0 * config.insert_mean));
    const std::size_t slack = config.max_errors;
    if (reference.size() < max_fragment + slack) {
        throw std::invalid_argument(
            "simulate_pairs: reference too short for the insert model");
    }

    Xoshiro256 rng(config.seed);
    SimulatedPairs out;
    out.first.read_length = config.read_length;
    out.second.read_length = config.read_length;
    out.first.reads.reserve(config.n_pairs);
    out.second.reads.reserve(config.n_pairs);
    out.origins.reserve(config.n_pairs);

    for (std::size_t i = 0; i < config.n_pairs; ++i) {
        const double drawn =
            rng.normal(config.insert_mean, config.insert_stddev);
        const auto fragment = std::clamp<std::uint32_t>(
            static_cast<std::uint32_t>(std::lround(drawn)),
            static_cast<std::uint32_t>(config.read_length), max_fragment);
        const std::size_t max_start =
            reference.size() - fragment - slack;
        const auto start =
            static_cast<std::uint32_t>(rng.bounded(max_start + 1));

        // Mate 1: fragment 5' end, forward strand.
        std::vector<std::uint8_t> mate1 = reference.sequence().extract(
            start, config.read_length + slack);
        const std::uint32_t edits1 =
            corrupt_mate(rng, mate1, config.read_length,
                         config.max_errors, config.indel_fraction);
        mate1.resize(config.read_length);

        // Mate 2: fragment 3' end, reverse complement. Corrupt in
        // forward space first so the anchor stays exact (see read_sim).
        const std::uint32_t mate2_start =
            start + fragment - static_cast<std::uint32_t>(
                                   config.read_length);
        std::vector<std::uint8_t> mate2 = reference.sequence().extract(
            mate2_start, config.read_length + slack);
        const std::uint32_t edits2 =
            corrupt_mate(rng, mate2, config.read_length,
                         config.max_errors, config.indel_fraction);
        mate2.resize(config.read_length);
        std::reverse(mate2.begin(), mate2.end());
        for (auto& b : mate2) b = util::complement_code(b);

        Read r1, r2;
        r1.id = r2.id = static_cast<std::uint32_t>(i);
        r1.name = "simpair." + std::to_string(i) + "/1";
        r2.name = "simpair." + std::to_string(i) + "/2";
        r1.codes = std::move(mate1);
        r2.codes = std::move(mate2);
        out.first.reads.push_back(std::move(r1));
        out.second.reads.push_back(std::move(r2));
        out.origins.push_back({start, fragment, edits1, edits2});
    }
    return out;
}

} // namespace repute::genomics
