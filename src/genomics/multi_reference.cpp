#include "genomics/multi_reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace repute::genomics {

MultiReference::MultiReference(const std::vector<FastaRecord>& records,
                               std::string name) {
    if (records.empty()) {
        throw std::invalid_argument(
            "MultiReference: at least one sequence required");
    }
    std::string concatenated;
    std::size_t total = 0;
    for (const auto& r : records) total += r.sequence.size();
    concatenated.reserve(total);

    starts_.push_back(0);
    for (const auto& r : records) {
        if (r.sequence.empty()) {
            throw std::invalid_argument("MultiReference: empty sequence " +
                                        r.name);
        }
        names_.push_back(r.name);
        concatenated += r.sequence;
        starts_.push_back(static_cast<std::uint32_t>(concatenated.size()));
    }
    reference_ = Reference::from_ascii(std::move(name), concatenated);
}

MultiReference::MultiReference(Reference reference) {
    if (reference.size() == 0) {
        throw std::invalid_argument("MultiReference: empty reference");
    }
    names_.push_back(reference.name());
    starts_ = {0, static_cast<std::uint32_t>(reference.size())};
    reference_ = std::move(reference);
}

MultiReference::MultiReference(Reference reference,
                               std::vector<std::string> names,
                               std::vector<std::uint32_t> starts)
    : reference_(std::move(reference)), names_(std::move(names)),
      starts_(std::move(starts)) {
    if (names_.empty() || starts_.size() != names_.size() + 1 ||
        starts_.front() != 0 ||
        starts_.back() != reference_.size() ||
        !std::is_sorted(starts_.begin(), starts_.end())) {
        throw std::invalid_argument(
            "MultiReference: inconsistent sequence table");
    }
}

MultiReference::Location MultiReference::resolve(
    std::uint32_t global_position) const {
    if (global_position >= starts_.back()) {
        throw std::out_of_range("MultiReference: position past text end");
    }
    // Last start <= position.
    const auto it = std::upper_bound(starts_.begin(), starts_.end(),
                                     global_position);
    const auto index =
        static_cast<std::size_t>(it - starts_.begin()) - 1;
    return {index, global_position - starts_[index]};
}

bool MultiReference::within_one_sequence(std::uint32_t global_position,
                                         std::uint32_t length) const {
    if (length == 0) return true;
    if (global_position >= starts_.back() ||
        starts_.back() - global_position < length) {
        return false;
    }
    const auto first = resolve(global_position);
    const auto last = resolve(global_position + length - 1);
    return first.sequence_index == last.sequence_index;
}

} // namespace repute::genomics
