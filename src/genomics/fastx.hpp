#pragma once
// FASTA / FASTQ readers and writers.
//
// Line-based parsers supporting multi-line FASTA records and 4-line FASTQ
// records. Used by the examples to load real data when available and to
// persist simulated datasets for cross-tool comparison.

#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::genomics {

struct FastaRecord {
    std::string name;     ///< header without '>' up to first whitespace
    std::string sequence; ///< raw ASCII bases
};

/// Parses all records from a FASTA stream; throws std::runtime_error on a
/// structurally malformed file (e.g. sequence data before any header).
std::vector<FastaRecord> read_fasta(std::istream& in);
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records wrapped at `line_width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 70);

struct FastqRecord {
    std::string name;
    std::string sequence;
    std::string quality; ///< same length as sequence
};

std::vector<FastqRecord> read_fastq(std::istream& in);
std::vector<FastqRecord> read_fastq_file(const std::string& path);
void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);

/// Converts FASTQ records into a fixed-length ReadBatch; records whose
/// length differs from the majority length are dropped (mirrors the
/// paper's fixed-n kernels). Returns number of dropped records via out
/// param if non-null.
ReadBatch to_read_batch(const std::vector<FastqRecord>& records,
                        std::size_t* dropped = nullptr);

} // namespace repute::genomics
