#pragma once
// FASTA / FASTQ readers and writers.
//
// Line-based parsers supporting multi-line FASTA records and 4-line FASTQ
// records. Used by the examples to load real data when available and to
// persist simulated datasets for cross-tool comparison.

#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::genomics {

struct FastaRecord {
    std::string name;     ///< header without '>' up to first whitespace
    std::string sequence; ///< raw ASCII bases
};

/// Parses all records from a FASTA stream; throws std::runtime_error on a
/// structurally malformed file (e.g. sequence data before any header).
std::vector<FastaRecord> read_fasta(std::istream& in);
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records wrapped at `line_width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 70);

struct FastqRecord {
    std::string name;
    std::string sequence;
    std::string quality; ///< same length as sequence
};

std::vector<FastqRecord> read_fastq(std::istream& in);
std::vector<FastqRecord> read_fastq_file(const std::string& path);
void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);

/// Converts FASTQ records into a fixed-length ReadBatch; records whose
/// length differs from the majority length are dropped (mirrors the
/// paper's fixed-n kernels). Returns number of dropped records via out
/// param if non-null.
ReadBatch to_read_batch(const std::vector<FastqRecord>& records,
                        std::size_t* dropped = nullptr);

enum class FastxFormat { Auto, Fasta, Fastq };

/// Record-at-a-time FASTA/FASTQ scanner — the streaming counterpart of
/// read_fasta()/read_fastq(). Instead of throwing on a structurally
/// malformed record it reports Status::Malformed for that record and
/// resynchronizes on the next plausible record start, so a caller can
/// implement a per-record error policy (drop-and-count or fail-fast)
/// without losing the rest of the file. FASTA records come back as
/// FastqRecords with an empty quality string.
class FastxRecordStream {
public:
    enum class Status {
        Record,    ///< `out` holds the next well-formed record
        Malformed, ///< record skipped; `error` describes why
        End,       ///< stream exhausted
    };

    /// The stream must outlive the scanner. With FastxFormat::Auto the
    /// format is resolved from the first record marker ('>' vs '@').
    explicit FastxRecordStream(std::istream& in,
                               FastxFormat format = FastxFormat::Auto);

    Status next(FastqRecord& out, std::string* error = nullptr);

    /// Resolved format (Auto until the first marker has been seen).
    FastxFormat format() const noexcept { return format_; }

    /// Records consumed so far, malformed ones included (1-based ordinal
    /// of the most recently returned record).
    std::size_t records_seen() const noexcept { return records_seen_; }

private:
    bool next_line(std::string& line);
    Status next_fasta(FastqRecord& out, std::string* error);
    Status next_fastq(FastqRecord& out, std::string* error);

    std::istream* in_;
    FastxFormat format_;
    std::string pending_; ///< one-line lookahead (FASTA record boundary)
    bool has_pending_ = false;
    std::size_t records_seen_ = 0;
};

} // namespace repute::genomics
