#pragma once
// FASTA / FASTQ readers and writers.
//
// Line-based parsers supporting multi-line FASTA records and 4-line FASTQ
// records. Used by the examples to load real data when available and to
// persist simulated datasets for cross-tool comparison.
//
// Every reader sniffs the gzip magic at the stream's current position
// and transparently inflates compressed input (util::GzipInputStream),
// so `.gz` files flow through the same parsers as plain text — from CLI
// files, daemon request blobs, or any istream. Builds without zlib
// (-DREPUTE_ZLIB=OFF) reject gzip input with a clear error instead.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::util {
class GzipInputStream;
} // namespace repute::util

namespace repute::genomics {

struct FastaRecord {
    std::string name;     ///< header without '>' up to first whitespace
    std::string sequence; ///< raw ASCII bases
};

/// Parses all records from a FASTA stream; throws std::runtime_error on a
/// structurally malformed file (e.g. sequence data before any header).
std::vector<FastaRecord> read_fasta(std::istream& in);
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records wrapped at `line_width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 70);

struct FastqRecord {
    std::string name;
    std::string sequence;
    std::string quality; ///< same length as sequence
};

std::vector<FastqRecord> read_fastq(std::istream& in);
std::vector<FastqRecord> read_fastq_file(const std::string& path);
void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);

/// Converts FASTQ records into a fixed-length ReadBatch; records whose
/// length differs from the majority length are dropped (mirrors the
/// paper's fixed-n kernels). Returns number of dropped records via out
/// param if non-null.
ReadBatch to_read_batch(const std::vector<FastqRecord>& records,
                        std::size_t* dropped = nullptr);

enum class FastxFormat { Auto, Fasta, Fastq };

/// Record-at-a-time FASTA/FASTQ scanner — the streaming counterpart of
/// read_fasta()/read_fastq(). Instead of throwing on a structurally
/// malformed record it reports Status::Malformed for that record and
/// resynchronizes on the next plausible record start, so a caller can
/// implement a per-record error policy (drop-and-count or fail-fast)
/// without losing the rest of the file. FASTA records come back as
/// FastqRecords with an empty quality string.
class FastxRecordStream {
public:
    enum class Status {
        Record,    ///< `out` holds the next well-formed record
        Malformed, ///< record skipped; `error` describes why
        End,       ///< stream exhausted
    };

    /// The stream must outlive the scanner. With FastxFormat::Auto the
    /// format is resolved from the first record marker ('>' vs '@').
    /// Gzip-compressed input (magic 0x1f 0x8b at the current position)
    /// is inflated transparently; throws std::runtime_error when the
    /// build carries no zlib.
    explicit FastxRecordStream(std::istream& in,
                               FastxFormat format = FastxFormat::Auto);
    ~FastxRecordStream();

    Status next(FastqRecord& out, std::string* error = nullptr);

    /// Resolved format (Auto until the first marker has been seen).
    FastxFormat format() const noexcept { return format_; }

    /// Records consumed so far, malformed ones included (1-based ordinal
    /// of the most recently returned record).
    std::size_t records_seen() const noexcept { return records_seen_; }

    /// True when the underlying input is gzip-compressed.
    bool compressed() const noexcept { return gz_ != nullptr; }

    /// Uncompressed byte offset of the most recent record's first line
    /// — where malformed-record errors point.
    std::uint64_t record_offset() const noexcept { return record_offset_; }

    /// Compressed-file byte offset consumed so far (upper bound on the
    /// current record's position in the .gz file); 0 for plain input.
    std::uint64_t compressed_offset() const noexcept;

private:
    bool next_line(std::string& line);
    Status next_fasta(FastqRecord& out, std::string* error);
    Status next_fastq(FastqRecord& out, std::string* error);
    /// " (at byte N)" / " (at uncompressed byte N, compressed byte
    /// <= M)" — appended to every malformed-record error.
    std::string offset_suffix() const;

    std::istream* in_;
    std::unique_ptr<util::GzipInputStream> gz_; ///< set for .gz input
    FastxFormat format_;
    std::string pending_; ///< one-line lookahead (FASTA record boundary)
    bool has_pending_ = false;
    std::size_t records_seen_ = 0;
    std::uint64_t next_offset_ = 0;    ///< uncompressed cursor
    std::uint64_t line_offset_ = 0;    ///< start of the last line read
    std::uint64_t pending_offset_ = 0; ///< start of the pushed-back line
    std::uint64_t record_offset_ = 0;  ///< start of the current record
};

} // namespace repute::genomics
