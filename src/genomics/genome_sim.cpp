#include "genomics/genome_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace repute::genomics {

namespace {

using util::Xoshiro256;

/// Draws one base code under a GC bias: P(G)+P(C) = gc.
std::uint8_t draw_base(Xoshiro256& rng, double gc) {
    const double u = rng.uniform();
    if (u < gc) return rng.chance(0.5) ? 1 : 2;   // C or G
    return rng.chance(0.5) ? 0 : 3;               // A or T
}

std::vector<std::uint8_t> random_segment(Xoshiro256& rng, std::size_t len,
                                         double gc) {
    std::vector<std::uint8_t> seg(len);
    for (auto& b : seg) b = draw_base(rng, gc);
    return seg;
}

/// Copy of `master` with per-base substitution probability `divergence`.
std::vector<std::uint8_t> diverged_copy(Xoshiro256& rng,
                                        const std::vector<std::uint8_t>& master,
                                        double divergence) {
    std::vector<std::uint8_t> copy = master;
    for (auto& b : copy) {
        if (rng.chance(divergence)) {
            b = static_cast<std::uint8_t>((b + 1 + rng.bounded(3)) & 3u);
        }
    }
    return copy;
}

} // namespace

Reference simulate_genome(const GenomeSimConfig& config, std::string name) {
    if (config.length == 0) {
        throw std::invalid_argument("genome length must be positive");
    }
    if (config.interspersed_fraction + config.tandem_fraction >= 1.0) {
        throw std::invalid_argument(
            "repeat fractions must leave room for background sequence");
    }

    Xoshiro256 rng(config.seed);

    // Master copies for each interspersed repeat family.
    std::vector<std::vector<std::uint8_t>> families;
    families.reserve(config.n_repeat_families);
    for (std::size_t f = 0; f < config.n_repeat_families; ++f) {
        families.push_back(
            random_segment(rng, config.repeat_family_length,
                           config.gc_content));
    }

    std::vector<std::uint8_t> genome;
    genome.reserve(config.length);

    while (genome.size() < config.length) {
        const double u = rng.uniform();
        if (!families.empty() && u < config.interspersed_fraction) {
            const auto& master = families[rng.bounded(families.size())];
            auto copy = diverged_copy(rng, master, config.repeat_divergence);
            genome.insert(genome.end(), copy.begin(), copy.end());
        } else if (u < config.interspersed_fraction + config.tandem_fraction) {
            const std::size_t motif_len =
                config.tandem_motif_min +
                rng.bounded(config.tandem_motif_max - config.tandem_motif_min +
                            1);
            const std::size_t copies =
                config.tandem_copies_min +
                rng.bounded(config.tandem_copies_max -
                            config.tandem_copies_min + 1);
            const auto motif =
                random_segment(rng, motif_len, config.gc_content);
            for (std::size_t c = 0; c < copies; ++c) {
                genome.insert(genome.end(), motif.begin(), motif.end());
            }
        } else {
            // Background stretch between repeat insertions.
            const std::size_t len = 200 + rng.bounded(800);
            auto seg = random_segment(rng, len, config.gc_content);
            genome.insert(genome.end(), seg.begin(), seg.end());
        }
    }
    genome.resize(config.length);

    util::PackedDna packed(
        std::span<const std::uint8_t>(genome.data(), genome.size()));
    return Reference(std::move(name), std::move(packed));
}

} // namespace repute::genomics
