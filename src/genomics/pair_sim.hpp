#pragma once
// Paired-end read simulation.
//
// Illumina FR library model: a fragment of the genome is sampled with a
// Gaussian insert-size distribution; read 1 is the fragment's 5' end on
// the forward strand, read 2 is the reverse complement of its 3' end.
// Each mate is corrupted by the same error models as single-end reads.
// Ground truth (fragment start/length, per-mate origins) powers the
// proper-pairing tests.

#include <cstdint>
#include <vector>

#include "genomics/read_sim.hpp"
#include "genomics/sequence.hpp"

namespace repute::genomics {

struct PairSimConfig {
    std::size_t n_pairs = 10'000;
    std::size_t read_length = 100;
    std::uint32_t max_errors = 5;
    double indel_fraction = 0.15;
    double insert_mean = 350.0;  ///< outer fragment length
    double insert_stddev = 35.0;
    std::uint64_t seed = 200;
};

struct PairOrigin {
    std::uint32_t fragment_start = 0;
    std::uint32_t fragment_length = 0;
    std::uint32_t edits1 = 0;
    std::uint32_t edits2 = 0;
};

struct SimulatedPairs {
    ReadBatch first;   ///< read 1 of each pair (forward orientation)
    ReadBatch second;  ///< read 2 of each pair (reverse orientation)
    std::vector<PairOrigin> origins;
};

/// Samples pairs under `config`. Fragment lengths are clamped to
/// [read_length, 4 * insert_mean]. Throws std::invalid_argument when
/// the reference cannot host the largest fragment.
SimulatedPairs simulate_pairs(const Reference& reference,
                              const PairSimConfig& config);

} // namespace repute::genomics
