#pragma once
// Synthetic reference genome generator.
//
// Substitute for human chromosome 21 (GRCh38), which is not available
// offline. What the filtration stage actually cares about is the k-mer
// frequency spectrum: real genomes are repeat-rich, so different k-mers
// of one read can have wildly different candidate counts — that skew is
// what optimal seed selection exploits (paper Fig. 1). The generator
// therefore plants:
//   * tandem repeats (microsatellite-style short motifs repeated in runs),
//   * interspersed repeats (Alu/LINE-style segments copied genome-wide
//     with per-copy divergence),
//   * GC-biased background sequence,
// yielding a heavy-tailed k-mer spectrum comparable in shape to chr21.

#include <cstdint>

#include "genomics/sequence.hpp"

namespace repute::genomics {

struct GenomeSimConfig {
    std::size_t length = 8'000'000;  ///< bases
    std::uint64_t seed = 21;         ///< master seed (chr21 homage)
    double gc_content = 0.41;        ///< chr21-like GC fraction

    // Interspersed repeats: `n_repeat_families` master segments, each
    // copied until `interspersed_fraction` of the genome is repeat-derived.
    double interspersed_fraction = 0.40; ///< chr21 is ~46% repetitive
    std::size_t n_repeat_families = 12;
    std::size_t repeat_family_length = 300; ///< Alu-sized
    double repeat_divergence = 0.08; ///< per-base mutation rate per copy

    // Tandem repeats: short motifs repeated back-to-back.
    double tandem_fraction = 0.03;
    std::size_t tandem_motif_min = 2;
    std::size_t tandem_motif_max = 6;
    std::size_t tandem_copies_min = 10;
    std::size_t tandem_copies_max = 60;
};

/// Generates a reference named `name` under the given configuration.
Reference simulate_genome(const GenomeSimConfig& config,
                          std::string name = "chr21-sim");

} // namespace repute::genomics
