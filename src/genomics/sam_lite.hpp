#pragma once
// SAM-lite output.
//
// The paper's REPUTE reports (position, edit distance, strand) per
// mapping and defers full SAM/CIGAR to future work; we emit a SAM-subset
// record that carries exactly those fields plus the CIGAR string our
// alignment layer produces (implemented here as the paper's announced
// extension).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::genomics {

struct SamRecord {
    std::string qname;       ///< read name
    std::uint16_t flag = 0;  ///< 0x10 = reverse strand, 0x4 = unmapped
    std::string rname;       ///< reference name ('*' if unmapped)
    std::uint32_t pos = 0;   ///< 1-based leftmost position (0 if unmapped)
    std::uint8_t mapq = 255;
    std::string cigar = "*";
    std::string seq = "*";
    std::uint32_t edit_distance = 0; ///< emitted as NM:i tag

    static constexpr std::uint16_t kFlagPaired = 0x1;
    static constexpr std::uint16_t kFlagProperPair = 0x2;
    static constexpr std::uint16_t kFlagUnmapped = 0x4;
    static constexpr std::uint16_t kFlagMateUnmapped = 0x8;
    static constexpr std::uint16_t kFlagReverse = 0x10;
    static constexpr std::uint16_t kFlagMateReverse = 0x20;
    static constexpr std::uint16_t kFlagFirstInPair = 0x40;
    static constexpr std::uint16_t kFlagSecondInPair = 0x80;
    static constexpr std::uint16_t kFlagSecondary = 0x100;

    // Mate fields (RNEXT/PNEXT/TLEN); defaults match single-end output.
    std::string rnext = "*";
    std::uint32_t pnext = 0;
    std::int32_t tlen = 0;

    bool unmapped() const noexcept { return flag & kFlagUnmapped; }
    Strand strand() const noexcept {
        return (flag & kFlagReverse) ? Strand::Reverse : Strand::Forward;
    }
};

/// Writes @HD/@SQ headers followed by the records.
void write_sam(std::ostream& out, const std::string& reference_name,
               std::size_t reference_length,
               const std::vector<SamRecord>& records);

/// Parses records written by write_sam (headers skipped). Tolerates
/// missing optional tags; throws std::runtime_error on malformed lines.
std::vector<SamRecord> read_sam(std::istream& in);

} // namespace repute::genomics
