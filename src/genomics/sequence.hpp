#pragma once
// Sequence containers shared by the whole pipeline.
//
// A Reference is a named chromosome stored 2-bit packed (N bases are
// randomized at load time, the standard trick used by FM-index mappers so
// the index alphabet stays {A,C,G,T}). A Read is a short unpacked
// sequence — reads are streamed through kernels as plain code arrays.

#include <cstdint>
#include <string>
#include <vector>

#include "util/packed_dna.hpp"

namespace repute::genomics {

/// Strand of the reference a read aligns to.
enum class Strand : std::uint8_t { Forward = 0, Reverse = 1 };

constexpr char strand_char(Strand s) noexcept {
    return s == Strand::Forward ? '+' : '-';
}

struct Read {
    std::uint32_t id = 0;         ///< dense index in the batch
    std::string name;             ///< FASTQ name (may be empty)
    std::vector<std::uint8_t> codes; ///< 2-bit codes, one byte per base
    std::string quality; ///< Phred+33 string (empty when unmodeled)

    std::size_t length() const noexcept { return codes.size(); }
    std::string to_string() const;
    /// Reverse-complemented copy of the base codes.
    std::vector<std::uint8_t> reverse_complement() const;
    /// In-place variant reusing `rc`'s capacity.
    void reverse_complement(std::vector<std::uint8_t>& rc) const;
};

/// A batch of same-length reads (the paper maps fixed-length read sets:
/// n = 100 and n = 150).
struct ReadBatch {
    std::vector<Read> reads;
    std::size_t read_length = 0;

    std::size_t size() const noexcept { return reads.size(); }
    bool empty() const noexcept { return reads.empty(); }
};

class Reference {
public:
    Reference() = default;
    Reference(std::string name, util::PackedDna sequence)
        : name_(std::move(name)), sequence_(std::move(sequence)) {}

    /// Builds from ASCII; 'N'/'n' and any non-ACGT byte are replaced by a
    /// deterministic pseudo-random base derived from `n_seed` + position.
    static Reference from_ascii(std::string name, std::string_view ascii,
                                std::uint64_t n_seed = 1);

    const std::string& name() const noexcept { return name_; }
    const util::PackedDna& sequence() const noexcept { return sequence_; }
    std::size_t size() const noexcept { return sequence_.size(); }

    std::uint8_t code_at(std::size_t i) const noexcept {
        return sequence_.code_at(i);
    }

private:
    std::string name_;
    util::PackedDna sequence_;
};

} // namespace repute::genomics
