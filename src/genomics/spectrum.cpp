#include "genomics/spectrum.hpp"

#include <algorithm>
#include <stdexcept>

namespace repute::genomics {

namespace {

std::vector<std::uint32_t> count_table(const Reference& reference,
                                       std::uint32_t k) {
    if (k < 4 || k > 14) {
        throw std::invalid_argument("kmer_spectrum: k must be in [4, 14]");
    }
    if (reference.size() < k) {
        throw std::invalid_argument("kmer_spectrum: reference shorter than k");
    }
    std::vector<std::uint32_t> counts(1ULL << (2 * k), 0);
    const std::uint64_t mask = (1ULL << (2 * k)) - 1;
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        key = ((key << 2) | reference.code_at(i)) & mask;
        if (i + 1 >= k) ++counts[key];
    }
    return counts;
}

} // namespace

SpectrumSummary kmer_spectrum(const Reference& reference, std::uint32_t k) {
    const auto counts = count_table(reference, k);

    SpectrumSummary s;
    s.k = k;
    s.total_kmers = reference.size() - k + 1;
    for (const std::uint32_t c : counts) {
        if (c == 0) continue;
        ++s.distinct_kmers;
        s.max_frequency = std::max(s.max_frequency, c);
    }
    s.mean_frequency = s.distinct_kmers == 0
                           ? 0.0
                           : static_cast<double>(s.total_kmers) /
                                 static_cast<double>(s.distinct_kmers);

    // Position-weighted percentile and repetitive fraction: a k-mer of
    // frequency f contributes f positions at frequency f.
    std::vector<std::uint32_t> nonzero;
    nonzero.reserve(s.distinct_kmers);
    std::uint64_t repetitive_positions = 0;
    for (const std::uint32_t c : counts) {
        if (c == 0) continue;
        nonzero.push_back(c);
        if (c > 4) repetitive_positions += c;
    }
    s.repetitive_fraction =
        static_cast<double>(repetitive_positions) /
        static_cast<double>(s.total_kmers);

    std::sort(nonzero.begin(), nonzero.end());
    std::uint64_t cumulative = 0;
    const auto threshold = static_cast<std::uint64_t>(
        0.99 * static_cast<double>(s.total_kmers));
    for (const std::uint32_t c : nonzero) {
        cumulative += c;
        if (cumulative >= threshold) {
            s.p99_frequency = c;
            break;
        }
    }
    return s;
}

std::vector<std::uint32_t> kmer_frequency_profile(
    const Reference& reference, std::uint32_t k) {
    const auto counts = count_table(reference, k);
    std::vector<std::uint32_t> profile(reference.size() - k + 1);
    const std::uint64_t mask = (1ULL << (2 * k)) - 1;
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        key = ((key << 2) | reference.code_at(i)) & mask;
        if (i + 1 >= k) profile[i + 1 - k] = counts[key];
    }
    return profile;
}

} // namespace repute::genomics
