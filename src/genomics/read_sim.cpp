#include "genomics/read_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace repute::genomics {

namespace {

using util::Xoshiro256;

/// Applies `n_errors` random edits to `bases`, keeping length fixed by
/// compensating indels with reference bases pulled from the template
/// tail. The caller passes a template longer than the read so deletions
/// can be back-filled.
std::uint32_t corrupt(Xoshiro256& rng, std::vector<std::uint8_t>& bases,
                      std::size_t target_len, std::uint32_t n_errors,
                      double indel_fraction) {
    std::uint32_t applied = 0;
    for (std::uint32_t e = 0; e < n_errors; ++e) {
        const double kind = rng.uniform();
        if (kind >= indel_fraction || bases.size() <= target_len) {
            // Substitution: replace with a different base.
            const std::size_t pos = rng.bounded(std::min(bases.size(),
                                                         target_len));
            bases[pos] = static_cast<std::uint8_t>(
                (bases[pos] + 1 + rng.bounded(3)) & 3u);
        } else if (rng.chance(0.5)) {
            // Insertion of a random base.
            const std::size_t pos = rng.bounded(target_len);
            bases.insert(bases.begin() + static_cast<std::ptrdiff_t>(pos),
                         static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            // Deletion; the surplus template tail re-fills the length.
            const std::size_t pos = rng.bounded(target_len);
            bases.erase(bases.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        ++applied;
    }
    return applied;
}

/// Phred score at read position i under the linear ramp.
double phred_at(const ReadSimConfig& config, std::size_t i) {
    const double t =
        config.read_length <= 1
            ? 0.0
            : static_cast<double>(i) /
                  static_cast<double>(config.read_length - 1);
    return config.phred_start +
           (config.phred_end - config.phred_start) * t;
}

/// Quality-model corruption: per-base error probability 10^(-q/10),
/// capped at max_errors total. Length kept via the template tail as in
/// corrupt(). Returns errors applied.
std::uint32_t corrupt_by_quality(Xoshiro256& rng,
                                 std::vector<std::uint8_t>& bases,
                                 const ReadSimConfig& config) {
    std::uint32_t applied = 0;
    for (std::size_t i = 0;
         i < config.read_length && applied < config.max_errors; ++i) {
        const double p_err = std::pow(10.0, -phred_at(config, i) / 10.0);
        if (!rng.chance(p_err)) continue;
        if (rng.uniform() >= config.indel_fraction ||
            bases.size() <= config.read_length) {
            bases[i] = static_cast<std::uint8_t>(
                (bases[i] + 1 + rng.bounded(3)) & 3u);
        } else if (rng.chance(0.5)) {
            bases.insert(bases.begin() + static_cast<std::ptrdiff_t>(i),
                         static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            bases.erase(bases.begin() + static_cast<std::ptrdiff_t>(i));
        }
        ++applied;
    }
    return applied;
}

std::string quality_string(const ReadSimConfig& config) {
    std::string q(config.read_length, 'I');
    for (std::size_t i = 0; i < config.read_length; ++i) {
        const int phred = std::clamp(
            static_cast<int>(std::lround(phred_at(config, i))), 2, 41);
        q[i] = static_cast<char>(33 + phred);
    }
    return q;
}

} // namespace

SimulatedReads simulate_reads(const Reference& reference,
                              const ReadSimConfig& config) {
    const std::size_t window = config.read_length + config.max_errors;
    if (reference.size() < window) {
        throw std::invalid_argument(
            "reference too short for requested read length + error budget");
    }

    Xoshiro256 rng(config.seed);
    SimulatedReads out;
    out.batch.read_length = config.read_length;
    out.batch.reads.reserve(config.n_reads);
    out.origins.reserve(config.n_reads);

    const std::size_t max_start = reference.size() - window;
    for (std::size_t i = 0; i < config.n_reads; ++i) {
        const auto start =
            static_cast<std::uint32_t>(rng.bounded(max_start + 1));
        const Strand strand =
            rng.chance(0.5) ? Strand::Forward : Strand::Reverse;

        // Template = read_length + max_errors bases so deletions can be
        // compensated from genuine downstream reference sequence. The
        // corruption is applied in forward coordinates (anchored at
        // `start`) and reverse-strand reads are complemented afterwards,
        // so `start` is the exact forward-strand alignment start for
        // both strands.
        std::vector<std::uint8_t> tmpl =
            reference.sequence().extract(start, window);

        std::uint32_t applied = 0;
        if (config.quality_model) {
            applied = corrupt_by_quality(rng, tmpl, config);
        } else {
            const auto n_errors = static_cast<std::uint32_t>(
                rng.bounded(config.max_errors + 1));
            applied = corrupt(rng, tmpl, config.read_length, n_errors,
                              config.indel_fraction);
        }
        tmpl.resize(config.read_length);
        if (strand == Strand::Reverse) {
            std::reverse(tmpl.begin(), tmpl.end());
            for (auto& b : tmpl) b = util::complement_code(b);
        }

        Read read;
        read.id = static_cast<std::uint32_t>(i);
        read.name = "simread." + std::to_string(i);
        read.codes = std::move(tmpl);
        if (config.quality_model) {
            read.quality = quality_string(config);
            if (strand == Strand::Reverse) {
                // FASTQ qualities follow the read orientation.
                std::reverse(read.quality.begin(), read.quality.end());
            }
        }
        out.batch.reads.push_back(std::move(read));
        out.origins.push_back({start, strand, applied});
    }
    return out;
}

std::vector<FastqRecord> to_fastq_records(const SimulatedReads& sim) {
    std::vector<FastqRecord> records;
    records.reserve(sim.batch.size());
    for (const Read& read : sim.batch.reads) {
        records.push_back(
            {read.name, read.to_string(),
             read.quality.empty() ? std::string(read.length(), 'I')
                                  : read.quality});
    }
    return records;
}

} // namespace repute::genomics
