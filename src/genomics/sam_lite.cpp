#include "genomics/sam_lite.hpp"

#include <charconv>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repute::genomics {

void write_sam(std::ostream& out, const std::string& reference_name,
               std::size_t reference_length,
               const std::vector<SamRecord>& records) {
    out << "@HD\tVN:1.6\tSO:unknown\n";
    out << "@SQ\tSN:" << reference_name << "\tLN:" << reference_length
        << '\n';
    out << "@PG\tID:repute\tPN:repute\tVN:1.0.0\n";
    for (const auto& r : records) {
        out << r.qname << '\t' << r.flag << '\t'
            << (r.unmapped() ? "*" : r.rname) << '\t' << r.pos << '\t'
            << static_cast<unsigned>(r.mapq) << '\t' << r.cigar << '\t'
            << r.rnext << '\t' << r.pnext << '\t' << r.tlen << '\t'
            << r.seq << "\t*\tNM:i:" << r.edit_distance << '\n';
    }
}

namespace {

std::uint64_t parse_u64(const std::string& field, const char* what) {
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), v);
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
        throw std::runtime_error(std::string("SAM: bad ") + what + ": " +
                                 field);
    }
    return v;
}

} // namespace

std::vector<SamRecord> read_sam(std::istream& in) {
    std::vector<SamRecord> records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '@') continue;
        std::istringstream ss(line);
        std::vector<std::string> fields;
        std::string field;
        while (std::getline(ss, field, '\t')) fields.push_back(field);
        if (fields.size() < 11) {
            throw std::runtime_error("SAM: record with <11 fields: " + line);
        }
        SamRecord r;
        r.qname = fields[0];
        r.flag = static_cast<std::uint16_t>(parse_u64(fields[1], "flag"));
        r.rname = fields[2];
        r.pos = static_cast<std::uint32_t>(parse_u64(fields[3], "pos"));
        r.mapq = static_cast<std::uint8_t>(parse_u64(fields[4], "mapq"));
        r.cigar = fields[5];
        r.rnext = fields[6];
        r.pnext = static_cast<std::uint32_t>(parse_u64(fields[7], "pnext"));
        r.tlen = static_cast<std::int32_t>(
            std::strtol(fields[8].c_str(), nullptr, 10));
        r.seq = fields[9];
        for (std::size_t i = 11; i < fields.size(); ++i) {
            if (fields[i].rfind("NM:i:", 0) == 0) {
                r.edit_distance = static_cast<std::uint32_t>(
                    parse_u64(fields[i].substr(5), "NM tag"));
            }
        }
        records.push_back(std::move(r));
    }
    return records;
}

} // namespace repute::genomics
