#pragma once
// Multi-sequence reference support.
//
// The paper maps against one chromosome; a practical tool must accept a
// whole-genome FASTA. The standard trick (used by BWA, Bowtie, GEM): the
// sequences are concatenated into one indexable text and mapping
// positions are resolved back to (sequence name, local offset) at output
// time; mappings whose window straddles a boundary are rejected, since
// their alignments would span two chromosomes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/sequence.hpp"

namespace repute::genomics {

class MultiReference {
public:
    /// Builds from FASTA records (each becomes one sequence). Throws
    /// std::invalid_argument when `records` is empty or any sequence is.
    explicit MultiReference(const std::vector<FastaRecord>& records,
                            std::string name = "multi");

    /// Wraps an already-built single-sequence reference (no re-packing,
    /// no N re-randomization) — the in-process MappingSession path.
    explicit MultiReference(Reference reference);

    /// Reassembles from pre-resolved parts — the .rix load path, where
    /// the packed text comes straight from the mapping and the name /
    /// start tables from their sections. `starts` must have
    /// `names.size() + 1` entries, start at 0, be non-decreasing and end
    /// at `reference.size()`. Throws std::invalid_argument otherwise.
    MultiReference(Reference reference, std::vector<std::string> names,
                   std::vector<std::uint32_t> starts);

    /// The concatenated reference (index this).
    const Reference& concatenated() const noexcept { return reference_; }

    std::size_t sequence_count() const noexcept { return names_.size(); }
    const std::string& sequence_name(std::size_t i) const {
        return names_.at(i);
    }
    /// Length of sequence i.
    std::uint32_t sequence_length(std::size_t i) const {
        return starts_.at(i + 1) - starts_.at(i);
    }

    struct Location {
        std::size_t sequence_index = 0;
        std::uint32_t offset = 0; ///< 0-based within the sequence
    };

    /// Maps a concatenated-text position back to its sequence. Throws
    /// std::out_of_range past the end of the text.
    Location resolve(std::uint32_t global_position) const;

    /// True when [global_position, global_position + length) stays
    /// within one sequence — i.e. the mapping is reportable.
    bool within_one_sequence(std::uint32_t global_position,
                             std::uint32_t length) const;

    /// Name / boundary tables — what the .rix writer serializes.
    const std::vector<std::string>& names() const noexcept {
        return names_;
    }
    const std::vector<std::uint32_t>& starts() const noexcept {
        return starts_;
    }

private:
    Reference reference_;
    std::vector<std::string> names_;
    std::vector<std::uint32_t> starts_; ///< size names_.size() + 1
};

} // namespace repute::genomics
