#pragma once
// k-mer spectrum analysis.
//
// The filtration strategies differ exactly when the reference's k-mer
// frequency spectrum is skewed (repeats); this module quantifies that
// skew. Used to validate that the synthetic chr21 stand-in reproduces
// the heavy-tailed spectrum of real chromosomes (DESIGN.md §2), and by
// the pigeonhole demo to find illustrative reads.

#include <cstdint>
#include <vector>

#include "genomics/sequence.hpp"

namespace repute::genomics {

struct SpectrumSummary {
    std::uint32_t k = 0;
    std::uint64_t total_kmers = 0;    ///< n - k + 1 positions
    std::uint64_t distinct_kmers = 0;
    double mean_frequency = 0.0;      ///< total / distinct
    std::uint32_t max_frequency = 0;
    std::uint32_t p99_frequency = 0;  ///< 99th percentile over positions
    /// Fraction of positions whose k-mer occurs more than 4 times —
    /// a direct proxy for "how much work does naive filtration waste".
    double repetitive_fraction = 0.0;
};

/// Exact spectrum for k <= 14 (counting table of 4^k u32 cells).
/// Throws std::invalid_argument outside [4, 14] or when the reference
/// is shorter than k.
SpectrumSummary kmer_spectrum(const Reference& reference, std::uint32_t k);

/// Per-position frequency profile: out[i] = frequency of the k-mer at
/// position i (same constraints as kmer_spectrum).
std::vector<std::uint32_t> kmer_frequency_profile(
    const Reference& reference, std::uint32_t k);

} // namespace repute::genomics
