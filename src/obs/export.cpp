#include "obs/export.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

namespace repute::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
    char buffer[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    out += buffer;
}

/// Event rows normalized to export form so spans and instants sort and
/// print through one code path.
struct EventRow {
    int pid = 0;
    int tid = 0;
    double ts_us = 0.0;  ///< normalized microseconds
    double dur_us = 0.0; ///< 0 for instants
    bool instant = false;
    std::string name;
    std::string stage;
    std::int64_t chunk = -1;
    std::string detail;

    bool operator<(const EventRow& other) const {
        if (pid != other.pid) return pid < other.pid;
        if (tid != other.tid) return tid < other.tid;
        if (ts_us != other.ts_us) return ts_us < other.ts_us;
        // Longer spans first so parents precede the children they
        // contain (chrome://tracing nests by containment).
        if (dur_us != other.dur_us) return dur_us > other.dur_us;
        if (name != other.name) return name < other.name;
        return detail < other.detail;
    }
};

void append_args(std::string& out, const EventRow& row) {
    std::string args;
    if (!row.stage.empty()) {
        args += "\"stage\":\"";
        append_escaped(args, row.stage);
        args += '"';
    }
    if (row.chunk >= 0) {
        if (!args.empty()) args += ',';
        appendf(args, "\"chunk\":%lld",
                static_cast<long long>(row.chunk));
    }
    if (!row.detail.empty()) {
        if (!args.empty()) args += ',';
        args += "\"detail\":\"";
        append_escaped(args, row.detail);
        args += '"';
    }
    if (!args.empty()) {
        out += ",\"args\":{";
        out += args;
        out += '}';
    }
}

} // namespace

std::string chrome_trace_json(const TraceRecorder& recorder) {
    const std::vector<TraceSpan> spans = recorder.spans();
    const std::vector<TraceInstant> instants = recorder.instants();

    // pid per device (sorted names), tid per track within a device
    // (queue ids ascending; the scheduler track, ~0, sorts last).
    std::map<std::string, std::map<std::uint64_t, int>> layout;
    std::map<std::string, double> origin;
    auto note = [&](const std::string& device, std::uint64_t track,
                    double at) {
        layout[device][track] = 0;
        auto [it, inserted] = origin.try_emplace(device, at);
        if (!inserted) it->second = std::min(it->second, at);
    };
    for (const TraceSpan& s : spans) {
        note(s.device, s.track, s.start_seconds);
    }
    for (const TraceInstant& i : instants) {
        note(i.device, i.track, i.at_seconds);
    }

    std::map<std::string, int> pids;
    int next_pid = 0;
    for (auto& [device, tracks] : layout) {
        pids[device] = next_pid++;
        int next_tid = 0;
        for (auto& [track, tid] : tracks) tid = next_tid++;
    }

    std::string out = "{\"traceEvents\":[\n";

    // Metadata: process and thread names.
    bool first = true;
    auto sep = [&] {
        if (!first) out += ",\n";
        first = false;
    };
    for (const auto& [device, pid] : pids) {
        sep();
        appendf(out,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                "\"name\":\"process_name\",\"args\":{\"name\":\"",
                pid);
        append_escaped(out, device);
        out += "\"}}";
        for (const auto& [track, tid] : layout[device]) {
            sep();
            appendf(out,
                    "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                    pid, tid);
            if (track == kSchedulerTrack) {
                out += "scheduler";
            } else if (track == kXferWriteTrack) {
                out += "dma-h2d";
            } else if (track == kXferReadTrack) {
                out += "dma-d2h";
            } else {
                appendf(out, "queue %llu",
                        static_cast<unsigned long long>(track));
            }
            out += "\"}}";
        }
    }

    std::vector<EventRow> rows;
    rows.reserve(spans.size() + instants.size());
    for (const TraceSpan& s : spans) {
        EventRow row;
        row.pid = pids[s.device];
        row.tid = layout[s.device][s.track];
        row.ts_us = (s.start_seconds - origin[s.device]) * 1e6;
        row.dur_us = s.duration_seconds * 1e6;
        row.name = s.name;
        row.stage = s.stage;
        row.chunk = s.chunk;
        row.detail = s.detail;
        rows.push_back(std::move(row));
    }
    for (const TraceInstant& i : instants) {
        EventRow row;
        row.pid = pids[i.device];
        row.tid = layout[i.device][i.track];
        row.ts_us = (i.at_seconds - origin[i.device]) * 1e6;
        row.instant = true;
        row.name = i.name;
        row.detail = i.detail;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());

    for (const EventRow& row : rows) {
        sep();
        if (row.instant) {
            appendf(out,
                    "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"s\":\"t\",\"name\":\"",
                    row.pid, row.tid, row.ts_us);
        } else {
            appendf(out,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"name\":\"",
                    row.pid, row.tid, row.ts_us, row.dur_us);
        }
        append_escaped(out, row.name);
        out += '"';
        append_args(out, row);
        out += '}';
    }

    out += "\n]}\n";
    return out;
}

std::string stage_summary(const TraceRecorder& recorder,
                          const MetricsRegistry* metrics) {
    const auto totals = recorder.stage_totals();
    const auto busy = recorder.device_busy_seconds();

    std::string out;
    appendf(out, "%-14s %10s %14s %14s %14s %12s\n", "device",
            "launch(s)", "filtration", "locate", "verify", "candidates");
    StageCounters fleet;
    double fleet_busy = 0.0;
    for (const auto& [device, counters] : totals) {
        const auto it = busy.find(device);
        const double seconds = it == busy.end() ? 0.0 : it->second;
        const double total =
            std::max<double>(1.0, static_cast<double>(counters.total_ops()));
        appendf(out,
                "%-14s %10.4f %9llu %3.0f%% %9llu %3.0f%% %9llu %3.0f%% "
                "%12llu\n",
                device.c_str(), seconds,
                static_cast<unsigned long long>(counters.filtration_ops),
                100.0 * static_cast<double>(counters.filtration_ops) / total,
                static_cast<unsigned long long>(counters.locate_ops),
                100.0 * static_cast<double>(counters.locate_ops) / total,
                static_cast<unsigned long long>(counters.verify_ops),
                100.0 * static_cast<double>(counters.verify_ops) / total,
                static_cast<unsigned long long>(counters.candidates));
        fleet += counters;
        fleet_busy = std::max(fleet_busy, seconds);
    }
    if (totals.size() > 1) {
        appendf(out, "%-14s %10.4f %14llu %14llu %14llu %12llu\n", "fleet",
                fleet_busy,
                static_cast<unsigned long long>(fleet.filtration_ops),
                static_cast<unsigned long long>(fleet.locate_ops),
                static_cast<unsigned long long>(fleet.verify_ops),
                static_cast<unsigned long long>(fleet.candidates));
    }
    if (metrics != nullptr) {
        const std::string dump = metrics->format();
        if (!dump.empty()) {
            out += "-- metrics --\n";
            out += dump;
        }
    }
    return out;
}

std::string xfer_summary(const MetricsRegistry& metrics) {
    const auto counters = metrics.counter_values();
    const auto gauges = metrics.gauge_values();
    auto counter = [&](const std::string& name) -> std::uint64_t {
        const auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    };
    const std::uint64_t total_written = counter("xfer.bytes_written");
    const std::uint64_t total_read = counter("xfer.bytes_read");
    if (total_written == 0 && total_read == 0) return {};

    // Per-buffer rows from the xfer.buf.<name>.<direction> counters.
    // Both directions of one buffer fold into a single row.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> buffers;
    const std::string prefix = "xfer.buf.";
    auto suffix_of = [](const std::string& name, const std::string& tail) {
        return name.size() > tail.size() &&
               name.compare(name.size() - tail.size(), tail.size(), tail) ==
                   0;
    };
    for (const auto& [name, value] : counters) {
        if (name.rfind(prefix, 0) != 0) continue;
        // Parse by known suffix — buffer names may themselves contain
        // dots.
        const std::string written_tail = ".bytes_written";
        const std::string read_tail = ".bytes_read";
        if (suffix_of(name, written_tail)) {
            buffers[name.substr(prefix.size(), name.size() - prefix.size() -
                                                   written_tail.size())]
                .first += value;
        } else if (suffix_of(name, read_tail)) {
            buffers[name.substr(prefix.size(), name.size() - prefix.size() -
                                                   read_tail.size())]
                .second += value;
        }
    }

    std::string out;
    appendf(out, "%-28s %14s %14s\n", "buffer", "h2d bytes", "d2h bytes");
    for (const auto& [buffer, bytes] : buffers) {
        appendf(out, "%-28s %14llu %14llu\n", buffer.c_str(),
                static_cast<unsigned long long>(bytes.first),
                static_cast<unsigned long long>(bytes.second));
    }
    appendf(out, "%-28s %14llu %14llu\n", "total",
            static_cast<unsigned long long>(total_written),
            static_cast<unsigned long long>(total_read));
    appendf(out, "transfers: %llu writes, %llu reads\n",
            static_cast<unsigned long long>(counter("xfer.writes")),
            static_cast<unsigned long long>(counter("xfer.reads")));
    const auto overlap = gauges.find("xfer.overlap_ratio");
    if (overlap != gauges.end()) {
        appendf(out, "transfer/compute overlap ratio: %.3f\n",
                overlap->second);
    }
    return out;
}

} // namespace repute::obs
