#pragma once
// Trace exporters: Chrome trace-event JSON and a plain-text per-stage
// summary.
//
// The JSON loads directly in chrome://tracing or https://ui.perfetto.dev:
// one process (pid) per device, one thread (tid) per queue plus a
// "scheduler" thread for chunk lifecycle events. Timestamps are
// microseconds of modeled device time, normalized so each device's
// first event sits at 0 (device clocks are independent and persist
// across runs). The output is a pure, byte-deterministic function of
// the recorder's contents: events are sorted, ids are assigned from
// sorted names, and floats print with fixed precision.

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repute::obs {

/// Serializes every recorded span and instant as Chrome trace-event
/// JSON (complete "X" events for spans, "i" for instants, metadata "M"
/// records naming processes and threads).
std::string chrome_trace_json(const TraceRecorder& recorder);

/// Plain-text table: per-device stage op totals with percentage shares
/// and launch-span seconds, followed by a metrics dump when a registry
/// is supplied.
std::string stage_summary(const TraceRecorder& recorder,
                          const MetricsRegistry* metrics = nullptr);

/// Plain-text host<->device transfer table: one row per buffer
/// (`xfer.buf.*` counters) with staged/drained bytes, a fleet total
/// row, and the modeled transfer seconds + transfer/compute overlap
/// ratio when those metrics were recorded. Empty string when the run
/// performed no transfers.
std::string xfer_summary(const MetricsRegistry& metrics);

} // namespace repute::obs
