#include "obs/metrics.hpp"

#include <cstdio>

namespace repute::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

std::string MetricsRegistry::format() const {
    const std::lock_guard lock(mutex_);
    std::string out;
    char line[192];
    for (const auto& [name, counter] : counters_) {
        std::snprintf(line, sizeof line, "%-32s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(counter->value()));
        out += line;
    }
    for (const auto& [name, gauge] : gauges_) {
        std::snprintf(line, sizeof line, "%-32s %.6g\n", name.c_str(),
                      gauge->value());
        out += line;
    }
    for (const auto& [name, histogram] : histograms_) {
        const Histogram::Snapshot s = histogram->snapshot();
        std::snprintf(line, sizeof line,
                      "%-32s count=%llu mean=%.3f min=%.3f max=%.3f "
                      "p50=%.3g p99=%.3g\n",
                      name.c_str(),
                      static_cast<unsigned long long>(s.count), s.mean(),
                      s.min, s.max, s.quantile(0.5), s.quantile(0.99));
        out += line;
    }
    return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values()
    const {
    const std::lock_guard lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, counter] : counters_) {
        out[name] = counter->value();
    }
    return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
    const std::lock_guard lock(mutex_);
    std::map<std::string, double> out;
    for (const auto& [name, gauge] : gauges_) {
        out[name] = gauge->value();
    }
    return out;
}

} // namespace repute::obs
