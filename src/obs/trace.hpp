#pragma once
// Trace spans over *modeled* device time.
//
// The runtime models time (ocl::Device turns abstract ops into seconds
// on a per-device clock), so spans carry modeled intervals, not host
// wall time: a trace of a run is deterministic, host-independent, and
// its per-device span totals line up with MapResult::mapping_seconds.
//
// Span sources:
//   - ocl::CommandQueue records one span per kernel launch (the
//     device's queue track);
//   - core::HeterogeneousMapper subdivides each completed launch into
//     filtration → locate → verify sub-spans (record_stage_spans),
//     which nest under the launch span in the Chrome export;
//   - core::ChunkScheduler records chunk spans and steal / retry /
//     quarantine instants on a separate scheduler track.
//
// Nothing records unless a recorder is installed: obs::trace() and
// obs::metrics() are relaxed atomic loads returning nullptr when
// tracing is off, so instrumented paths cost one branch.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stage_counters.hpp"

namespace repute::obs {

/// Track (Chrome tid) carrying scheduler chunk spans and instants;
/// kernel launches use their queue id as the track.
inline constexpr std::uint64_t kSchedulerTrack = ~std::uint64_t{0};
/// Tracks carrying modeled host<->device DMA transfers ("dma-h2d" /
/// "dma-d2h" threads in the Chrome export). Transfers overlap kernel
/// launches, so like the scheduler track they are excluded from
/// device_busy_seconds().
inline constexpr std::uint64_t kXferWriteTrack = ~std::uint64_t{0} - 1;
inline constexpr std::uint64_t kXferReadTrack = ~std::uint64_t{0} - 2;

/// One closed interval on a device's modeled clock.
struct TraceSpan {
    std::string name;
    std::string device;            ///< pid grouping in the Chrome export
    std::uint64_t track = 0;       ///< queue id, or kSchedulerTrack
    double start_seconds = 0.0;    ///< modeled device-clock start
    double duration_seconds = 0.0;
    std::string stage;             ///< filtration/locate/verify sub-spans
    std::int64_t chunk = -1;       ///< first read index; -1 = not a chunk
    std::string detail;            ///< free-form attributes
};

/// A point event (steal, retry, quarantine).
struct TraceInstant {
    std::string name;
    std::string device;
    std::uint64_t track = kSchedulerTrack;
    double at_seconds = 0.0;
    std::string detail;
};

/// Thread-safe sink for spans/instants plus per-device stage totals
/// (fed by record_stage_spans, read by the summary exporter).
class TraceRecorder {
public:
    void record(TraceSpan span);
    void record(TraceInstant instant);
    void add_stage_counters(const std::string& device,
                            const StageCounters& counters);

    std::vector<TraceSpan> spans() const;
    std::vector<TraceInstant> instants() const;
    std::map<std::string, StageCounters> stage_totals() const;

    /// Modeled seconds each device spent in kernel launches: the sum of
    /// its queue-track launch spans (stage sub-spans excluded). For a
    /// single mapping run the fleet maximum equals mapping_seconds.
    std::map<std::string, double> device_busy_seconds() const;

private:
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
    std::vector<TraceInstant> instants_;
    std::map<std::string, StageCounters> stage_totals_;
};

/// Installed recorder / registry, or nullptr when tracing is off.
TraceRecorder* trace() noexcept;
MetricsRegistry* metrics() noexcept;

/// Installs (or clears, with nullptr) the global recorder pair. Callers
/// normally use TraceSession instead.
void install(TraceRecorder* recorder, MetricsRegistry* metrics) noexcept;

/// RAII scope owning one recorder + registry and installing them
/// globally. One session at a time; nesting throws.
class TraceSession {
public:
    TraceSession();
    ~TraceSession();
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    TraceRecorder& recorder() noexcept { return recorder_; }
    MetricsRegistry& registry() noexcept { return metrics_; }

private:
    TraceRecorder recorder_;
    MetricsRegistry metrics_;
};

/// Subdivides the compute interval of a completed launch — start
/// shifted past the dispatch overhead — into contiguous filtration →
/// locate → verify sub-spans proportional to the stage op counts, and
/// adds `counters` to the recorder's per-device stage totals. The split
/// is a deterministic function of the modeled interval and the counter
/// values, so traces stay reproducible.
void record_stage_spans(TraceRecorder& recorder, const std::string& device,
                        std::uint64_t track, double start_seconds,
                        double overhead_seconds, double duration_seconds,
                        const StageCounters& counters);

} // namespace repute::obs
