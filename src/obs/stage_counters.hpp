#pragma once
// Per-stage operation counters of the map kernel pipeline.
//
// One definition shared by the kernel accounting (core::StageTotals),
// the per-device run records (core::DeviceRun), core/report and the
// observability summary exporter — previously each kept its own copy of
// these fields and they drifted.

#include <cstdint>

namespace repute::obs {

/// Abstract-op totals of the three kernel stages plus the candidate
/// count linking filtration quality to verification work.
struct StageCounters {
    std::uint64_t filtration_ops = 0; ///< seed selection (FM + DP)
    std::uint64_t locate_ops = 0;     ///< SA locate walks
    std::uint64_t verify_ops = 0;     ///< Myers verification + windows
    std::uint64_t candidates = 0;     ///< windows passed to verification

    std::uint64_t total_ops() const noexcept {
        return filtration_ops + locate_ops + verify_ops;
    }

    StageCounters& operator+=(const StageCounters& other) noexcept {
        filtration_ops += other.filtration_ops;
        locate_ops += other.locate_ops;
        verify_ops += other.verify_ops;
        candidates += other.candidates;
        return *this;
    }
};

} // namespace repute::obs
