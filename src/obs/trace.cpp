#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace repute::obs {

void TraceRecorder::record(TraceSpan span) {
    const std::lock_guard lock(mutex_);
    spans_.push_back(std::move(span));
}

void TraceRecorder::record(TraceInstant instant) {
    const std::lock_guard lock(mutex_);
    instants_.push_back(std::move(instant));
}

void TraceRecorder::add_stage_counters(const std::string& device,
                                       const StageCounters& counters) {
    const std::lock_guard lock(mutex_);
    stage_totals_[device] += counters;
}

std::vector<TraceSpan> TraceRecorder::spans() const {
    const std::lock_guard lock(mutex_);
    return spans_;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
    const std::lock_guard lock(mutex_);
    return instants_;
}

std::map<std::string, StageCounters> TraceRecorder::stage_totals() const {
    const std::lock_guard lock(mutex_);
    return stage_totals_;
}

std::map<std::string, double> TraceRecorder::device_busy_seconds() const {
    const std::lock_guard lock(mutex_);
    std::map<std::string, double> busy;
    for (const TraceSpan& span : spans_) {
        if (span.track == kSchedulerTrack || span.track == kXferWriteTrack ||
            span.track == kXferReadTrack || !span.stage.empty()) {
            continue;
        }
        busy[span.device] += span.duration_seconds;
    }
    return busy;
}

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<MetricsRegistry*> g_metrics{nullptr};

} // namespace

TraceRecorder* trace() noexcept {
    return g_trace.load(std::memory_order_relaxed);
}

MetricsRegistry* metrics() noexcept {
    return g_metrics.load(std::memory_order_relaxed);
}

void install(TraceRecorder* recorder, MetricsRegistry* metrics) noexcept {
    g_trace.store(recorder, std::memory_order_relaxed);
    g_metrics.store(metrics, std::memory_order_relaxed);
}

TraceSession::TraceSession() {
    if (trace() != nullptr || obs::metrics() != nullptr) {
        throw std::logic_error("obs::TraceSession: a session is already "
                               "installed");
    }
    install(&recorder_, &metrics_);
}

TraceSession::~TraceSession() { install(nullptr, nullptr); }

void record_stage_spans(TraceRecorder& recorder, const std::string& device,
                        std::uint64_t track, double start_seconds,
                        double overhead_seconds, double duration_seconds,
                        const StageCounters& counters) {
    recorder.add_stage_counters(device, counters);
    const std::uint64_t total = counters.total_ops();
    const double width =
        std::max(0.0, duration_seconds - overhead_seconds);
    if (total == 0 || width <= 0.0) return;

    struct StageShare {
        const char* name;
        std::uint64_t ops;
    };
    const StageShare shares[] = {
        {"filtration", counters.filtration_ops},
        {"locate", counters.locate_ops},
        {"verify", counters.verify_ops},
    };
    double at = start_seconds + overhead_seconds;
    for (const StageShare& share : shares) {
        if (share.ops == 0) continue;
        TraceSpan span;
        span.name = share.name;
        span.stage = share.name;
        span.device = device;
        span.track = track;
        span.start_seconds = at;
        span.duration_seconds = width * static_cast<double>(share.ops) /
                                static_cast<double>(total);
        at += span.duration_seconds;
        recorder.record(std::move(span));
    }
}

} // namespace repute::obs
