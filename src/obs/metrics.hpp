#pragma once
// Named metrics registry: monotonic counters, gauges and histograms.
//
// Instrumented code pays nothing when no registry is installed: the
// global accessor (obs::metrics(), see trace.hpp) is a relaxed atomic
// load, and every instrumentation site is guarded by a null check —
// with tracing off the whole path is one predictable branch.
//
// Metric objects returned by the registry are stable for the registry's
// lifetime, so hot loops may look a metric up once and keep the
// reference. Counters and gauges are lock-free; histograms take a small
// per-observe lock (acceptable at per-read granularity).

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace repute::obs {

/// Monotonic counter (steals, retries, candidate windows, ...).
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (fleet sizes, configured caps, ratios).
class Gauge {
public:
    void set(double value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Running count/sum/min/max distribution plus base-2 logarithmic
/// buckets for quantile estimates (candidates per read, chunk sizes,
/// request latencies). 64 buckets cover binary exponents [-32, 31] —
/// nanoseconds to decades when values are seconds — so quantile() is
/// exact to within a factor of 2, which is what a p50/p99 latency
/// report needs (the serve tier asserts on them).
class Histogram {
public:
    static constexpr std::size_t kBuckets = 64;
    static constexpr int kMinExponent = -32;

    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::array<std::uint64_t, kBuckets> buckets{};

        double mean() const noexcept {
            return count == 0 ? 0.0 : sum / static_cast<double>(count);
        }

        /// Upper bound of the bucket containing the q-quantile
        /// (0 <= q <= 1) observation, clamped to the observed extremes.
        /// Returns 0 with no observations.
        double quantile(double q) const noexcept {
            if (count == 0) return 0.0;
            const auto rank = static_cast<std::uint64_t>(
                q * static_cast<double>(count - 1));
            std::uint64_t seen = 0;
            for (std::size_t b = 0; b < kBuckets; ++b) {
                seen += buckets[b];
                if (seen > rank) {
                    const double upper = std::ldexp(
                        1.0, static_cast<int>(b) + kMinExponent + 1);
                    return std::min(std::max(upper, min), max);
                }
            }
            return max;
        }
    };

    static std::size_t bucket_of(double value) noexcept {
        if (!(value > 0.0)) return 0;
        int exponent = 0;
        std::frexp(value, &exponent); // value in [2^(e-1), 2^e)
        const int b = exponent - 1 - kMinExponent;
        if (b < 0) return 0;
        if (b >= static_cast<int>(kBuckets)) return kBuckets - 1;
        return static_cast<std::size_t>(b);
    }

    void observe(double value) noexcept {
        const std::lock_guard lock(mutex_);
        if (state_.count == 0 || value < state_.min) state_.min = value;
        if (state_.count == 0 || value > state_.max) state_.max = value;
        ++state_.count;
        state_.sum += value;
        ++state_.buckets[bucket_of(value)];
    }

    Snapshot snapshot() const {
        const std::lock_guard lock(mutex_);
        return state_;
    }

private:
    mutable std::mutex mutex_;
    Snapshot state_;
};

/// Name-keyed metric store. Lookup is mutex-guarded; the returned
/// references stay valid (and lock-free to update) for the registry's
/// lifetime.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Deterministic plain-text dump, one `name value` line per metric,
    /// sorted by name.
    std::string format() const;

    /// Name-sorted value snapshots (used by the xfer summary exporter).
    std::map<std::string, std::uint64_t> counter_values() const;
    std::map<std::string, double> gauge_values() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace repute::obs
