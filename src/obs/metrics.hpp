#pragma once
// Named metrics registry: monotonic counters, gauges and histograms.
//
// Instrumented code pays nothing when no registry is installed: the
// global accessor (obs::metrics(), see trace.hpp) is a relaxed atomic
// load, and every instrumentation site is guarded by a null check —
// with tracing off the whole path is one predictable branch.
//
// Metric objects returned by the registry are stable for the registry's
// lifetime, so hot loops may look a metric up once and keep the
// reference. Counters and gauges are lock-free; histograms take a small
// per-observe lock (acceptable at per-read granularity).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace repute::obs {

/// Monotonic counter (steals, retries, candidate windows, ...).
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (fleet sizes, configured caps, ratios).
class Gauge {
public:
    void set(double value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Running count/sum/min/max distribution (candidates per read, chunk
/// sizes). Keeps no buckets — the summary reports mean and extremes.
class Histogram {
public:
    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;

        double mean() const noexcept {
            return count == 0 ? 0.0 : sum / static_cast<double>(count);
        }
    };

    void observe(double value) noexcept {
        const std::lock_guard lock(mutex_);
        if (state_.count == 0 || value < state_.min) state_.min = value;
        if (state_.count == 0 || value > state_.max) state_.max = value;
        ++state_.count;
        state_.sum += value;
    }

    Snapshot snapshot() const {
        const std::lock_guard lock(mutex_);
        return state_;
    }

private:
    mutable std::mutex mutex_;
    Snapshot state_;
};

/// Name-keyed metric store. Lookup is mutex-guarded; the returned
/// references stay valid (and lock-free to update) for the registry's
/// lifetime.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Deterministic plain-text dump, one `name value` line per metric,
    /// sorted by name.
    std::string format() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace repute::obs
