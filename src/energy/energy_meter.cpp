#include "energy/energy_meter.hpp"

#include <cstdio>
#include <stdexcept>

namespace repute::energy {

EnergyReport measure(double mapping_seconds,
                     std::span<const DeviceUsage> usage,
                     double idle_watts) {
    if (mapping_seconds <= 0.0) {
        throw std::invalid_argument("mapping time must be positive");
    }
    EnergyReport report;
    report.mapping_seconds = mapping_seconds;
    report.idle_watts = idle_watts;

    double joules = 0.0;
    for (const DeviceUsage& u : usage) {
        if (u.device == nullptr) continue;
        const double delta =
            u.device->profile().power.active_watts * u.power_scale;
        joules += delta * u.busy_seconds;
    }
    report.energy_joules = joules;
    report.average_power_watts = idle_watts + joules / mapping_seconds;
    return report;
}

std::string to_string(const EnergyReport& report) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer, "P=%.1fW E=%.1fJ over %.2fs",
                  report.average_power_watts, report.energy_joules,
                  report.mapping_seconds);
    return buffer;
}

} // namespace repute::energy
