#pragma once
// Power/energy measurement model reproducing the paper's §III-D
// protocol:
//
//   "We measure the average power consumption during the mapping process
//    and subtract it with the idle power ... multiply the power
//    consumption with mapping time to measure energy consumption."
//
// The wall-socket meter of the paper becomes a model: each device
// contributes its calibrated active-power delta while busy; a per-mapper
// power scale captures how hard the mapper actually drives the silicon
// (the hand-threaded baselines never pull the wall power the saturating
// OpenCL kernels do — visible in Table IV, where RazerS3 draws ~80 W
// over idle on System 1 while CORAL/REPUTE draw ~200 W).

#include <span>
#include <string>
#include <vector>

#include "ocl/device.hpp"

namespace repute::energy {

/// One device's contribution to a mapping run.
struct DeviceUsage {
    const ocl::Device* device = nullptr;
    double busy_seconds = 0.0;
    /// Fraction of the device's calibrated active power this mapper
    /// draws while busy (1.0 = saturating OpenCL kernel).
    double power_scale = 1.0;
};

struct EnergyReport {
    double mapping_seconds = 0.0;
    double idle_watts = 0.0;
    /// Average wall power during mapping (idle included) — the paper's
    /// P(W) column in Table IV.
    double average_power_watts = 0.0;
    /// Energy attributable to mapping (average - idle) x time — the
    /// paper's E(J) column.
    double energy_joules = 0.0;
};

/// Applies the §III-D protocol to a finished run. `mapping_seconds` is
/// the end-to-end mapping time (devices may be busy for only part of
/// it). Throws std::invalid_argument on non-positive mapping time.
EnergyReport measure(double mapping_seconds,
                     std::span<const DeviceUsage> usage, double idle_watts);

/// Formats a one-line summary ("P=455.0W E=1554.7J over 5.27s").
std::string to_string(const EnergyReport& report);

} // namespace repute::energy
