#pragma once
// REPUTE's host program: multi-device task-parallel mapping.
//
// The host (paper §III) splits the read set across OpenCL devices per a
// user-specified distribution, allocates the static buffers each device
// needs (index + reference, read chunk, first-n output), launches the
// map kernel on every device's queue simultaneously, and merges results.
// When a chunk's output buffer would violate a device's allocation
// ceiling, the chunk is processed in several smaller kernel runs — the
// exact fallback the paper describes ("we have to limit the number of
// mappings per read or run the kernel multiple times with smaller read
// sets").
//
// The same host logic with the heuristic seeder is CORAL (the OpenCL
// predecessor REPUTE is compared against), so the class is parameterized
// by the Seeder and both tools are thin factories over it.

#include <memory>
#include <vector>

#include "core/kernels.hpp"
#include "core/mapping.hpp"
#include "filter/seed.hpp"
#include "genomics/sequence.hpp"
#include "index/fm_index.hpp"
#include "ocl/context.hpp"
#include "ocl/queue.hpp"

namespace repute::core {

/// A device plus the fraction of the read set it should map.
struct DeviceShare {
    ocl::Device* device = nullptr;
    double fraction = 1.0;
};

enum class ScheduleMode {
    /// Paper-fidelity (§III-B): one contiguous slice per device,
    /// committed up front. The default — benchmark numbers meant to be
    /// compared with the paper use this path.
    StaticSplit,
    /// Dynamic chunked work-stealing with fault recovery (scheduler.hpp):
    /// the shares become a warm start, idle devices steal queued chunks,
    /// failed chunks are retried on the surviving fleet.
    Dynamic,
};

struct HeterogeneousMapperConfig {
    KernelConfig kernel;
    /// Wall power the mapper draws relative to device calibration.
    double power_scale = 1.0;
    ScheduleMode schedule = ScheduleMode::StaticSplit;
    /// Chunking/retry knobs for ScheduleMode::Dynamic.
    SchedulerConfig scheduler;
    /// Stage chunk k+1's buffers while chunk k executes, through a
    /// second buffer set chained via event wait-lists. Only takes
    /// effect on devices whose TransferSpec is modeled (staging is free
    /// otherwise, and one buffer set keeps chunk sizing unchanged);
    /// output is byte-identical either way.
    bool double_buffer = true;
};

class HeterogeneousMapper final : public Mapper {
public:
    /// `reference` and `fm` must outlive the mapper. Shares are
    /// normalized; zero-fraction shares are dropped. Throws
    /// std::invalid_argument when no usable share remains.
    HeterogeneousMapper(std::string display_name,
                        const genomics::Reference& reference,
                        const index::FmIndex& fm,
                        std::unique_ptr<filter::Seeder> seeder,
                        HeterogeneousMapperConfig config,
                        std::vector<DeviceShare> shares);

    MapResult map(const genomics::ReadBatch& batch,
                  std::uint32_t delta) override;

    std::string_view name() const noexcept override { return name_; }
    double power_scale() const noexcept override {
        return config_.power_scale;
    }

    const filter::Seeder& seeder() const noexcept { return *seeder_; }
    const HeterogeneousMapperConfig& config() const noexcept {
        return config_;
    }

    /// Number of reads of `total` assigned to each share, in order.
    std::vector<std::size_t> split_workload(std::size_t total) const;

private:
    MapResult map_static(const genomics::ReadBatch& batch,
                         std::uint32_t delta);
    MapResult map_dynamic(const genomics::ReadBatch& batch,
                          std::uint32_t delta);

    std::string name_;
    const genomics::Reference* reference_;
    const index::FmIndex* fm_;
    std::unique_ptr<filter::Seeder> seeder_;
    HeterogeneousMapperConfig config_;
    std::vector<DeviceShare> shares_;
};

/// REPUTE with the paper's memory-optimized DP seeder. The minimum
/// k-mer length (and every other kernel/host knob) lives in exactly one
/// place: `config.kernel.s_min` — the seeder is built from it.
std::unique_ptr<HeterogeneousMapper> make_repute(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config = {});

/// CORAL: the same OpenCL host flow with the serial variable-length
/// k-mer heuristic and the streaming verification flow
/// (`config.kernel.collapse_candidates` is forced off).
std::unique_ptr<HeterogeneousMapper> make_coral(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config = {});

/// Workload shares proportional to each device's occupancy-adjusted
/// throughput for a kernel with the given per-item scratch requirement —
/// the "judicious distribution" the paper calls for (§IV, Fig. 3).
/// Devices that cannot run the kernel at all (scratch over their private
/// memory) receive a zero share.
std::vector<DeviceShare> balanced_shares(
    const std::vector<ocl::Device*>& devices,
    std::uint64_t scratch_bytes_per_item);

} // namespace repute::core
