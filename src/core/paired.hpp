#pragma once
// Paired-end mapping on top of any single-end Mapper.
//
// Mates are mapped independently, then joined: a *proper pair* is a
// forward/reverse mapping combination whose outer distance (insert)
// falls inside the library window. When only one mate maps, the other
// is *rescued* by aligning it directly inside the window the library
// geometry predicts — the standard trick (BWA-style mate rescue) that
// converts the mapped mate's position into a second chance for the
// broken one, at a slightly relaxed edit budget.
//
// The paper evaluates single-end mapping only; this module is the
// library-level extension a downstream user of a read mapper expects.

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "genomics/sequence.hpp"

namespace repute::core {

struct PairedConfig {
    std::uint32_t min_insert = 200; ///< outer distance, inclusive
    std::uint32_t max_insert = 600; ///< outer distance, inclusive
    bool enable_rescue = true;
    /// Extra edit budget a rescued mate is allowed (it failed at delta).
    std::uint32_t rescue_delta_bonus = 2;
};

enum class PairClass : std::uint8_t {
    Proper,         ///< both mates mapped, FR orientation, insert in range
    Rescued,        ///< one mate recovered via windowed alignment
    Discordant,     ///< both mapped, but no combination is proper
    OneMateUnmapped,
    BothUnmapped,
};

struct PairMapping {
    PairClass classification = PairClass::BothUnmapped;
    ReadMapping mate1;
    ReadMapping mate2;
    std::uint32_t insert_size = 0; ///< outer distance (0 if not proper)
};

struct PairedResult {
    std::vector<PairMapping> pairs; ///< best combination per pair
    double mapping_seconds = 0.0;   ///< both single-end passes + rescue

    std::size_t count(PairClass c) const noexcept;
};

/// SAM export of a paired run: two records per pair (first/second in
/// pair), with proper-pair/mate flags and RNEXT/PNEXT/TLEN filled.
std::vector<genomics::SamRecord> paired_to_sam(
    const genomics::ReadBatch& first, const genomics::ReadBatch& second,
    const PairedResult& result, const std::string& reference_name);

class PairedMapper {
public:
    /// `single` maps the individual mates; `reference` is needed for
    /// mate rescue. Both must outlive the PairedMapper.
    PairedMapper(Mapper& single, const genomics::Reference& reference,
                 PairedConfig config = {});

    /// Maps both mate batches (must be parallel: first.reads[i] pairs
    /// with second.reads[i]) and joins them. Throws
    /// std::invalid_argument on size mismatch. Mate lengths may differ
    /// — pairing geometry (insert, rescue window) is computed from each
    /// read's own length.
    PairedResult map_pairs(const genomics::ReadBatch& first,
                           const genomics::ReadBatch& second,
                           std::uint32_t delta);

    const PairedConfig& config() const noexcept { return config_; }

private:
    Mapper* single_;
    const genomics::Reference* reference_;
    PairedConfig config_;

    /// Best proper combination of two mapping lists, if any. `len1` /
    /// `len2` are the mates' own read lengths (insert size depends on
    /// which mate is the reverse one).
    bool find_proper(const std::vector<ReadMapping>& mappings1,
                     const std::vector<ReadMapping>& mappings2,
                     std::uint32_t len1, std::uint32_t len2,
                     PairMapping& out) const;

    /// Windowed re-alignment of `mate` near its partner's position.
    /// `anchor_len` is the mapped mate's read length, `mate_len` the
    /// missing mate's — both enter the expected-window geometry.
    bool rescue(const genomics::Read& mate, const ReadMapping& anchor,
                std::uint32_t anchor_len, std::uint32_t mate_len,
                std::uint32_t delta, ReadMapping& out) const;
};

} // namespace repute::core
