#include "core/sharded_mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/scheduler.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "obs/trace.hpp"
#include "ocl/context.hpp"
#include "ocl/queue.hpp"
#include "util/logging.hpp"

namespace repute::core {

std::vector<ShardView> shard_views_of(const index::ShardedIndex& index) {
    std::vector<ShardView> views;
    views.reserve(index.shards().size());
    for (const index::ShardedIndex::Shard& s : index.shards()) {
        views.push_back({&s.mapped.multi().concatenated(), &s.mapped.fm(),
                         s.text_offset, s.own_lo(), s.own_hi()});
    }
    return views;
}

void merge_sharded_read(
    std::span<const std::span<const ReadMapping>> per_shard,
    std::uint32_t max_locations, std::vector<ReadMapping>& out) {
    out.clear();
    // Rebuild the monolithic generation order: within one strand the
    // kernel accepts candidates in ascending position, and shard owned
    // ranges partition the text in base order — concatenating the
    // shards' per-strand sublists IS the monolithic accept stream. The
    // first-n cap then lands on exactly the same accept.
    bool capped = false;
    for (const genomics::Strand strand :
         {genomics::Strand::Forward, genomics::Strand::Reverse}) {
        for (const std::span<const ReadMapping> list : per_shard) {
            for (const ReadMapping& m : list) {
                if (m.strand != strand) continue;
                if (out.size() >= max_locations) {
                    capped = true;
                    break;
                }
                out.push_back(m);
            }
            if (capped) break;
        }
        if (capped) break;
    }
    std::sort(out.begin(), out.end(),
              [](const ReadMapping& a, const ReadMapping& b) {
                  return a.position != b.position
                             ? a.position < b.position
                             : a.strand < b.strand;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ReadMapping& a, const ReadMapping& b) {
                              return a.position == b.position &&
                                     a.strand == b.strand;
                          }),
              out.end());
}

ShardedMapper::ShardedMapper(std::string display_name,
                             std::vector<ShardView> shards,
                             std::unique_ptr<filter::Seeder> seeder,
                             HeterogeneousMapperConfig config,
                             std::vector<DeviceShare> shares)
    : name_(std::move(display_name)), shards_(std::move(shards)),
      seeder_(std::move(seeder)), config_(config) {
    if (seeder_ == nullptr) {
        throw std::invalid_argument(name_ + ": seeder must not be null");
    }
    if (shards_.empty()) {
        throw std::invalid_argument(name_ + ": needs at least one shard");
    }
    std::uint32_t cursor = 0;
    for (const ShardView& v : shards_) {
        if (v.reference == nullptr || v.fm == nullptr ||
            v.own_hi <= v.own_lo || v.own_hi > v.fm->size() ||
            v.base() != cursor) {
            throw std::invalid_argument(
                name_ + ": shard owned ranges must tile the reference");
        }
        cursor = v.text_offset + v.own_hi;
    }
    double total = 0.0;
    for (const DeviceShare& s : shares) {
        if (s.device != nullptr && s.fraction > 0.0) {
            total += s.fraction;
            shares_.push_back(s);
        }
    }
    if (shares_.empty() || total <= 0.0) {
        throw std::invalid_argument(
            name_ + ": needs at least one device with a positive share");
    }
    for (DeviceShare& s : shares_) s.fraction /= total;
}

std::uint64_t ShardedMapper::max_image_bytes() const noexcept {
    std::uint64_t bytes = 0;
    for (const ShardView& v : shards_) {
        bytes = std::max(bytes, v.image_bytes());
    }
    return bytes;
}

std::vector<std::size_t> ShardedMapper::split_workload(
    std::size_t total) const {
    std::vector<std::size_t> counts(shares_.size(), 0);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i + 1 < shares_.size(); ++i) {
        counts[i] = static_cast<std::size_t>(
            static_cast<double>(total) * shares_[i].fraction);
        assigned += counts[i];
    }
    counts.back() = total - assigned;
    return counts;
}

void ShardedMapper::validate_overhangs(const genomics::ReadBatch& batch,
                                       std::uint32_t delta) const {
    if (shards_.size() < 2) return; // monolithic-equivalent
    // Longest actual read in the batch, not batch.read_length: bucketed
    // batches carry the length-class ceiling there, and a too-small
    // overhang only matters for reads that truly reach past it.
    std::uint64_t n = 0;
    for (const auto& read : batch.reads) {
        n = std::max<std::uint64_t>(n, read.length());
    }
    if (n == 0) n = batch.read_length;
    const ShardView& last = shards_.back();
    const std::uint64_t total =
        std::uint64_t{last.text_offset} + last.own_hi;
    for (const ShardView& v : shards_) {
        // A shard reports candidate diagonals p in its owned range; the
        // verification window spans [p - delta, p + n + delta), so the
        // shard text must cover delta bp left and n + delta bp right of
        // the owned range (clamped at the reference ends — the shard
        // sees the same text boundary the monolithic index does).
        const std::uint64_t left_need =
            std::min<std::uint64_t>(delta, v.base());
        const std::uint64_t own_end =
            std::uint64_t{v.text_offset} + v.own_hi;
        const std::uint64_t right_need =
            std::min<std::uint64_t>(n + delta, total - own_end);
        if (v.own_lo < left_need ||
            v.fm->size() - v.own_hi < right_need) {
            throw std::invalid_argument(
                name_ + ": shard overlap overhang is too small for " +
                std::to_string(n) + " bp reads at delta " +
                std::to_string(delta) +
                " (needs >= read_length + delta) — rebuild the index "
                "with a larger --overlap");
        }
    }
}

KernelConfig ShardedMapper::shard_kernel(std::size_t shard) const {
    KernelConfig k = config_.kernel;
    k.report_lo = shards_[shard].own_lo;
    k.report_hi = shards_[shard].own_hi;
    return k;
}

MapResult ShardedMapper::map(const genomics::ReadBatch& batch,
                             std::uint32_t delta) {
    validate_overhangs(batch, delta);
    const std::size_t reads = batch.size();
    const std::size_t units = shards_.size() * reads;
    // Per-(shard, read) kernel outputs (local coordinates) and stage
    // slots — shard-major, unit = shard * reads + read.
    std::vector<std::vector<ReadMapping>> slots(units);
    std::vector<StageTotals> unit_stages(units);

    MapResult result =
        config_.schedule == ScheduleMode::Dynamic
            ? map_dynamic(batch, delta, slots, unit_stages)
            : map_static(batch, delta, slots, unit_stages);

    // Shift per-shard outputs to global coordinates, then merge.
    result.per_read.resize(reads);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const std::uint32_t shift = shards_[s].text_offset;
        for (std::size_t r = 0; r < reads; ++r) {
            for (ReadMapping& m : slots[s * reads + r]) {
                m.position += shift;
            }
        }
    }
    std::vector<std::span<const ReadMapping>> spans(shards_.size());
    for (std::size_t r = 0; r < reads; ++r) {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            spans[s] = slots[s * reads + r];
        }
        merge_sharded_read(spans, config_.kernel.max_locations_per_read,
                           result.per_read[r]);
    }

    if (auto* m = obs::metrics()) {
        m->gauge("shard.count")
            .set(static_cast<double>(shards_.size()));
        m->gauge("shard.peak_resident_bytes")
            .set(static_cast<double>(max_image_bytes()));
    }
    return result;
}

namespace {

/// Per-device shard staging tallies, summed into the obs registry once
/// the run completes (workers touch only their own entry — no atomics).
struct ShardTally {
    std::uint64_t hits = 0;     ///< launches with the shard resident
    std::uint64_t restages = 0; ///< resident-image swaps after the first
    std::uint64_t restage_bytes = 0; ///< shard-image bytes staged
    std::vector<double> busy_by_shard; ///< kernel seconds per shard
};

void export_shard_metrics(std::span<const ShardTally> tallies) {
    auto* m = obs::metrics();
    if (m == nullptr) return;
    for (const ShardTally& t : tallies) {
        m->counter("shard.residency_hits").add(t.hits);
        m->counter("shard.restages").add(t.restages);
        m->counter("shard.restage_bytes").add(t.restage_bytes);
        for (const double seconds : t.busy_by_shard) {
            if (seconds > 0.0) {
                m->histogram("shard.busy_seconds").observe(seconds);
            }
        }
    }
}

void finish_transfer_accounting(const MapResult& result) {
    double transfer = 0.0;
    for (const DeviceRun& run : result.device_runs) {
        transfer += run.transfer_seconds;
    }
    if (transfer <= 0.0) return;
    if (auto* m = obs::metrics()) {
        m->gauge("xfer.overlap_ratio")
            .set(result.transfer_overlap_ratio());
    }
}

} // namespace

MapResult ShardedMapper::map_static(
    const genomics::ReadBatch& batch, std::uint32_t delta,
    std::vector<std::vector<ReadMapping>>& slots,
    std::vector<StageTotals>& unit_stages) {
    MapResult result;
    if (batch.empty()) return result;

    const std::size_t reads = batch.size();
    const std::size_t n = batch.read_length;
    const std::uint64_t scratch =
        kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(
            config_.kernel.max_locations_per_read) *
        8;
    const std::uint64_t image_cap = max_image_bytes();

    std::vector<ocl::Device*> devices;
    devices.reserve(shares_.size());
    for (const DeviceShare& s : shares_) devices.push_back(s.device);
    ocl::Context context(devices);

    const auto counts = split_workload(reads);

    // Per-device state, as in HeterogeneousMapper::map_static, with one
    // addition: a single resident buffer sized for the *largest* shard
    // image, restaged between shards. The device never holds more than
    // one shard — that is the whole memory-ceiling point.
    struct Launch {
        std::size_t shard;
        std::size_t lo, hi; ///< read range
    };
    struct DeviceWork {
        ocl::Buffer resident;
        std::vector<ocl::Buffer> reads;
        std::vector<ocl::Buffer> outputs;
        std::vector<ocl::Event> resident_writes; ///< one per shard
        std::vector<ocl::Event> writes;
        std::vector<ocl::Event> kernels;
        std::vector<ocl::Event> reads_done;
        std::vector<Launch> ranges;
        std::size_t sets = 1;
    };
    std::vector<DeviceWork> work(shares_.size());
    std::vector<ShardTally> tallies(shares_.size());

    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceWork& dw = work[d];
        ShardTally& tally = tallies[d];
        tally.busy_by_shard.resize(shards_.size(), 0.0);

        dw.resident = context.allocate(device, image_cap, "shard-image");

        const auto& profile = device.profile();
        const bool staged_device = profile.transfer.modeled();
        dw.sets = (staged_device && config_.double_buffer) ? 2 : 1;
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device.allocated_bytes();
        std::uint64_t max_chunk64 = counts[d];
        max_chunk64 = std::min(max_chunk64, quarter / out_bytes_per_read);
        max_chunk64 = std::min(max_chunk64, quarter / n);
        std::uint64_t per_set =
            free_bytes / (dw.sets * (n + out_bytes_per_read));
        if (per_set == 0 && dw.sets > 1) {
            dw.sets = 1;
            per_set = free_bytes / (n + out_bytes_per_read);
        }
        max_chunk64 = std::min(max_chunk64, per_set);
        if (max_chunk64 == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device.name() +
                    " cannot hold the buffers of even one read");
        }
        const auto max_chunk = static_cast<std::size_t>(max_chunk64);

        for (std::size_t s = 0; s < dw.sets; ++s) {
            dw.reads.push_back(
                context.allocate(device, max_chunk * n, "reads"));
            dw.outputs.push_back(context.allocate(
                device, max_chunk * out_bytes_per_read, "mappings"));
        }

        std::size_t device_base = 0;
        for (std::size_t e = 0; e < d; ++e) device_base += counts[e];

        ocl::CommandQueue queue(device);
        std::size_t chunk_index = 0;
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            // Swap the shard image in; the previous shard's last kernel
            // must have released the buffer (ordering-only — a faulted
            // kernel never touched it).
            std::vector<ocl::Event> image_reuse;
            if (!dw.kernels.empty()) {
                image_reuse.push_back(dw.kernels.back());
            }
            dw.resident_writes.push_back(queue.enqueue_write(
                dw.resident, shards_[s].image_bytes(), {},
                std::move(image_reuse)));
            tally.restage_bytes += shards_[s].image_bytes();
            if (s > 0) ++tally.restages;

            const KernelConfig kernel_config = shard_kernel(s);
            std::size_t base = device_base;
            std::size_t remaining = counts[d];
            bool first_chunk_of_shard = true;
            while (remaining > 0) {
                const std::size_t chunk = std::min(remaining, max_chunk);
                const std::size_t set = chunk_index % dw.sets;
                if (!first_chunk_of_shard) ++tally.hits;

                std::vector<ocl::Event> write_reuse;
                if (chunk_index >= dw.sets) {
                    write_reuse.push_back(
                        dw.kernels[chunk_index - dw.sets]);
                }
                dw.writes.push_back(queue.enqueue_write(
                    dw.reads[set], chunk * n, {},
                    std::move(write_reuse)));

                ocl::KernelLaunch launch;
                launch.name = name_ + "::map-shard";
                launch.n_items = chunk;
                launch.scratch_bytes_per_item = scratch;
                const ShardView& view = shards_[s];
                launch.body = [this, &batch, &slots, &unit_stages, &view,
                               kernel_config, s, base, reads,
                               delta](std::size_t i) -> std::uint64_t {
                    const std::size_t unit = s * reads + base + i;
                    thread_local KernelScratch kernel_scratch;
                    return map_read_workitem(
                        *view.fm, *view.reference, *seeder_,
                        batch.reads[base + i], delta, kernel_config,
                        slots[unit], kernel_scratch, &unit_stages[unit]);
                };
                std::vector<ocl::Event> kernel_wait{dw.writes.back()};
                if (first_chunk_of_shard) {
                    kernel_wait.push_back(dw.resident_writes.back());
                    first_chunk_of_shard = false;
                }
                std::vector<ocl::Event> kernel_reuse;
                if (chunk_index >= dw.sets) {
                    kernel_reuse.push_back(
                        dw.reads_done[chunk_index - dw.sets]);
                }
                dw.kernels.push_back(
                    queue.enqueue(std::move(launch),
                                  std::move(kernel_wait),
                                  std::move(kernel_reuse)));
                dw.reads_done.push_back(queue.enqueue_read(
                    dw.outputs[set], chunk * out_bytes_per_read,
                    {dw.kernels.back()}));
                dw.ranges.push_back({s, base, base + chunk});
                base += chunk;
                remaining -= chunk;
                ++chunk_index;
            }
        }
    }

    double slowest = 0.0;
    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceWork& dw = work[d];
        DeviceRun run;
        run.device_name = device.name();
        run.reads = counts[d];
        run.power_scale = config_.power_scale;

        for (std::size_t s = 0; s < dw.resident_writes.size(); ++s) {
            const ocl::LaunchStats& stats = dw.resident_writes[s].wait();
            run.bytes_staged += shards_[s].image_bytes();
            run.transfer_seconds += stats.seconds;
        }

        double exec_seconds = 0.0;
        double wait_seconds = 0.0;
        double last_kernel_end = 0.0;
        double last_drain_end = 0.0;
        for (std::size_t e = 0; e < dw.kernels.size(); ++e) {
            const Launch& range = dw.ranges[e];

            const ocl::LaunchStats& write_stats = dw.writes[e].wait();
            run.bytes_staged += (range.hi - range.lo) * n;
            run.transfer_seconds += write_stats.seconds;

            const ocl::LaunchStats& stats = dw.kernels[e].wait();
            exec_seconds += stats.seconds;
            wait_seconds += stats.queue_wait_seconds;
            last_kernel_end = std::max(
                last_kernel_end, stats.start_seconds + stats.seconds);
            tallies[d].busy_by_shard[range.shard] += stats.seconds;
            run.stats.items += stats.items;
            run.stats.total_ops += stats.total_ops;
            run.stats.scratch_bytes_per_item =
                stats.scratch_bytes_per_item;
            run.stats.utilization = stats.utilization;

            const ocl::LaunchStats& drain_stats = dw.reads_done[e].wait();
            run.bytes_drained += (range.hi - range.lo) * out_bytes_per_read;
            run.transfer_seconds += drain_stats.seconds;
            last_drain_end =
                std::max(last_drain_end,
                         drain_stats.start_seconds + drain_stats.seconds);

            obs::StageCounters launch_stage;
            for (std::size_t r = range.lo; r < range.hi; ++r) {
                launch_stage += unit_stages[range.shard * reads + r];
            }
            run.stage += launch_stage;
            if (auto* recorder = obs::trace()) {
                obs::record_stage_spans(
                    *recorder, run.device_name, /*track=*/0,
                    stats.start_seconds,
                    device.profile().dispatch_overhead_seconds,
                    stats.seconds, launch_stage);
            }
        }
        const double drain_tail =
            std::max(0.0, last_drain_end - last_kernel_end);
        run.stats.seconds = exec_seconds;
        run.stall_seconds = wait_seconds + drain_tail;
        slowest = std::max(slowest,
                           exec_seconds + wait_seconds + drain_tail);
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = slowest;
    export_shard_metrics(tallies);
    finish_transfer_accounting(result);
    return result;
}

MapResult ShardedMapper::map_dynamic(
    const genomics::ReadBatch& batch, std::uint32_t delta,
    std::vector<std::vector<ReadMapping>>& slots,
    std::vector<StageTotals>& unit_stages) {
    MapResult result;
    if (batch.empty()) return result;

    const std::size_t reads = batch.size();
    const std::size_t n = batch.read_length;
    const std::size_t total_units = shards_.size() * reads;
    const std::uint64_t scratch =
        kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(
            config_.kernel.max_locations_per_read) *
        8;
    const std::uint64_t image_cap = max_image_bytes();

    std::vector<ocl::Device*> devices;
    std::vector<double> warm_start;
    for (const DeviceShare& s : shares_) {
        if (scratch > s.device->profile().private_memory_per_unit) {
            util::logf(util::LogLevel::Info,
                       "%s: dropping %s (needs %llu B scratch/item)",
                       name_.c_str(), s.device->name().c_str(),
                       static_cast<unsigned long long>(scratch));
            continue;
        }
        devices.push_back(s.device);
        warm_start.push_back(s.fraction);
    }
    if (devices.empty()) {
        throw ocl::OclError(ocl::OclStatus::OutOfResources,
                            name_ + ": no device can run this kernel");
    }

    ocl::Context context(devices);

    std::vector<ocl::Buffer> resident;
    resident.reserve(devices.size());
    std::vector<std::size_t> buffer_sets(devices.size(), 1);
    std::uint64_t fleet_chunk_cap =
        std::numeric_limits<std::uint64_t>::max();
    for (std::size_t d = 0; d < devices.size(); ++d) {
        ocl::Device* device = devices[d];
        resident.push_back(
            context.allocate(*device, image_cap, "shard-image"));
        const auto& profile = device->profile();
        if (profile.transfer.modeled() && config_.double_buffer) {
            buffer_sets[d] = 2;
        }
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device->allocated_bytes();
        std::uint64_t max_chunk = quarter / out_bytes_per_read;
        max_chunk = std::min(max_chunk, quarter / n);
        std::uint64_t per_set =
            free_bytes / (buffer_sets[d] * (n + out_bytes_per_read));
        if (per_set == 0 && buffer_sets[d] > 1) {
            buffer_sets[d] = 1;
            per_set = free_bytes / (n + out_bytes_per_read);
        }
        max_chunk = std::min(max_chunk, per_set);
        if (max_chunk == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device->name() +
                    " cannot hold the buffers of even one read");
        }
        fleet_chunk_cap = std::min(fleet_chunk_cap, max_chunk);
    }

    SchedulerConfig scheduler_config = config_.scheduler;
    scheduler_config.max_chunk_items =
        scheduler_config.max_chunk_items == 0
            ? static_cast<std::size_t>(fleet_chunk_cap)
            : std::min(scheduler_config.max_chunk_items,
                       static_cast<std::size_t>(fleet_chunk_cap));

    if (auto* m = obs::metrics()) {
        m->gauge("mapper.fleet_chunk_cap")
            .set(static_cast<double>(fleet_chunk_cap));
        if (static_cast<std::size_t>(fleet_chunk_cap) < total_units) {
            m->counter("mapper.buffer_ceiling_splits").add();
        }
    }

    ChunkScheduler scheduler(devices, warm_start, scheduler_config);

    std::size_t largest_chunk = 1;
    for (const ChunkRecord& c : scheduler.plan(total_units)) {
        largest_chunk = std::max(largest_chunk, c.count);
    }

    // Per-device staging state; each entry is touched by exactly one
    // scheduler worker. `current_shard` is the resident-shard affinity:
    // a chunk segment whose shard is already resident skips the image
    // restage entirely.
    struct DeviceStage {
        std::vector<ocl::Buffer> reads;
        std::vector<ocl::Buffer> outputs;
        ocl::Event resident_write;
        bool resident_pending = false; ///< next kernel must wait on it
        std::size_t current_shard = SIZE_MAX;
        std::vector<ocl::Event> last_kernel; ///< per set
        ocl::Event newest_kernel; ///< tail of the kernel chain
        std::vector<ocl::Event> last_drain;  ///< per set
        std::size_t launches = 0;
        std::uint64_t bytes_staged = 0;
        std::uint64_t bytes_drained = 0;
        double transfer_seconds = 0.0;
        double last_kernel_end = 0.0;
        double last_drain_end = 0.0;
    };
    std::vector<DeviceStage> stages(devices.size());
    std::vector<ShardTally> tallies(devices.size());
    std::map<ocl::Device*, std::size_t> device_index;
    for (std::size_t d = 0; d < devices.size(); ++d) {
        DeviceStage& st = stages[d];
        st.last_kernel.resize(buffer_sets[d]);
        st.last_drain.resize(buffer_sets[d]);
        for (std::size_t s = 0; s < buffer_sets[d]; ++s) {
            st.reads.push_back(context.allocate(
                *devices[d], largest_chunk * n, "reads"));
            st.outputs.push_back(context.allocate(
                *devices[d], largest_chunk * out_bytes_per_read,
                "mappings"));
        }
        tallies[d].busy_by_shard.resize(shards_.size(), 0.0);
        device_index[devices[d]] = d;
    }

    std::map<ocl::Device*, ocl::CommandQueue> queues;
    for (ocl::Device* device : devices) {
        queues.try_emplace(device, *device);
    }

    ScheduleStats schedule = scheduler.run(
        total_units,
        [&](ocl::Device& device, std::size_t begin, std::size_t count) {
            const std::size_t d = device_index.at(&device);
            DeviceStage& st = stages[d];
            ShardTally& tally = tallies[d];
            ocl::CommandQueue& queue = queues.at(&device);

            // A chunk may straddle shard boundaries in the flattened
            // unit space; run it as one segment per shard, restaging
            // the resident image only on shard switches.
            ocl::LaunchStats agg;
            bool first_segment = true;
            std::size_t flat = begin;
            const std::size_t end = begin + count;
            while (flat < end) {
                const std::size_t s = flat / reads;
                const std::size_t seg_end =
                    std::min(end, (s + 1) * reads);
                const std::size_t seg_count = seg_end - flat;
                const std::size_t read_base = flat - s * reads;

                if (st.current_shard != s) {
                    // Swap the shard image; ordering-only dependency on
                    // the newest kernel (the in-order chain means it is
                    // the last possible user of the old image).
                    std::vector<ocl::Event> image_reuse;
                    if (st.newest_kernel.valid()) {
                        image_reuse.push_back(st.newest_kernel);
                    }
                    st.resident_write = queue.enqueue_write(
                        resident[d], shards_[s].image_bytes(), {},
                        std::move(image_reuse));
                    st.resident_pending = true;
                    tally.restage_bytes += shards_[s].image_bytes();
                    if (st.current_shard != SIZE_MAX) ++tally.restages;
                    st.current_shard = s;
                } else {
                    ++tally.hits;
                }

                const std::size_t set =
                    st.launches % st.last_kernel.size();
                std::vector<ocl::Event> write_reuse;
                if (st.last_kernel[set].valid()) {
                    write_reuse.push_back(st.last_kernel[set]);
                }
                ocl::Event write = queue.enqueue_write(
                    st.reads[set], seg_count * n, {},
                    std::move(write_reuse));

                ocl::KernelLaunch launch;
                launch.name = name_ + "::map-chunk";
                launch.n_items = seg_count;
                launch.scratch_bytes_per_item = scratch;
                const ShardView& view = shards_[s];
                const KernelConfig kernel_config = shard_kernel(s);
                launch.body = [this, &batch, &slots, &unit_stages, &view,
                               kernel_config, flat, read_base, delta](
                                  std::size_t i) -> std::uint64_t {
                    // Disjoint unit slots; a retried chunk rewrites
                    // exactly the same ones.
                    const std::size_t unit = flat + i;
                    unit_stages[unit] = StageTotals{};
                    thread_local KernelScratch kernel_scratch;
                    return map_read_workitem(
                        *view.fm, *view.reference, *seeder_,
                        batch.reads[read_base + i], delta, kernel_config,
                        slots[unit], kernel_scratch, &unit_stages[unit]);
                };
                std::vector<ocl::Event> kernel_wait{write};
                if (st.resident_pending) {
                    kernel_wait.push_back(st.resident_write);
                    st.resident_pending = false;
                }
                std::vector<ocl::Event> kernel_reuse;
                if (st.last_drain[set].valid()) {
                    kernel_reuse.push_back(st.last_drain[set]);
                }
                ocl::Event kernel =
                    queue.enqueue(std::move(launch),
                                  std::move(kernel_wait),
                                  std::move(kernel_reuse));
                st.newest_kernel = kernel;

                const ocl::LaunchStats& write_stats = write.wait();
                st.bytes_staged += seg_count * n;
                st.transfer_seconds += write_stats.seconds;
                ++st.launches;

                const ocl::LaunchStats stats =
                    kernel.wait(); // throws on fault
                st.last_kernel[set] = kernel;
                st.last_kernel_end =
                    std::max(st.last_kernel_end,
                             stats.start_seconds + stats.seconds);
                tally.busy_by_shard[s] += stats.seconds;

                ocl::Event drain = queue.enqueue_read(
                    st.outputs[set], seg_count * out_bytes_per_read,
                    {kernel});
                const ocl::LaunchStats& drain_stats = drain.wait();
                st.last_drain[set] = drain;
                st.bytes_drained += seg_count * out_bytes_per_read;
                st.transfer_seconds += drain_stats.seconds;
                st.last_drain_end =
                    std::max(st.last_drain_end,
                             drain_stats.start_seconds +
                                 drain_stats.seconds);

                if (auto* recorder = obs::trace()) {
                    obs::StageCounters chunk_stage;
                    for (std::size_t u = flat; u < seg_end; ++u) {
                        chunk_stage += unit_stages[u];
                    }
                    obs::record_stage_spans(
                        *recorder, device.name(), /*track=*/0,
                        stats.start_seconds,
                        device.profile().dispatch_overhead_seconds,
                        stats.seconds, chunk_stage);
                }

                if (first_segment) {
                    agg = stats;
                    first_segment = false;
                } else {
                    agg.items += stats.items;
                    agg.total_ops += stats.total_ops;
                    agg.seconds += stats.seconds;
                    agg.queue_wait_seconds += stats.queue_wait_seconds;
                }
                flat = seg_end;
            }
            return agg;
        });

    for (std::size_t d = 0; d < devices.size(); ++d) {
        DeviceStage& st = stages[d];
        DeviceScheduleStats& pd = schedule.per_device[d];
        if (st.resident_write.valid()) {
            // Image stagings already charged per restage below; the
            // event wait here only settles the last pending transfer.
            const ocl::LaunchStats& stats = st.resident_write.wait();
            st.transfer_seconds += stats.seconds;
        }
        st.bytes_staged += tallies[d].restage_bytes;
        pd.stall_seconds +=
            std::max(0.0, st.last_drain_end - st.last_kernel_end);

        DeviceRun run;
        run.device_name = pd.device_name;
        run.reads = pd.items;
        run.power_scale = config_.power_scale;
        run.stats = pd.stats;
        run.bytes_staged = st.bytes_staged;
        run.bytes_drained = st.bytes_drained;
        run.transfer_seconds = st.transfer_seconds;
        run.stall_seconds = pd.stall_seconds;
        for (const ChunkRecord& c : schedule.records) {
            if (c.device != d) continue;
            for (std::size_t u = c.begin; u < c.begin + c.count; ++u) {
                run.stage += unit_stages[u];
            }
        }
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = schedule.makespan_seconds();
    result.schedule = std::move(schedule);
    export_shard_metrics(tallies);
    finish_transfer_accounting(result);
    return result;
}

std::unique_ptr<ShardedMapper> make_sharded_repute(
    std::vector<ShardView> shards, std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config) {
    return std::make_unique<ShardedMapper>(
        "REPUTE-sharded", std::move(shards),
        std::make_unique<filter::MemoryOptimizedSeeder>(
            config.kernel.s_min),
        config, std::move(shares));
}

std::unique_ptr<ShardedMapper> make_sharded_coral(
    std::vector<ShardView> shards, std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config) {
    config.kernel.collapse_candidates = false; // streaming verification
    return std::make_unique<ShardedMapper>(
        "CORAL-sharded", std::move(shards),
        std::make_unique<filter::HeuristicSeeder>(config.kernel.s_min),
        config, std::move(shares));
}

} // namespace repute::core
