#include "core/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"

namespace repute::core {

double ScheduleStats::makespan_seconds() const noexcept {
    double makespan = 0.0;
    for (const DeviceScheduleStats& d : per_device) {
        makespan = std::max(makespan, d.busy_seconds + d.stall_seconds);
    }
    return makespan;
}

ChunkScheduler::ChunkScheduler(std::vector<ocl::Device*> devices,
                               std::vector<double> warm_start,
                               SchedulerConfig config)
    : devices_(std::move(devices)), warm_start_(std::move(warm_start)),
      config_(config) {
    if (devices_.empty()) {
        throw std::invalid_argument("ChunkScheduler: no devices");
    }
    for (const ocl::Device* device : devices_) {
        if (device == nullptr) {
            throw std::invalid_argument("ChunkScheduler: null device");
        }
    }
    if (warm_start_.empty()) {
        warm_start_.assign(devices_.size(), 1.0);
    }
    if (warm_start_.size() != devices_.size()) {
        throw std::invalid_argument(
            "ChunkScheduler: warm_start size does not match devices");
    }
    double total = 0.0;
    for (double w : warm_start_) total += std::max(0.0, w);
    if (total <= 0.0) {
        warm_start_.assign(devices_.size(), 1.0);
        total = static_cast<double>(devices_.size());
    }
    for (double& w : warm_start_) w = std::max(0.0, w) / total;
}

std::vector<ChunkRecord> ChunkScheduler::plan(
    std::size_t total_items) const {
    std::vector<ChunkRecord> chunks;
    if (total_items == 0) return chunks;

    // Contiguous per-device ranges proportional to the warm start (the
    // same arithmetic as the static split, so the two modes cover the
    // read set identically and differ only in commitment).
    std::vector<std::size_t> counts(devices_.size(), 0);
    std::size_t assigned = 0;
    for (std::size_t d = 0; d + 1 < devices_.size(); ++d) {
        counts[d] = static_cast<std::size_t>(
            static_cast<double>(total_items) * warm_start_[d]);
        assigned += counts[d];
    }
    counts.back() = total_items - assigned;

    const std::size_t cap = config_.max_chunk_items == 0
                                ? total_items
                                : std::max<std::size_t>(
                                      1, config_.max_chunk_items);

    auto emit = [&](std::size_t owner, std::size_t begin, std::size_t end,
                    std::size_t size) {
        size = std::clamp<std::size_t>(size, 1, cap);
        while (begin < end) {
            ChunkRecord c;
            c.begin = begin;
            c.count = std::min(size, end - begin);
            c.owner = c.device = owner;
            chunks.push_back(c);
            begin += c.count;
        }
    };

    std::size_t base = 0;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        const std::size_t end = base + counts[d];
        if (counts[d] == 0) continue;
        if (config_.chunk_items > 0) {
            emit(d, base, end, config_.chunk_items);
        } else {
            // One leading chunk carries the committed slice of the
            // warm-start share; the rest is cut fine enough to steal.
            const double commit =
                std::clamp(config_.warm_start_commit, 0.0, 1.0);
            const std::size_t lead = std::min<std::size_t>(
                cap, static_cast<std::size_t>(
                         commit * static_cast<double>(counts[d])));
            if (lead > 0) emit(d, base, base + lead, lead);
            const std::size_t rest = counts[d] - lead;
            if (rest > 0) {
                const std::size_t pieces =
                    std::max<std::size_t>(1,
                                          config_.balance_chunks_per_device);
                emit(d, base + lead, end, (rest + pieces - 1) / pieces);
            }
        }
        base = end;
    }
    return chunks;
}

ScheduleStats ChunkScheduler::run(std::size_t total_items,
                                  const ChunkRunner& runner) {
    ScheduleStats stats;
    stats.per_device.resize(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        stats.per_device[d].device_name = devices_[d]->name();
    }
    if (total_items == 0) return stats;

    const std::vector<ChunkRecord> planned = plan(total_items);

    // Per-device steal grain: the balance-chunk size the plan would cut
    // for this device. A thief takes at most its own grain from a
    // victim's chunk (splitting the rest back onto the victim's queue),
    // so a slow device can never turn a fast device's chunk into tail
    // latency.
    std::vector<std::size_t> grain(devices_.size(), 1);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (config_.chunk_items > 0) {
            grain[d] = config_.chunk_items;
        } else {
            const auto share = static_cast<std::size_t>(
                static_cast<double>(total_items) * warm_start_[d]);
            const double commit =
                std::clamp(config_.warm_start_commit, 0.0, 1.0);
            const std::size_t rest =
                share - static_cast<std::size_t>(
                            commit * static_cast<double>(share));
            const std::size_t pieces = std::max<std::size_t>(
                1, config_.balance_chunks_per_device);
            grain[d] = std::max<std::size_t>(
                1, (rest + pieces - 1) / pieces);
        }
        if (config_.max_chunk_items > 0) {
            grain[d] = std::min(grain[d], config_.max_chunk_items);
        }
    }

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::deque<ChunkRecord>> queues(devices_.size());
    for (const ChunkRecord& c : planned) queues[c.owner].push_back(c);

    std::size_t remaining = planned.size();
    std::size_t alive = devices_.size();
    std::vector<char> quarantined(devices_.size(), 0);
    std::vector<std::uint32_t> consecutive_failures(devices_.size(), 0);
    bool failed = false;
    ocl::OclStatus fail_status = ocl::OclStatus::Success;
    std::string fail_message;
    std::exception_ptr fatal;

    auto queued_items = [&](std::size_t d) {
        std::size_t items = 0;
        for (const ChunkRecord& c : queues[d]) items += c.count;
        return items;
    };
    auto chunk_available = [&] {
        for (const auto& q : queues)
            if (!q.empty()) return true;
        return false;
    };
    // A device may take its next chunk only while its modeled clock is
    // the minimum of the surviving fleet — the order real devices of
    // these speeds would pull in. Ties run concurrently. The clock is
    // elapsed device time: execution plus staging stalls.
    auto device_clock = [&](std::size_t d) {
        return stats.per_device[d].busy_seconds +
               stats.per_device[d].stall_seconds;
    };
    auto clock_is_min = [&](std::size_t d) {
        for (std::size_t e = 0; e < devices_.size(); ++e) {
            if (quarantined[e]) continue;
            if (device_clock(d) > device_clock(e) + 1e-15) {
                return false;
            }
        }
        return true;
    };
    // Least-loaded surviving peer (excluding `self` when possible) —
    // target for requeued and redistributed chunks.
    auto requeue_target = [&](std::size_t self) {
        std::size_t best = devices_.size();
        for (std::size_t e = 0; e < devices_.size(); ++e) {
            if (quarantined[e] || e == self) continue;
            if (best == devices_.size() ||
                device_clock(e) +
                        1e-9 * static_cast<double>(queued_items(e)) <
                    device_clock(best) +
                        1e-9 * static_cast<double>(queued_items(best))) {
                best = e;
            }
        }
        if (best == devices_.size() && !quarantined[self]) best = self;
        return best;
    };

    auto worker = [&](std::size_t d) {
        std::unique_lock lock(mutex);
        for (;;) {
            cv.wait(lock, [&] {
                if (remaining == 0 || failed || fatal || quarantined[d])
                    return true;
                return chunk_available() && clock_is_min(d);
            });
            if (remaining == 0 || failed || fatal || quarantined[d]) break;

            ChunkRecord chunk;
            if (!queues[d].empty()) {
                chunk = queues[d].front();
                queues[d].pop_front();
            } else {
                // Steal from the peer with the most queued work; take
                // the tail (its finest-grained chunks) so the victim
                // keeps its committed leading slice.
                std::size_t victim = devices_.size();
                std::size_t victim_load = 0;
                for (std::size_t e = 0; e < devices_.size(); ++e) {
                    const std::size_t load = queued_items(e);
                    if (!queues[e].empty() && load >= victim_load) {
                        victim = e;
                        victim_load = load;
                    }
                }
                chunk = queues[victim].back();
                queues[victim].pop_back();
                if (chunk.count > grain[d]) {
                    ChunkRecord rest = chunk;
                    rest.count = chunk.count - grain[d];
                    queues[victim].push_back(rest);
                    chunk.begin += rest.count;
                    chunk.count = grain[d];
                    ++remaining; // the split-off rest is a new chunk
                }
                ++stats.per_device[d].steals;
                ++stats.steals;
                if (auto* recorder = obs::trace()) {
                    obs::TraceInstant instant;
                    instant.name = "steal";
                    instant.device = devices_[d]->name();
                    instant.at_seconds = device_clock(d);
                    instant.detail =
                        "from " + devices_[victim]->name() + " chunk [" +
                        std::to_string(chunk.begin) + ", " +
                        std::to_string(chunk.begin + chunk.count) + ")";
                    recorder->record(std::move(instant));
                }
                if (auto* m = obs::metrics()) {
                    m->counter("scheduler.steals").add();
                }
            }

            lock.unlock();
            ocl::LaunchStats launch_stats;
            bool ok = false;
            try {
                launch_stats = runner(*devices_[d], chunk.begin,
                                      chunk.count);
                ok = true;
            } catch (const ocl::OclError& e) {
                lock.lock();
                DeviceScheduleStats& pd = stats.per_device[d];
                pd.busy_seconds +=
                    devices_[d]->profile().dispatch_overhead_seconds;
                ++pd.failures;
                ++consecutive_failures[d];
                fail_status = e.status();
                ++chunk.retries;
                ++stats.retries;
                if (auto* recorder = obs::trace()) {
                    obs::TraceInstant instant;
                    instant.name = "retry";
                    instant.device = devices_[d]->name();
                    instant.at_seconds = pd.busy_seconds + pd.stall_seconds;
                    instant.detail = "chunk [" +
                                     std::to_string(chunk.begin) + ", " +
                                     std::to_string(chunk.begin +
                                                    chunk.count) +
                                     "): " + e.what();
                    recorder->record(std::move(instant));
                }
                if (auto* m = obs::metrics()) {
                    m->counter("scheduler.retries").add();
                }
                if (chunk.retries > config_.max_chunk_retries) {
                    failed = true;
                    fail_message =
                        "scheduler: chunk [" +
                        std::to_string(chunk.begin) + ", " +
                        std::to_string(chunk.begin + chunk.count) +
                        ") exhausted its retries; last error: " + e.what();
                    cv.notify_all();
                    break;
                }
                if (consecutive_failures[d] >= config_.quarantine_after) {
                    // Quarantine: this device stops pulling work and its
                    // queued chunks move to the survivors.
                    pd.quarantined = true;
                    quarantined[d] = 1;
                    --alive;
                    if (auto* recorder = obs::trace()) {
                        obs::TraceInstant instant;
                        instant.name = "quarantine";
                        instant.device = devices_[d]->name();
                        instant.at_seconds =
                            pd.busy_seconds + pd.stall_seconds;
                        instant.detail =
                            std::to_string(consecutive_failures[d]) +
                            " consecutive launch failures";
                        recorder->record(std::move(instant));
                    }
                    if (auto* m = obs::metrics()) {
                        m->counter("scheduler.quarantines").add();
                    }
                    std::deque<ChunkRecord> orphans;
                    orphans.swap(queues[d]);
                    orphans.push_front(chunk);
                    for (ChunkRecord& orphan : orphans) {
                        const std::size_t target = requeue_target(d);
                        if (target == devices_.size()) break;
                        queues[target].push_back(orphan);
                    }
                    if (alive == 0 && remaining > 0) {
                        failed = true;
                        fail_message =
                            "scheduler: every device quarantined with " +
                            std::to_string(remaining) +
                            " chunks unfinished; last error: " + e.what();
                    }
                    cv.notify_all();
                    break;
                }
                queues[requeue_target(d)].push_back(chunk);
                cv.notify_all();
                continue;
            } catch (...) {
                lock.lock();
                if (!fatal) fatal = std::current_exception();
                cv.notify_all();
                break;
            }
            (void)ok;

            lock.lock();
            DeviceScheduleStats& pd = stats.per_device[d];
            pd.busy_seconds += launch_stats.seconds;
            pd.stall_seconds += launch_stats.queue_wait_seconds;
            ++pd.chunks;
            pd.items += chunk.count;
            pd.stats.items += launch_stats.items;
            pd.stats.total_ops += launch_stats.total_ops;
            pd.stats.scratch_bytes_per_item =
                launch_stats.scratch_bytes_per_item;
            pd.stats.utilization = launch_stats.utilization;
            pd.stats.seconds += launch_stats.seconds;
            consecutive_failures[d] = 0;
            chunk.device = d;
            chunk.stolen = chunk.device != chunk.owner;
            if (auto* recorder = obs::trace()) {
                obs::TraceSpan span;
                span.name = "chunk [" + std::to_string(chunk.begin) +
                            ", " +
                            std::to_string(chunk.begin + chunk.count) +
                            ")";
                span.device = devices_[d]->name();
                span.track = obs::kSchedulerTrack;
                span.start_seconds = launch_stats.start_seconds;
                span.duration_seconds = launch_stats.seconds;
                span.chunk = static_cast<std::int64_t>(chunk.begin);
                span.detail = "owner=" +
                              devices_[chunk.owner]->name() +
                              (chunk.stolen ? " stolen" : "") +
                              (chunk.retries > 0
                                   ? " retries=" +
                                         std::to_string(chunk.retries)
                                   : "");
                recorder->record(std::move(span));
            }
            if (auto* m = obs::metrics()) {
                m->counter("scheduler.chunks").add();
                m->histogram("scheduler.chunk_items")
                    .observe(static_cast<double>(chunk.count));
            }
            stats.records.push_back(chunk);
            ++stats.chunks;
            --remaining;
            cv.notify_all();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        threads.emplace_back(worker, d);
    }
    for (std::thread& t : threads) t.join();

    if (fatal) std::rethrow_exception(fatal);
    if (failed || remaining > 0) {
        throw ocl::OclError(fail_status == ocl::OclStatus::Success
                                ? ocl::OclStatus::OutOfResources
                                : fail_status,
                            fail_message.empty()
                                ? "scheduler: unfinished chunks remain"
                                : fail_message);
    }
    return stats;
}

} // namespace repute::core
