#include "core/tuner.hpp"

#include <algorithm>
#include <stdexcept>

#include "filter/memopt_seeder.hpp"
#include "ocl/queue.hpp"

namespace repute::core {

TuneResult tune_shares(const genomics::Reference& reference,
                       const index::FmIndex& fm,
                       const genomics::ReadBatch& batch,
                       std::uint32_t delta, std::uint32_t s_min,
                       std::vector<ocl::Device*> devices,
                       const TuneConfig& config) {
    if (batch.empty()) {
        throw std::invalid_argument("tune_shares: empty batch");
    }
    std::erase(devices, nullptr);
    if (devices.empty()) {
        throw std::invalid_argument("tune_shares: no devices");
    }

    const filter::MemoryOptimizedSeeder seeder(s_min);
    KernelConfig kernel;
    kernel.s_min = s_min;
    const std::uint64_t scratch =
        kernel_scratch_bytes(seeder, batch.read_length, delta);

    // Probe slice: evenly strided so repeat-heavy reads are sampled.
    // Every device probes the same slice, so when the batch is smaller
    // than probe_reads x devices the probe is clamped to the per-device
    // share — probing more would model a fleet that maps the batch
    // several times over and skew the finish-together prediction.
    std::size_t probe = std::min(config.probe_reads, batch.size());
    if (probe * devices.size() > batch.size()) {
        probe = std::max<std::size_t>(1, batch.size() / devices.size());
    }
    const std::size_t stride = std::max<std::size_t>(
        1, batch.size() / probe);

    TuneResult result;
    result.reads_per_second.assign(devices.size(), 0.0);

    for (std::size_t d = 0; d < devices.size(); ++d) {
        ocl::Device& device = *devices[d];
        if (scratch > device.profile().private_memory_per_unit) {
            continue; // cannot run the kernel at all
        }
        std::vector<ReadMapping> scratch_out;
        ocl::CommandQueue queue(device);
        ocl::KernelLaunch launch;
        launch.name = "tune-probe";
        launch.n_items = probe;
        launch.scratch_bytes_per_item = scratch;
        // Probe work items recompute mappings into throwaway buffers;
        // only the modeled time matters.
        launch.body = [&, stride](std::size_t i) -> std::uint64_t {
            thread_local std::vector<ReadMapping> out;
            return map_read_workitem(fm, reference, seeder,
                                     batch.reads[(i * stride) %
                                                 batch.size()],
                                     delta, kernel, out);
        };
        const auto stats = queue.run(std::move(launch));
        // Fold the modeled host<->device transfer cost of a probe-sized
        // chunk into the device's effective rate: a device behind a slow
        // bus maps fewer reads per second than its kernel time suggests.
        // Double-buffered staging hides transfers behind compute
        // (steady-state chunk cost = max of the three), serialized
        // staging pays their sum.
        const ocl::TransferSpec& spec = device.profile().transfer;
        const double write_seconds =
            spec.seconds_for(static_cast<std::uint64_t>(probe) *
                             batch.read_length);
        const double read_seconds = spec.seconds_for(
            static_cast<std::uint64_t>(probe) *
            kernel.max_locations_per_read * 8);
        const double chunk_seconds =
            config.double_buffer
                ? std::max({stats.seconds, write_seconds, read_seconds})
                : stats.seconds + write_seconds + read_seconds;
        if (chunk_seconds > 0.0) {
            result.reads_per_second[d] =
                static_cast<double>(probe) / chunk_seconds;
        }
    }

    const double fastest = *std::max_element(
        result.reads_per_second.begin(), result.reads_per_second.end());
    if (fastest <= 0.0) {
        throw std::invalid_argument(
            "tune_shares: no device can run this kernel configuration");
    }

    double total_rate = 0.0;
    result.shares.reserve(devices.size());
    for (std::size_t d = 0; d < devices.size(); ++d) {
        double rate = result.reads_per_second[d];
        if (rate < config.min_useful_fraction * fastest) rate = 0.0;
        result.shares.push_back({devices[d], rate});
        total_rate += rate;
    }
    // Finish-together prediction: every device processes its share at
    // its measured rate, so T = N / sum(rates).
    result.predicted_seconds =
        static_cast<double>(batch.size()) / total_rate;
    return result;
}

} // namespace repute::core
