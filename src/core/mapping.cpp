#include "core/mapping.hpp"

#include <algorithm>

namespace repute::core {

std::uint64_t MapResult::total_mappings() const noexcept {
    std::uint64_t total = 0;
    for (const auto& m : per_read) total += m.size();
    return total;
}

std::size_t MapResult::reads_mapped() const noexcept {
    std::size_t n = 0;
    for (const auto& m : per_read) n += m.empty() ? 0 : 1;
    return n;
}

std::uint64_t MapResult::bytes_staged() const noexcept {
    std::uint64_t total = 0;
    for (const DeviceRun& run : device_runs) total += run.bytes_staged;
    return total;
}

std::uint64_t MapResult::bytes_drained() const noexcept {
    std::uint64_t total = 0;
    for (const DeviceRun& run : device_runs) total += run.bytes_drained;
    return total;
}

double MapResult::transfer_overlap_ratio() const noexcept {
    double transfer = 0.0;
    double stall = 0.0;
    for (const DeviceRun& run : device_runs) {
        transfer += run.transfer_seconds;
        stall += run.stall_seconds;
    }
    if (transfer <= 0.0) return 1.0;
    return std::clamp(1.0 - stall / transfer, 0.0, 1.0);
}

std::vector<genomics::SamRecord> to_sam(const genomics::ReadBatch& batch,
                                        const MapResult& result,
                                        const std::string& reference_name) {
    std::vector<genomics::SamRecord> records;
    records.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto& read = batch.reads[i];
        const auto& mappings =
            i < result.per_read.size() ? result.per_read[i]
                                       : std::vector<ReadMapping>{};
        if (mappings.empty()) {
            genomics::SamRecord rec;
            rec.qname = read.name;
            rec.flag = genomics::SamRecord::kFlagUnmapped;
            rec.rname = "*";
            records.push_back(std::move(rec));
            continue;
        }
        const auto best = std::min_element(
            mappings.begin(), mappings.end(),
            [](const ReadMapping& a, const ReadMapping& b) {
                return a.edit_distance < b.edit_distance;
            });
        for (const auto& m : mappings) {
            genomics::SamRecord rec;
            rec.qname = read.name;
            rec.rname = reference_name;
            rec.pos = m.position + 1; // SAM is 1-based
            rec.edit_distance = m.edit_distance;
            rec.mapq = static_cast<std::uint8_t>(
                m.edit_distance == best->edit_distance ? 60 : 0);
            if (m.strand == genomics::Strand::Reverse) {
                rec.flag |= genomics::SamRecord::kFlagReverse;
            }
            if (&m != &*best) {
                rec.flag |= genomics::SamRecord::kFlagSecondary;
            }
            rec.seq = read.to_string();
            records.push_back(std::move(rec));
        }
    }
    return records;
}

} // namespace repute::core
