#pragma once
// Workload-split auto-tuning.
//
// Paper §IV: "The distribution of workload among various devices ...
// should be performed judiciously to obtain optimum performance"
// (Fig. 3 shows the cost of getting it wrong). balanced_shares() uses
// the devices' *nominal* throughputs; this tuner instead measures each
// device on a small probe slice of the actual read set — capturing
// occupancy effects, dispatch overheads and the workload's own
// character — and solves for shares that make all devices finish
// together.

#include <vector>

#include "core/repute_mapper.hpp"
#include "genomics/sequence.hpp"

namespace repute::core {

struct TuneConfig {
    /// Reads probed per device (drawn evenly from the batch so repeat
    /// reads are represented). Clamped so the fleet never probes more
    /// reads than the batch holds (small-batch edge case).
    std::size_t probe_reads = 200;
    /// Devices slower than this fraction of the fastest are dropped
    /// (their dispatch overhead would dominate their contribution).
    double min_useful_fraction = 0.02;
    /// Whether the mapper the shares are tuned for will double-buffer
    /// its staging. Affects how a device's modeled TransferSpec folds
    /// into its effective rate: overlapped staging costs
    /// max(compute, stage, drain) per chunk, serialized staging costs
    /// their sum. Ignored for devices with unmodeled transfers.
    bool double_buffer = true;
};

struct TuneResult {
    std::vector<DeviceShare> shares;
    /// Measured per-device throughput on the probe (reads/second).
    std::vector<double> reads_per_second;
    /// Predicted mapping time for the full batch under `shares`.
    double predicted_seconds = 0.0;
};

/// Probes `devices` with slices of `batch` mapped by a REPUTE kernel at
/// (s_min, delta) and returns finish-together shares. Devices that
/// cannot run the kernel (scratch over private memory) get share 0.
/// Throws std::invalid_argument when no device can run the kernel or
/// the batch is empty.
TuneResult tune_shares(const genomics::Reference& reference,
                       const index::FmIndex& fm,
                       const genomics::ReadBatch& batch,
                       std::uint32_t delta, std::uint32_t s_min,
                       std::vector<ocl::Device*> devices,
                       const TuneConfig& config = {});

} // namespace repute::core
