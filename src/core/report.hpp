#pragma once
// Human-readable run reports: one-call summaries of a MapResult for
// logs and the example programs.

#include <string>

#include "core/mapping.hpp"

namespace repute::core {

/// Multi-line summary: read/mapping counts, mappings-per-read
/// histogram, per-device time/utilization and stage breakdown.
std::string format_map_report(const genomics::ReadBatch& batch,
                              const MapResult& result);

} // namespace repute::core
