#include "core/paired.hpp"

#include <algorithm>
#include <stdexcept>

#include "align/myers.hpp"
#include "util/packed_dna.hpp"

namespace repute::core {

namespace {

/// Insert size of a candidate FR combination, or 0 when the geometry is
/// wrong. `fwd_pos` is the forward mate's start, `rev_pos` the reverse
/// mate's (both 0-based read starts on the forward strand); `rev_len`
/// is the reverse mate's read length — the outer distance runs to the
/// reverse mate's rightmost base, so only its length enters.
std::uint32_t fr_insert(std::uint32_t fwd_pos, std::uint32_t rev_pos,
                        std::uint32_t rev_len) noexcept {
    if (rev_pos < fwd_pos) return 0;
    return rev_pos + rev_len - fwd_pos;
}

} // namespace

std::vector<genomics::SamRecord> paired_to_sam(
    const genomics::ReadBatch& first, const genomics::ReadBatch& second,
    const PairedResult& result, const std::string& reference_name) {
    using genomics::SamRecord;
    std::vector<SamRecord> records;
    records.reserve(2 * result.pairs.size());
    // String (not literal) sources: assigning "*" / "=" directly inside
    // the inlined lambda trips GCC 12's -Wrestrict false positive.
    static const std::string kStar = "*";
    static const std::string kSame = "=";

    for (std::size_t i = 0; i < result.pairs.size(); ++i) {
        const PairMapping& pair = result.pairs[i];
        bool m1 = false, m2 = false;
        switch (pair.classification) {
            case PairClass::Proper:
            case PairClass::Rescued:
            case PairClass::Discordant: m1 = m2 = true; break;
            case PairClass::OneMateUnmapped:
                // Only the mapped side was filled; the other mate reads
                // as a value-initialized ReadMapping.
                m1 = !(pair.mate1 == ReadMapping{});
                m2 = !(pair.mate2 == ReadMapping{});
                break;
            case PairClass::BothUnmapped: break;
        }
        const bool proper = pair.classification == PairClass::Proper ||
                            pair.classification == PairClass::Rescued;

        auto make_record = [&](bool is_first) {
            const auto& read =
                is_first ? first.reads[i] : second.reads[i];
            const auto& own = is_first ? pair.mate1 : pair.mate2;
            const auto& other = is_first ? pair.mate2 : pair.mate1;
            const bool own_mapped = is_first ? m1 : m2;
            const bool other_mapped = is_first ? m2 : m1;

            SamRecord rec;
            rec.qname = read.name;
            rec.seq = read.to_string();
            rec.flag = SamRecord::kFlagPaired |
                       (is_first ? SamRecord::kFlagFirstInPair
                                 : SamRecord::kFlagSecondInPair);
            if (!own_mapped) {
                rec.flag |= SamRecord::kFlagUnmapped;
                rec.rname = kStar;
            } else {
                rec.rname = reference_name;
                rec.pos = own.position + 1;
                rec.edit_distance = own.edit_distance;
                if (own.strand == genomics::Strand::Reverse) {
                    rec.flag |= SamRecord::kFlagReverse;
                }
                if (proper) rec.flag |= SamRecord::kFlagProperPair;
            }
            if (!other_mapped) {
                rec.flag |= SamRecord::kFlagMateUnmapped;
            } else {
                rec.rnext = kSame;
                rec.pnext = other.position + 1;
                if (other.strand == genomics::Strand::Reverse) {
                    rec.flag |= SamRecord::kFlagMateReverse;
                }
                if (own_mapped && proper) {
                    const std::int32_t span =
                        static_cast<std::int32_t>(pair.insert_size);
                    // Leftmost mate gets +TLEN, rightmost -TLEN.
                    rec.tlen = own.position <= other.position ? span
                                                              : -span;
                }
            }
            return rec;
        };
        records.push_back(make_record(true));
        records.push_back(make_record(false));
    }
    return records;
}

std::size_t PairedResult::count(PairClass c) const noexcept {
    std::size_t n = 0;
    for (const auto& p : pairs) n += (p.classification == c) ? 1 : 0;
    return n;
}

PairedMapper::PairedMapper(Mapper& single,
                           const genomics::Reference& reference,
                           PairedConfig config)
    : single_(&single), reference_(&reference), config_(config) {
    if (config_.min_insert > config_.max_insert) {
        throw std::invalid_argument(
            "PairedMapper: min_insert > max_insert");
    }
}

bool PairedMapper::find_proper(const std::vector<ReadMapping>& mappings1,
                               const std::vector<ReadMapping>& mappings2,
                               std::uint32_t len1, std::uint32_t len2,
                               PairMapping& out) const {
    bool found = false;
    std::uint32_t best_edit = 0;
    std::uint32_t best_offcenter = 0;
    const std::uint32_t mid =
        (config_.min_insert + config_.max_insert) / 2;

    auto consider = [&](const ReadMapping& m1, const ReadMapping& m2) {
        // FR: one mate forward, the other reverse, forward one first.
        const ReadMapping* fwd = nullptr;
        const ReadMapping* rev = nullptr;
        if (m1.strand == genomics::Strand::Forward &&
            m2.strand == genomics::Strand::Reverse) {
            fwd = &m1;
            rev = &m2;
        } else if (m1.strand == genomics::Strand::Reverse &&
                   m2.strand == genomics::Strand::Forward) {
            fwd = &m2;
            rev = &m1;
        } else {
            return;
        }
        const std::uint32_t insert = fr_insert(
            fwd->position, rev->position, rev == &m1 ? len1 : len2);
        if (insert < config_.min_insert || insert > config_.max_insert) {
            return;
        }
        const std::uint32_t edit = m1.edit_distance + m2.edit_distance;
        const std::uint32_t offcenter =
            insert > mid ? insert - mid : mid - insert;
        if (!found || edit < best_edit ||
            (edit == best_edit && offcenter < best_offcenter)) {
            found = true;
            best_edit = edit;
            best_offcenter = offcenter;
            out.mate1 = m1;
            out.mate2 = m2;
            out.insert_size = insert;
        }
    };

    for (const auto& m1 : mappings1) {
        for (const auto& m2 : mappings2) consider(m1, m2);
    }
    return found;
}

bool PairedMapper::rescue(const genomics::Read& mate,
                          const ReadMapping& anchor,
                          std::uint32_t anchor_len, std::uint32_t mate_len,
                          std::uint32_t delta, ReadMapping& out) const {
    const auto text_len = static_cast<std::uint32_t>(reference_->size());
    const std::uint32_t budget = delta + config_.rescue_delta_bonus;

    // Expected start range of the missing mate and its orientation. The
    // insert runs from the forward mate's start to the reverse mate's
    // end, so each branch mixes the two lengths differently.
    std::uint32_t lo, hi;
    genomics::Strand strand;
    if (anchor.strand == genomics::Strand::Forward) {
        // Missing mate sits to the right, reverse-oriented: insert =
        // mate_pos + mate_len - anchor_pos.
        if (config_.max_insert < mate_len) return false; // degenerate
        strand = genomics::Strand::Reverse;
        const std::uint32_t base = anchor.position + config_.min_insert;
        lo = base > mate_len ? base - mate_len : 0;
        hi = anchor.position + config_.max_insert - mate_len;
    } else {
        // Missing mate sits to the left, forward-oriented: insert =
        // anchor_pos + anchor_len - mate_pos.
        strand = genomics::Strand::Forward;
        lo = anchor.position + anchor_len >= config_.max_insert
                 ? anchor.position + anchor_len - config_.max_insert
                 : 0;
        hi = anchor.position + anchor_len >= config_.min_insert
                 ? anchor.position + anchor_len - config_.min_insert
                 : 0;
    }
    if (lo >= text_len) return false;
    hi = std::min(hi, text_len > mate_len ? text_len - mate_len : 0u);
    if (hi < lo) return false;

    const std::uint32_t win_lo = lo > budget ? lo - budget : 0;
    const std::uint32_t win_len = std::min<std::uint32_t>(
        hi - lo + mate_len + 2 * budget, text_len - win_lo);
    if (win_len < mate_len) return false;

    const std::vector<std::uint8_t> pattern =
        strand == genomics::Strand::Reverse ? mate.reverse_complement()
                                            : mate.codes;
    const auto window = reference_->sequence().extract(win_lo, win_len);
    const align::MyersMatcher matcher(pattern);
    const auto hit = matcher.best_in(window);
    if (hit.distance > budget) return false;

    out.position = win_lo + (hit.text_end > mate_len
                                 ? hit.text_end - mate_len
                                 : 0);
    out.edit_distance = static_cast<std::uint16_t>(hit.distance);
    out.strand = strand;
    return true;
}

PairedResult PairedMapper::map_pairs(const genomics::ReadBatch& first,
                                     const genomics::ReadBatch& second,
                                     std::uint32_t delta) {
    if (first.size() != second.size()) {
        throw std::invalid_argument(
            "map_pairs: mate batches must be parallel");
    }

    const MapResult r1 = single_->map(first, delta);
    const MapResult r2 = single_->map(second, delta);

    PairedResult result;
    result.mapping_seconds = r1.mapping_seconds + r2.mapping_seconds;
    result.pairs.resize(first.size());

    for (std::size_t i = 0; i < first.size(); ++i) {
        PairMapping& pair = result.pairs[i];
        const auto& mappings1 = r1.per_read[i];
        const auto& mappings2 = r2.per_read[i];
        const auto len1 =
            static_cast<std::uint32_t>(first.reads[i].length());
        const auto len2 =
            static_cast<std::uint32_t>(second.reads[i].length());

        if (!mappings1.empty() && !mappings2.empty()) {
            if (find_proper(mappings1, mappings2, len1, len2, pair)) {
                pair.classification = PairClass::Proper;
            } else {
                pair.classification = PairClass::Discordant;
                pair.mate1 = mappings1.front();
                pair.mate2 = mappings2.front();
            }
            continue;
        }
        if (mappings1.empty() && mappings2.empty()) {
            pair.classification = PairClass::BothUnmapped;
            continue;
        }

        // One mate mapped: try rescue around its best mapping.
        const bool first_mapped = !mappings1.empty();
        const auto& anchor_list = first_mapped ? mappings1 : mappings2;
        const auto best_anchor = std::min_element(
            anchor_list.begin(), anchor_list.end(),
            [](const ReadMapping& a, const ReadMapping& b) {
                return a.edit_distance < b.edit_distance;
            });
        ReadMapping rescued;
        if (config_.enable_rescue &&
            rescue(first_mapped ? second.reads[i] : first.reads[i],
                   *best_anchor, first_mapped ? len1 : len2,
                   first_mapped ? len2 : len1, delta, rescued)) {
            pair.classification = PairClass::Rescued;
            pair.mate1 = first_mapped ? *best_anchor : rescued;
            pair.mate2 = first_mapped ? rescued : *best_anchor;
            const bool mate1_fwd =
                pair.mate1.strand == genomics::Strand::Forward;
            const auto& fwd = mate1_fwd ? pair.mate1 : pair.mate2;
            const auto& rev = mate1_fwd ? pair.mate2 : pair.mate1;
            pair.insert_size = fr_insert(fwd.position, rev.position,
                                         mate1_fwd ? len2 : len1);
        } else {
            pair.classification = PairClass::OneMateUnmapped;
            (first_mapped ? pair.mate1 : pair.mate2) = *best_anchor;
        }
    }
    return result;
}

} // namespace repute::core
