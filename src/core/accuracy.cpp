#include "core/accuracy.hpp"

#include <algorithm>
#include <stdexcept>

namespace repute::core {

bool contains_mapping(const std::vector<ReadMapping>& mappings,
                      const ReadMapping& target, std::uint32_t tolerance) {
    const std::uint32_t lo =
        target.position >= tolerance ? target.position - tolerance : 0;
    auto it = std::lower_bound(
        mappings.begin(), mappings.end(), lo,
        [](const ReadMapping& m, std::uint32_t value) {
            return m.position < value;
        });
    for (; it != mappings.end() &&
           it->position <= target.position + tolerance;
         ++it) {
        if (it->strand == target.strand) return true;
    }
    return false;
}

namespace {

void check_sizes(const MapResult& gold, const MapResult& test) {
    if (gold.per_read.size() != test.per_read.size()) {
        throw std::invalid_argument(
            "accuracy: result sets cover different read counts");
    }
}

} // namespace

double all_locations_accuracy(const MapResult& gold, const MapResult& test,
                              const AccuracyConfig& config) {
    check_sizes(gold, test);
    std::uint64_t gold_total = 0;
    std::uint64_t found = 0;
    for (std::size_t r = 0; r < gold.per_read.size(); ++r) {
        const auto& gold_mappings = gold.per_read[r];
        const auto& test_mappings = test.per_read[r];
        gold_total += gold_mappings.size();
        for (const ReadMapping& g : gold_mappings) {
            if (contains_mapping(test_mappings, g,
                                 config.position_tolerance)) {
                ++found;
            }
        }
    }
    if (gold_total == 0) return 100.0;
    return 100.0 * static_cast<double>(found) /
           static_cast<double>(gold_total);
}

double any_best_accuracy(const MapResult& gold, const MapResult& test,
                         const AccuracyConfig& config) {
    check_sizes(gold, test);
    std::uint64_t gold_mapped_reads = 0;
    std::uint64_t recovered = 0;
    for (std::size_t r = 0; r < gold.per_read.size(); ++r) {
        const auto& gold_mappings = gold.per_read[r];
        if (gold_mappings.empty()) continue;
        ++gold_mapped_reads;
        const auto& test_mappings = test.per_read[r];
        const bool any = std::any_of(
            gold_mappings.begin(), gold_mappings.end(),
            [&](const ReadMapping& g) {
                return contains_mapping(test_mappings, g,
                                        config.position_tolerance);
            });
        if (any) ++recovered;
    }
    if (gold_mapped_reads == 0) return 100.0;
    return 100.0 * static_cast<double>(recovered) /
           static_cast<double>(gold_mapped_reads);
}

std::vector<double> stratified_any_best_accuracy(
    const MapResult& gold, const MapResult& test,
    const AccuracyConfig& config, std::uint32_t max_distance) {
    check_sizes(gold, test);
    std::vector<std::uint64_t> totals(max_distance + 1, 0);
    std::vector<std::uint64_t> recovered(max_distance + 1, 0);

    for (std::size_t r = 0; r < gold.per_read.size(); ++r) {
        const auto& gold_mappings = gold.per_read[r];
        if (gold_mappings.empty()) continue;
        std::uint16_t best = gold_mappings.front().edit_distance;
        for (const auto& g : gold_mappings) {
            best = std::min(best, g.edit_distance);
        }
        if (best > max_distance) continue;
        ++totals[best];
        const bool any = std::any_of(
            gold_mappings.begin(), gold_mappings.end(),
            [&](const ReadMapping& g) {
                return contains_mapping(test.per_read[r], g,
                                        config.position_tolerance);
            });
        if (any) ++recovered[best];
    }

    std::vector<double> out(max_distance + 1, -1.0);
    for (std::uint32_t e = 0; e <= max_distance; ++e) {
        if (totals[e] > 0) {
            out[e] = 100.0 * static_cast<double>(recovered[e]) /
                     static_cast<double>(totals[e]);
        }
    }
    return out;
}

} // namespace repute::core
