#include "core/repute_mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace repute::core {

HeterogeneousMapper::HeterogeneousMapper(
    std::string display_name, const genomics::Reference& reference,
    const index::FmIndex& fm, std::unique_ptr<filter::Seeder> seeder,
    HeterogeneousMapperConfig config, std::vector<DeviceShare> shares)
    : name_(std::move(display_name)), reference_(&reference), fm_(&fm),
      seeder_(std::move(seeder)), config_(config) {
    if (seeder_ == nullptr) {
        throw std::invalid_argument(name_ + ": seeder must not be null");
    }
    double total = 0.0;
    for (const DeviceShare& s : shares) {
        if (s.device != nullptr && s.fraction > 0.0) {
            total += s.fraction;
            shares_.push_back(s);
        }
    }
    if (shares_.empty() || total <= 0.0) {
        throw std::invalid_argument(
            name_ + ": needs at least one device with a positive share");
    }
    for (DeviceShare& s : shares_) s.fraction /= total;
}

std::vector<std::size_t> HeterogeneousMapper::split_workload(
    std::size_t total) const {
    std::vector<std::size_t> counts(shares_.size(), 0);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i + 1 < shares_.size(); ++i) {
        counts[i] = static_cast<std::size_t>(
            static_cast<double>(total) * shares_[i].fraction);
        assigned += counts[i];
    }
    counts.back() = total - assigned;
    return counts;
}

MapResult HeterogeneousMapper::map(const genomics::ReadBatch& batch,
                                   std::uint32_t delta) {
    return config_.schedule == ScheduleMode::Dynamic
               ? map_dynamic(batch, delta)
               : map_static(batch, delta);
}

namespace {

/// Publishes the run's transfer/compute overlap ratio once any modeled
/// transfer time was spent (unmodeled runs leave the gauge untouched so
/// legacy metric dumps are unchanged).
void finish_transfer_accounting(const MapResult& result) {
    double transfer = 0.0;
    for (const DeviceRun& run : result.device_runs) {
        transfer += run.transfer_seconds;
    }
    if (transfer <= 0.0) return;
    if (auto* m = obs::metrics()) {
        m->gauge("xfer.overlap_ratio").set(result.transfer_overlap_ratio());
    }
}

} // namespace

MapResult HeterogeneousMapper::map_static(const genomics::ReadBatch& batch,
                                          std::uint32_t delta) {
    MapResult result;
    result.per_read.resize(batch.size());
    if (batch.empty()) return result;

    // Per-read stage accounting; work items own disjoint slots and the
    // per-device reduction happens after all events complete.
    std::vector<StageTotals> read_stages(batch.size());

    const std::size_t n = batch.read_length;
    const std::uint64_t scratch = kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(config_.kernel.max_locations_per_read) *
        8; // packed (position, edit, strand) slot

    std::vector<ocl::Device*> devices;
    devices.reserve(shares_.size());
    for (const DeviceShare& s : shares_) devices.push_back(s.device);
    ocl::Context context(devices);

    const auto counts = split_workload(batch.size());

    // Per-device state kept alive until every event completed. Each
    // chunk runs as a stage -> kernel -> drain event triple: the write
    // stages the chunk's reads host-to-device, the kernel hard-waits on
    // it, and the read drains the output buffer. With double buffering
    // (and a modeled TransferSpec) two buffer sets alternate, so chunk
    // k+1's write overlaps chunk k's kernel and the steady-state cost
    // per chunk drops from stage+compute+drain to max(stage, compute,
    // drain). Buffer-reuse dependencies ride the ordering-only reuse
    // list: a failed kernel never touched its buffers, so reusing them
    // needs no wait and no failure propagation.
    struct DeviceWork {
        ocl::Buffer resident;              ///< reference + index image
        std::vector<ocl::Buffer> reads;    ///< one per buffer set
        std::vector<ocl::Buffer> outputs;  ///< one per buffer set
        ocl::Event resident_write;
        std::vector<ocl::Event> writes;
        std::vector<ocl::Event> kernels;
        std::vector<ocl::Event> reads_done; ///< output drains
        /// Read range [first, second) of each kernel, for the per-launch
        /// stage breakdown in traces.
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
        std::size_t sets = 1;
    };
    std::vector<DeviceWork> work(shares_.size());

    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceWork& dw = work[d];

        dw.resident = context.allocate(
            device,
            reference_->sequence().memory_bytes() + fm_->memory_bytes(),
            "index+reference");

        // Largest chunk whose read and output buffers fit the device
        // ceilings (quarter-of-RAM per buffer, remaining global memory
        // in total). Oversized workloads run as several kernel
        // invocations reusing the same buffers — the paper's fallback.
        // Double buffering costs a second buffer set; when even one
        // read does not fit twice, it degrades to a single set rather
        // than failing.
        const auto& profile = device.profile();
        const bool staged_device = profile.transfer.modeled();
        dw.sets = (staged_device && config_.double_buffer) ? 2 : 1;
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device.allocated_bytes();
        std::uint64_t max_chunk64 = counts[d];
        max_chunk64 = std::min(max_chunk64, quarter / out_bytes_per_read);
        max_chunk64 = std::min(max_chunk64, quarter / n);
        std::uint64_t per_set =
            free_bytes / (dw.sets * (n + out_bytes_per_read));
        if (per_set == 0 && dw.sets > 1) {
            dw.sets = 1;
            per_set = free_bytes / (n + out_bytes_per_read);
        }
        max_chunk64 = std::min(max_chunk64, per_set);
        if (max_chunk64 == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device.name() +
                    " cannot hold the buffers of even one read");
        }
        const auto max_chunk = static_cast<std::size_t>(max_chunk64);
        if (max_chunk < counts[d]) {
            util::logf(util::LogLevel::Info,
                       "%s: %zu reads exceed %s memory; running %zu-read "
                       "kernel invocations",
                       name_.c_str(), counts[d], device.name().c_str(),
                       max_chunk);
            if (auto* m = obs::metrics()) {
                m->counter("mapper.buffer_ceiling_splits")
                    .add((counts[d] + max_chunk - 1) / max_chunk - 1);
            }
        }

        for (std::size_t s = 0; s < dw.sets; ++s) {
            dw.reads.push_back(
                context.allocate(device, max_chunk * n, "reads"));
            dw.outputs.push_back(context.allocate(
                device, max_chunk * out_bytes_per_read, "mappings"));
        }

        std::size_t base = 0;
        for (std::size_t e = 0; e < d; ++e) base += counts[e];

        ocl::CommandQueue queue(device);
        dw.resident_write =
            queue.enqueue_write(dw.resident, dw.resident.bytes());
        std::size_t remaining = counts[d];
        std::size_t chunk_index = 0;
        while (remaining > 0) {
            const std::size_t chunk = std::min(remaining, max_chunk);
            const std::size_t set = chunk_index % dw.sets;

            // Stage the chunk's reads; the buffer set is free again
            // once the kernel that last used it completed.
            std::vector<ocl::Event> write_reuse;
            if (chunk_index >= dw.sets) {
                write_reuse.push_back(dw.kernels[chunk_index - dw.sets]);
            }
            dw.writes.push_back(queue.enqueue_write(
                dw.reads[set], chunk * n, {}, std::move(write_reuse)));

            ocl::KernelLaunch launch;
            launch.name = name_ + "::map";
            launch.n_items = chunk;
            launch.scratch_bytes_per_item = scratch;
            launch.body = [this, &batch, &result, &read_stages, base,
                           delta](std::size_t i) -> std::uint64_t {
                // Work items write disjoint slots: no synchronization.
                // One scratch per pool thread: after the first read the
                // kernel runs allocation-free on that thread.
                thread_local KernelScratch kernel_scratch;
                return map_read_workitem(*fm_, *reference_, *seeder_,
                                         batch.reads[base + i], delta,
                                         config_.kernel,
                                         result.per_read[base + i],
                                         kernel_scratch,
                                         &read_stages[base + i]);
            };
            std::vector<ocl::Event> kernel_wait{dw.writes.back()};
            if (chunk_index == 0) {
                kernel_wait.push_back(dw.resident_write);
            }
            std::vector<ocl::Event> kernel_reuse;
            if (chunk_index >= dw.sets) {
                kernel_reuse.push_back(
                    dw.reads_done[chunk_index - dw.sets]);
            }
            dw.kernels.push_back(queue.enqueue(std::move(launch),
                                               std::move(kernel_wait),
                                               std::move(kernel_reuse)));
            dw.reads_done.push_back(queue.enqueue_read(
                dw.outputs[set], chunk * out_bytes_per_read,
                {dw.kernels.back()}));
            dw.ranges.emplace_back(base, base + chunk);
            base += chunk;
            remaining -= chunk;
            ++chunk_index;
        }
    }

    // Task-parallel completion: devices ran concurrently; the mapping
    // time is the slowest device's elapsed total — kernel execution
    // plus any staging stalls plus the final drain tail (the last
    // output transfer outliving the last kernel). Everything is
    // computed from the run's own events, so concurrent mappers sharing
    // a device (the serve pool) cannot skew each other's numbers.
    double slowest = 0.0;
    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceWork& dw = work[d];
        DeviceRun run;
        run.device_name = device.name();
        run.reads = counts[d];
        run.power_scale = config_.power_scale;

        const ocl::LaunchStats& resident_stats = dw.resident_write.wait();
        run.bytes_staged += dw.resident.bytes();
        run.transfer_seconds += resident_stats.seconds;

        double exec_seconds = 0.0;
        double wait_seconds = 0.0;
        double last_kernel_end = 0.0;
        double last_drain_end = 0.0;
        for (std::size_t e = 0; e < dw.kernels.size(); ++e) {
            const auto [lo, hi] = dw.ranges[e];

            const ocl::LaunchStats& write_stats = dw.writes[e].wait();
            run.bytes_staged += (hi - lo) * n;
            run.transfer_seconds += write_stats.seconds;

            const ocl::LaunchStats& stats = dw.kernels[e].wait();
            exec_seconds += stats.seconds;
            wait_seconds += stats.queue_wait_seconds;
            last_kernel_end =
                std::max(last_kernel_end,
                         stats.start_seconds + stats.seconds);
            run.stats.items += stats.items;
            run.stats.total_ops += stats.total_ops;
            run.stats.scratch_bytes_per_item = stats.scratch_bytes_per_item;
            run.stats.utilization = stats.utilization;

            const ocl::LaunchStats& drain_stats = dw.reads_done[e].wait();
            run.bytes_drained += (hi - lo) * out_bytes_per_read;
            run.transfer_seconds += drain_stats.seconds;
            last_drain_end =
                std::max(last_drain_end,
                         drain_stats.start_seconds + drain_stats.seconds);

            obs::StageCounters launch_stage;
            for (std::size_t r = lo; r < hi; ++r) {
                launch_stage += read_stages[r];
            }
            run.stage += launch_stage;
            if (auto* recorder = obs::trace()) {
                obs::record_stage_spans(
                    *recorder, run.device_name, /*track=*/0,
                    stats.start_seconds,
                    device.profile().dispatch_overhead_seconds,
                    stats.seconds, launch_stage);
            }
        }
        const double drain_tail =
            std::max(0.0, last_drain_end - last_kernel_end);
        run.stats.seconds = exec_seconds;
        run.stall_seconds = wait_seconds + drain_tail;
        slowest = std::max(slowest,
                           exec_seconds + wait_seconds + drain_tail);
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = slowest;
    finish_transfer_accounting(result);
    return result;
}

MapResult HeterogeneousMapper::map_dynamic(const genomics::ReadBatch& batch,
                                           std::uint32_t delta) {
    MapResult result;
    result.per_read.resize(batch.size());
    if (batch.empty()) return result;

    std::vector<StageTotals> read_stages(batch.size());

    const std::size_t n = batch.read_length;
    const std::uint64_t scratch = kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(config_.kernel.max_locations_per_read) *
        8;

    // Fleet = shares whose device can run the kernel at all; the rest
    // are dropped up front (the scheduler would only quarantine them).
    std::vector<ocl::Device*> devices;
    std::vector<double> warm_start;
    for (const DeviceShare& s : shares_) {
        if (scratch > s.device->profile().private_memory_per_unit) {
            util::logf(util::LogLevel::Info,
                       "%s: dropping %s (needs %llu B scratch/item)",
                       name_.c_str(), s.device->name().c_str(),
                       static_cast<unsigned long long>(scratch));
            continue;
        }
        devices.push_back(s.device);
        warm_start.push_back(s.fraction);
    }
    if (devices.empty()) {
        throw ocl::OclError(ocl::OclStatus::OutOfResources,
                            name_ + ": no device can run this kernel");
    }

    ocl::Context context(devices);

    // Resident images plus the chunk ceiling: any chunk must fit the
    // buffer budget of EVERY device, because a failed chunk may be
    // requeued anywhere in the fleet (the paper's multi-run fallback
    // logic, applied fleet-wide). Devices with a modeled TransferSpec
    // run double-buffered (two chunk buffer sets) unless disabled,
    // degrading to one set when memory is too tight.
    std::vector<ocl::Buffer> resident;
    resident.reserve(devices.size());
    std::vector<std::size_t> buffer_sets(devices.size(), 1);
    std::uint64_t fleet_chunk_cap = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t d = 0; d < devices.size(); ++d) {
        ocl::Device* device = devices[d];
        resident.push_back(context.allocate(
            *device,
            reference_->sequence().memory_bytes() + fm_->memory_bytes(),
            "index+reference"));
        const auto& profile = device->profile();
        if (profile.transfer.modeled() && config_.double_buffer) {
            buffer_sets[d] = 2;
        }
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device->allocated_bytes();
        std::uint64_t max_chunk = quarter / out_bytes_per_read;
        max_chunk = std::min(max_chunk, quarter / n);
        std::uint64_t per_set =
            free_bytes / (buffer_sets[d] * (n + out_bytes_per_read));
        if (per_set == 0 && buffer_sets[d] > 1) {
            buffer_sets[d] = 1;
            per_set = free_bytes / (n + out_bytes_per_read);
        }
        max_chunk = std::min(max_chunk, per_set);
        if (max_chunk == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device->name() +
                    " cannot hold the buffers of even one read");
        }
        fleet_chunk_cap = std::min(fleet_chunk_cap, max_chunk);
    }

    SchedulerConfig scheduler_config = config_.scheduler;
    scheduler_config.max_chunk_items =
        scheduler_config.max_chunk_items == 0
            ? static_cast<std::size_t>(fleet_chunk_cap)
            : std::min(scheduler_config.max_chunk_items,
                       static_cast<std::size_t>(fleet_chunk_cap));

    if (auto* m = obs::metrics()) {
        m->gauge("mapper.fleet_chunk_cap")
            .set(static_cast<double>(fleet_chunk_cap));
        if (static_cast<std::size_t>(fleet_chunk_cap) < batch.size()) {
            m->counter("mapper.buffer_ceiling_splits").add();
        }
    }

    ChunkScheduler scheduler(devices, warm_start, scheduler_config);

    // Per-device read/output buffers sized to the largest planned chunk
    // and reused across chunk launches (one set per buffer_sets entry:
    // double-buffered devices alternate two).
    std::size_t largest_chunk = 1;
    for (const ChunkRecord& c : scheduler.plan(batch.size())) {
        largest_chunk = std::max(largest_chunk, c.count);
    }

    // Per-device staging state. The scheduler runs one worker per
    // device and always hands device d's chunks to worker d, so each
    // entry is touched by exactly one thread during run().
    struct DeviceStage {
        std::vector<ocl::Buffer> reads;   ///< one per buffer set
        std::vector<ocl::Buffer> outputs; ///< one per buffer set
        ocl::Event resident_write;
        std::vector<ocl::Event> last_kernel; ///< per set
        std::vector<ocl::Event> last_drain;  ///< per set
        std::size_t launches = 0;
        std::uint64_t bytes_staged = 0;
        std::uint64_t bytes_drained = 0;
        double transfer_seconds = 0.0;
        double last_kernel_end = 0.0;
        double last_drain_end = 0.0;
    };
    std::vector<DeviceStage> stages(devices.size());
    std::map<ocl::Device*, std::size_t> device_index;
    for (std::size_t d = 0; d < devices.size(); ++d) {
        DeviceStage& st = stages[d];
        st.last_kernel.resize(buffer_sets[d]);
        st.last_drain.resize(buffer_sets[d]);
        for (std::size_t s = 0; s < buffer_sets[d]; ++s) {
            st.reads.push_back(context.allocate(
                *devices[d], largest_chunk * n, "reads"));
            st.outputs.push_back(context.allocate(
                *devices[d], largest_chunk * out_bytes_per_read,
                "mappings"));
        }
        device_index[devices[d]] = d;
    }

    // One persistent in-order queue per device: chunk launches on a
    // device chain on each other, and trace spans land on one track.
    std::map<ocl::Device*, ocl::CommandQueue> queues;
    for (ocl::Device* device : devices) {
        queues.try_emplace(device, *device);
    }
    for (std::size_t d = 0; d < devices.size(); ++d) {
        stages[d].resident_write = queues.at(devices[d])
                                       .enqueue_write(resident[d],
                                                      resident[d].bytes());
    }

    ScheduleStats schedule = scheduler.run(
        batch.size(),
        [&](ocl::Device& device, std::size_t begin, std::size_t count) {
            const std::size_t d = device_index.at(&device);
            DeviceStage& st = stages[d];
            ocl::CommandQueue& queue = queues.at(&device);
            const std::size_t set = st.launches % st.last_kernel.size();

            // Stage this chunk's reads; the set is free once the kernel
            // that last used it completed (ordering-only reuse dep — a
            // faulted kernel must not cascade into later stages).
            std::vector<ocl::Event> write_reuse;
            if (st.last_kernel[set].valid()) {
                write_reuse.push_back(st.last_kernel[set]);
            }
            ocl::Event write = queue.enqueue_write(
                st.reads[set], count * n, {}, std::move(write_reuse));

            ocl::KernelLaunch launch;
            launch.name = name_ + "::map-chunk";
            launch.n_items = count;
            launch.scratch_bytes_per_item = scratch;
            launch.body = [this, &batch, &result, &read_stages, begin,
                           delta](std::size_t i) -> std::uint64_t {
                // Work items own disjoint slots, and a retried chunk
                // rewrites exactly the same slots (map_read_workitem
                // clears its output and stage totals first).
                read_stages[begin + i] = StageTotals{};
                thread_local KernelScratch kernel_scratch;
                return map_read_workitem(*fm_, *reference_, *seeder_,
                                         batch.reads[begin + i], delta,
                                         config_.kernel,
                                         result.per_read[begin + i],
                                         kernel_scratch,
                                         &read_stages[begin + i]);
            };
            std::vector<ocl::Event> kernel_wait{write};
            if (st.launches == 0) {
                kernel_wait.push_back(st.resident_write);
            }
            std::vector<ocl::Event> kernel_reuse;
            if (st.last_drain[set].valid()) {
                kernel_reuse.push_back(st.last_drain[set]);
            }
            ocl::Event kernel = queue.enqueue(std::move(launch),
                                              std::move(kernel_wait),
                                              std::move(kernel_reuse));

            // The write cannot fault; account it before the kernel wait
            // so a retried chunk still shows the staging it burned.
            const ocl::LaunchStats& write_stats = write.wait();
            st.bytes_staged += count * n;
            st.transfer_seconds += write_stats.seconds;
            ++st.launches;

            const ocl::LaunchStats stats = kernel.wait(); // throws on fault
            st.last_kernel[set] = kernel;
            st.last_kernel_end = std::max(
                st.last_kernel_end, stats.start_seconds + stats.seconds);

            ocl::Event drain = queue.enqueue_read(
                st.outputs[set], count * out_bytes_per_read, {kernel});
            const ocl::LaunchStats& drain_stats = drain.wait();
            st.last_drain[set] = drain;
            st.bytes_drained += count * out_bytes_per_read;
            st.transfer_seconds += drain_stats.seconds;
            st.last_drain_end =
                std::max(st.last_drain_end,
                         drain_stats.start_seconds + drain_stats.seconds);

            if (auto* recorder = obs::trace()) {
                obs::StageCounters chunk_stage;
                for (std::size_t r = begin; r < begin + count; ++r) {
                    chunk_stage += read_stages[r];
                }
                obs::record_stage_spans(
                    *recorder, device.name(), /*track=*/0,
                    stats.start_seconds,
                    device.profile().dispatch_overhead_seconds,
                    stats.seconds, chunk_stage);
            }
            return stats;
        });

    for (std::size_t d = 0; d < devices.size(); ++d) {
        DeviceStage& st = stages[d];
        DeviceScheduleStats& pd = schedule.per_device[d];
        const ocl::LaunchStats& resident_stats = st.resident_write.wait();
        st.bytes_staged += resident[d].bytes();
        st.transfer_seconds += resident_stats.seconds;
        // The last output drain may outlive the last kernel; that tail
        // extends the device's elapsed time (and the makespan) like any
        // other stall.
        pd.stall_seconds +=
            std::max(0.0, st.last_drain_end - st.last_kernel_end);

        DeviceRun run;
        run.device_name = pd.device_name;
        run.reads = pd.items;
        run.power_scale = config_.power_scale;
        run.stats = pd.stats;
        run.bytes_staged = st.bytes_staged;
        run.bytes_drained = st.bytes_drained;
        run.transfer_seconds = st.transfer_seconds;
        run.stall_seconds = pd.stall_seconds;
        for (const ChunkRecord& c : schedule.records) {
            if (c.device != d) continue;
            for (std::size_t r = c.begin; r < c.begin + c.count; ++r) {
                run.stage += read_stages[r];
            }
        }
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = schedule.makespan_seconds();
    result.schedule = std::move(schedule);
    finish_transfer_accounting(result);
    return result;
}

std::unique_ptr<HeterogeneousMapper> make_repute(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares, HeterogeneousMapperConfig config) {
    return std::make_unique<HeterogeneousMapper>(
        "REPUTE", reference, fm,
        std::make_unique<filter::MemoryOptimizedSeeder>(
            config.kernel.s_min),
        config, std::move(shares));
}

std::unique_ptr<HeterogeneousMapper> make_coral(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares, HeterogeneousMapperConfig config) {
    config.kernel.collapse_candidates = false; // streaming verification
    return std::make_unique<HeterogeneousMapper>(
        "CORAL", reference, fm,
        std::make_unique<filter::HeuristicSeeder>(config.kernel.s_min),
        config, std::move(shares));
}

std::vector<DeviceShare> balanced_shares(
    const std::vector<ocl::Device*>& devices,
    std::uint64_t scratch_bytes_per_item) {
    std::vector<DeviceShare> shares;
    shares.reserve(devices.size());
    for (ocl::Device* device : devices) {
        if (device == nullptr) continue;
        const auto& profile = device->profile();
        double fraction = 0.0;
        if (scratch_bytes_per_item <= profile.private_memory_per_unit) {
            fraction = profile.ops_per_unit_per_second *
                       profile.compute_units *
                       device->utilization_for_scratch(
                           scratch_bytes_per_item);
        }
        shares.push_back({device, fraction});
    }
    return shares;
}

} // namespace repute::core
