#include "core/repute_mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace repute::core {

HeterogeneousMapper::HeterogeneousMapper(
    std::string display_name, const genomics::Reference& reference,
    const index::FmIndex& fm, std::unique_ptr<filter::Seeder> seeder,
    HeterogeneousMapperConfig config, std::vector<DeviceShare> shares)
    : name_(std::move(display_name)), reference_(&reference), fm_(&fm),
      seeder_(std::move(seeder)), config_(config) {
    if (seeder_ == nullptr) {
        throw std::invalid_argument(name_ + ": seeder must not be null");
    }
    double total = 0.0;
    for (const DeviceShare& s : shares) {
        if (s.device != nullptr && s.fraction > 0.0) {
            total += s.fraction;
            shares_.push_back(s);
        }
    }
    if (shares_.empty() || total <= 0.0) {
        throw std::invalid_argument(
            name_ + ": needs at least one device with a positive share");
    }
    for (DeviceShare& s : shares_) s.fraction /= total;
}

std::vector<std::size_t> HeterogeneousMapper::split_workload(
    std::size_t total) const {
    std::vector<std::size_t> counts(shares_.size(), 0);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i + 1 < shares_.size(); ++i) {
        counts[i] = static_cast<std::size_t>(
            static_cast<double>(total) * shares_[i].fraction);
        assigned += counts[i];
    }
    counts.back() = total - assigned;
    return counts;
}

MapResult HeterogeneousMapper::map(const genomics::ReadBatch& batch,
                                   std::uint32_t delta) {
    return config_.schedule == ScheduleMode::Dynamic
               ? map_dynamic(batch, delta)
               : map_static(batch, delta);
}

MapResult HeterogeneousMapper::map_static(const genomics::ReadBatch& batch,
                                          std::uint32_t delta) {
    MapResult result;
    result.per_read.resize(batch.size());
    if (batch.empty()) return result;

    // Per-read stage accounting; work items own disjoint slots and the
    // per-device reduction happens after all events complete.
    std::vector<StageTotals> read_stages(batch.size());

    const std::size_t n = batch.read_length;
    const std::uint64_t scratch = kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(config_.kernel.max_locations_per_read) *
        8; // packed (position, edit, strand) slot

    std::vector<ocl::Device*> devices;
    devices.reserve(shares_.size());
    for (const DeviceShare& s : shares_) devices.push_back(s.device);
    ocl::Context context(devices);

    const auto counts = split_workload(batch.size());

    // Per-device state kept alive until every event completed.
    struct DeviceWork {
        ocl::Buffer resident;       ///< reference + index image
        ocl::Buffer reads_buffer;   ///< reused across chunk launches
        ocl::Buffer output_buffer;  ///< reused across chunk launches
        std::vector<ocl::Event> events;
        /// Read range [first, second) of each event, for the per-launch
        /// stage breakdown in traces.
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
    };
    std::vector<DeviceWork> work(shares_.size());

    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceWork& dw = work[d];

        dw.resident = context.allocate(
            device,
            reference_->sequence().memory_bytes() + fm_->memory_bytes(),
            "index+reference");

        // Largest chunk whose read and output buffers fit the device
        // ceilings (quarter-of-RAM per buffer, remaining global memory
        // in total). Oversized workloads run as several kernel
        // invocations reusing the same buffers — the paper's fallback.
        const auto& profile = device.profile();
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device.allocated_bytes();
        std::uint64_t max_chunk64 = counts[d];
        max_chunk64 = std::min(max_chunk64, quarter / out_bytes_per_read);
        max_chunk64 = std::min(max_chunk64, quarter / n);
        max_chunk64 =
            std::min(max_chunk64, free_bytes / (n + out_bytes_per_read));
        if (max_chunk64 == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device.name() +
                    " cannot hold the buffers of even one read");
        }
        const auto max_chunk = static_cast<std::size_t>(max_chunk64);
        if (max_chunk < counts[d]) {
            util::logf(util::LogLevel::Info,
                       "%s: %zu reads exceed %s memory; running %zu-read "
                       "kernel invocations",
                       name_.c_str(), counts[d], device.name().c_str(),
                       max_chunk);
            if (auto* m = obs::metrics()) {
                m->counter("mapper.buffer_ceiling_splits")
                    .add((counts[d] + max_chunk - 1) / max_chunk - 1);
            }
        }

        dw.reads_buffer =
            context.allocate(device, max_chunk * n, "reads");
        dw.output_buffer = context.allocate(
            device, max_chunk * out_bytes_per_read, "mappings");

        std::size_t base = 0;
        for (std::size_t e = 0; e < d; ++e) base += counts[e];

        ocl::CommandQueue queue(device);
        std::size_t remaining = counts[d];
        while (remaining > 0) {
            const std::size_t chunk = std::min(remaining, max_chunk);
            ocl::KernelLaunch launch;
            launch.name = name_ + "::map";
            launch.n_items = chunk;
            launch.scratch_bytes_per_item = scratch;
            launch.body = [this, &batch, &result, &read_stages, base,
                           delta](std::size_t i) -> std::uint64_t {
                // Work items write disjoint slots: no synchronization.
                // One scratch per pool thread: after the first read the
                // kernel runs allocation-free on that thread.
                thread_local KernelScratch kernel_scratch;
                return map_read_workitem(*fm_, *reference_, *seeder_,
                                         batch.reads[base + i], delta,
                                         config_.kernel,
                                         result.per_read[base + i],
                                         kernel_scratch,
                                         &read_stages[base + i]);
            };
            dw.events.push_back(queue.enqueue(std::move(launch)));
            dw.ranges.emplace_back(base, base + chunk);
            base += chunk;
            remaining -= chunk;
        }
    }

    // Task-parallel completion: devices ran concurrently; the mapping
    // time is the slowest device's serial total.
    double slowest = 0.0;
    for (std::size_t d = 0; d < shares_.size(); ++d) {
        if (counts[d] == 0) continue;
        ocl::Device& device = *shares_[d].device;
        DeviceRun run;
        run.device_name = device.name();
        run.reads = counts[d];
        run.power_scale = config_.power_scale;
        double device_seconds = 0.0;
        for (std::size_t e = 0; e < work[d].events.size(); ++e) {
            const ocl::LaunchStats& stats = work[d].events[e].wait();
            device_seconds += stats.seconds;
            run.stats.items += stats.items;
            run.stats.total_ops += stats.total_ops;
            run.stats.scratch_bytes_per_item = stats.scratch_bytes_per_item;
            run.stats.utilization = stats.utilization;

            obs::StageCounters launch_stage;
            const auto [lo, hi] = work[d].ranges[e];
            for (std::size_t r = lo; r < hi; ++r) {
                launch_stage += read_stages[r];
            }
            run.stage += launch_stage;
            if (auto* recorder = obs::trace()) {
                obs::record_stage_spans(
                    *recorder, run.device_name, /*track=*/0,
                    stats.start_seconds,
                    device.profile().dispatch_overhead_seconds,
                    stats.seconds, launch_stage);
            }
        }
        run.stats.seconds = device_seconds;
        slowest = std::max(slowest, device_seconds);
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = slowest;
    return result;
}

MapResult HeterogeneousMapper::map_dynamic(const genomics::ReadBatch& batch,
                                           std::uint32_t delta) {
    MapResult result;
    result.per_read.resize(batch.size());
    if (batch.empty()) return result;

    std::vector<StageTotals> read_stages(batch.size());

    const std::size_t n = batch.read_length;
    const std::uint64_t scratch = kernel_scratch_bytes(*seeder_, n, delta);
    const std::uint64_t out_bytes_per_read =
        static_cast<std::uint64_t>(config_.kernel.max_locations_per_read) *
        8;

    // Fleet = shares whose device can run the kernel at all; the rest
    // are dropped up front (the scheduler would only quarantine them).
    std::vector<ocl::Device*> devices;
    std::vector<double> warm_start;
    for (const DeviceShare& s : shares_) {
        if (scratch > s.device->profile().private_memory_per_unit) {
            util::logf(util::LogLevel::Info,
                       "%s: dropping %s (needs %llu B scratch/item)",
                       name_.c_str(), s.device->name().c_str(),
                       static_cast<unsigned long long>(scratch));
            continue;
        }
        devices.push_back(s.device);
        warm_start.push_back(s.fraction);
    }
    if (devices.empty()) {
        throw ocl::OclError(ocl::OclStatus::OutOfResources,
                            name_ + ": no device can run this kernel");
    }

    ocl::Context context(devices);

    // Resident images plus the chunk ceiling: any chunk must fit the
    // buffer budget of EVERY device, because a failed chunk may be
    // requeued anywhere in the fleet (the paper's multi-run fallback
    // logic, applied fleet-wide).
    std::vector<ocl::Buffer> resident;
    resident.reserve(devices.size());
    std::uint64_t fleet_chunk_cap = std::numeric_limits<std::uint64_t>::max();
    for (ocl::Device* device : devices) {
        resident.push_back(context.allocate(
            *device,
            reference_->sequence().memory_bytes() + fm_->memory_bytes(),
            "index+reference"));
        const auto& profile = device->profile();
        const std::uint64_t quarter = profile.max_single_allocation();
        const std::uint64_t free_bytes =
            profile.global_memory_bytes - device->allocated_bytes();
        std::uint64_t max_chunk = quarter / out_bytes_per_read;
        max_chunk = std::min(max_chunk, quarter / n);
        max_chunk =
            std::min(max_chunk, free_bytes / (n + out_bytes_per_read));
        if (max_chunk == 0) {
            throw ocl::OclError(
                ocl::OclStatus::MemObjectAllocFail,
                name_ + ": device " + device->name() +
                    " cannot hold the buffers of even one read");
        }
        fleet_chunk_cap = std::min(fleet_chunk_cap, max_chunk);
    }

    SchedulerConfig scheduler_config = config_.scheduler;
    scheduler_config.max_chunk_items =
        scheduler_config.max_chunk_items == 0
            ? static_cast<std::size_t>(fleet_chunk_cap)
            : std::min(scheduler_config.max_chunk_items,
                       static_cast<std::size_t>(fleet_chunk_cap));

    if (auto* m = obs::metrics()) {
        m->gauge("mapper.fleet_chunk_cap")
            .set(static_cast<double>(fleet_chunk_cap));
        if (static_cast<std::size_t>(fleet_chunk_cap) < batch.size()) {
            m->counter("mapper.buffer_ceiling_splits").add();
        }
    }

    ChunkScheduler scheduler(devices, warm_start, scheduler_config);

    // Per-device read/output buffers sized to the largest planned chunk
    // and reused across chunk launches.
    std::size_t largest_chunk = 1;
    for (const ChunkRecord& c : scheduler.plan(batch.size())) {
        largest_chunk = std::max(largest_chunk, c.count);
    }
    std::vector<ocl::Buffer> chunk_buffers;
    chunk_buffers.reserve(devices.size() * 2);
    for (ocl::Device* device : devices) {
        chunk_buffers.push_back(
            context.allocate(*device, largest_chunk * n, "reads"));
        chunk_buffers.push_back(context.allocate(
            *device, largest_chunk * out_bytes_per_read, "mappings"));
    }

    // One persistent in-order queue per device: chunk launches on a
    // device chain on each other, and trace spans land on one track.
    std::map<ocl::Device*, ocl::CommandQueue> queues;
    for (ocl::Device* device : devices) {
        queues.try_emplace(device, *device);
    }

    ScheduleStats schedule = scheduler.run(
        batch.size(),
        [&](ocl::Device& device, std::size_t begin, std::size_t count) {
            ocl::KernelLaunch launch;
            launch.name = name_ + "::map-chunk";
            launch.n_items = count;
            launch.scratch_bytes_per_item = scratch;
            launch.body = [this, &batch, &result, &read_stages, begin,
                           delta](std::size_t i) -> std::uint64_t {
                // Work items own disjoint slots, and a retried chunk
                // rewrites exactly the same slots (map_read_workitem
                // clears its output and stage totals first).
                read_stages[begin + i] = StageTotals{};
                thread_local KernelScratch kernel_scratch;
                return map_read_workitem(*fm_, *reference_, *seeder_,
                                         batch.reads[begin + i], delta,
                                         config_.kernel,
                                         result.per_read[begin + i],
                                         kernel_scratch,
                                         &read_stages[begin + i]);
            };
            const ocl::LaunchStats stats =
                queues.at(&device).run(std::move(launch));
            if (auto* recorder = obs::trace()) {
                obs::StageCounters chunk_stage;
                for (std::size_t r = begin; r < begin + count; ++r) {
                    chunk_stage += read_stages[r];
                }
                obs::record_stage_spans(
                    *recorder, device.name(), /*track=*/0,
                    stats.start_seconds,
                    device.profile().dispatch_overhead_seconds,
                    stats.seconds, chunk_stage);
            }
            return stats;
        });

    for (std::size_t d = 0; d < devices.size(); ++d) {
        const DeviceScheduleStats& pd = schedule.per_device[d];
        DeviceRun run;
        run.device_name = pd.device_name;
        run.reads = pd.items;
        run.power_scale = config_.power_scale;
        run.stats = pd.stats;
        for (const ChunkRecord& c : schedule.records) {
            if (c.device != d) continue;
            for (std::size_t r = c.begin; r < c.begin + c.count; ++r) {
                run.stage += read_stages[r];
            }
        }
        result.device_runs.push_back(std::move(run));
    }
    result.mapping_seconds = schedule.makespan_seconds();
    result.schedule = std::move(schedule);
    return result;
}

std::unique_ptr<HeterogeneousMapper> make_repute(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares, HeterogeneousMapperConfig config) {
    return std::make_unique<HeterogeneousMapper>(
        "REPUTE", reference, fm,
        std::make_unique<filter::MemoryOptimizedSeeder>(
            config.kernel.s_min),
        config, std::move(shares));
}

std::unique_ptr<HeterogeneousMapper> make_coral(
    const genomics::Reference& reference, const index::FmIndex& fm,
    std::vector<DeviceShare> shares, HeterogeneousMapperConfig config) {
    config.kernel.collapse_candidates = false; // streaming verification
    return std::make_unique<HeterogeneousMapper>(
        "CORAL", reference, fm,
        std::make_unique<filter::HeuristicSeeder>(config.kernel.s_min),
        config, std::move(shares));
}

std::vector<DeviceShare> balanced_shares(
    const std::vector<ocl::Device*>& devices,
    std::uint64_t scratch_bytes_per_item) {
    std::vector<DeviceShare> shares;
    shares.reserve(devices.size());
    for (ocl::Device* device : devices) {
        if (device == nullptr) continue;
        const auto& profile = device->profile();
        double fraction = 0.0;
        if (scratch_bytes_per_item <= profile.private_memory_per_unit) {
            fraction = profile.ops_per_unit_per_second *
                       profile.compute_units *
                       device->utilization_for_scratch(
                           scratch_bytes_per_item);
        }
        shares.push_back({device, fraction});
    }
    return shares;
}

} // namespace repute::core
