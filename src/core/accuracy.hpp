#pragma once
// Accuracy protocols of the paper.
//
// §III-A (homogeneous scenario): the gold standard (RazerS3, an
// all-mapper) reports a set of locations per read; a mapper's accuracy
// is the percentage of gold locations it also reports, matching both
// position (within a tolerance window — alignments of the same site may
// differ by up to delta in their reported start) and strand.
//
// §III-B (heterogeneous/embedded scenarios): Rabema-style "any-best" —
// a read counts as correctly mapped when the mapper reports at least one
// location+strand that the gold standard also found; accuracy is the
// percentage of gold-mapped reads recovered.

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"

namespace repute::core {

struct AccuracyConfig {
    /// |position difference| tolerated when matching two mappings of the
    /// same site. The natural setting is the error budget delta.
    std::uint32_t position_tolerance = 0;
};

/// §III-A protocol. Returns a percentage in [0, 100]; 100 when the gold
/// standard reports nothing at all. Throws std::invalid_argument when
/// the two results cover different read counts.
double all_locations_accuracy(const MapResult& gold, const MapResult& test,
                              const AccuracyConfig& config);

/// §III-B protocol (Rabema any-best). Percentage of gold-mapped reads
/// for which `test` reports at least one matching location+strand.
double any_best_accuracy(const MapResult& gold, const MapResult& test,
                         const AccuracyConfig& config);

/// True when `mappings` (sorted by position) contains a mapping within
/// `tolerance` of `target` on the same strand.
bool contains_mapping(const std::vector<ReadMapping>& mappings,
                      const ReadMapping& target, std::uint32_t tolerance);

/// Any-best accuracy stratified by the gold standard's best edit
/// distance per read: out[e] = any-best accuracy over reads whose best
/// gold mapping has edit distance e (entries with no reads are -1).
/// Shows *where* a mapper loses sensitivity — typically in the highest
/// strata, where fewer seeds are error-free.
std::vector<double> stratified_any_best_accuracy(
    const MapResult& gold, const MapResult& test,
    const AccuracyConfig& config, std::uint32_t max_distance);

} // namespace repute::core
