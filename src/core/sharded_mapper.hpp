#pragma once
// Scatter-gather mapping over a sharded reference index.
//
// A monolithic index must fit every device's quarter-of-RAM allocation
// ceiling (ocl::DeviceProfile::max_single_allocation — the paper's
// OpenCL 1.2 embedded constraint), which caps the mappable reference
// size per device. ShardedMapper lifts that ceiling: the reference is
// split into K per-shard FM-indexes (index/shard_plan.hpp,
// index/rixm.hpp) and every read batch is mapped against every shard,
// with (read-chunk x shard) as the schedulable work unit. Only the
// *current shard's* image is resident per device, so peak device
// residency is one shard, not the whole reference.
//
// Output identity: each shard indexes its slice plus an overlap
// overhang into its neighbours, and its kernel runs with the ownership
// window [own_lo, own_hi) (KernelConfig::report_lo/report_hi), so a
// shard's per-read list is exactly the monolithic list restricted to
// its owned positions — candidates are filtered before verification
// and before first-n cap counting. merge_sharded_read() then rebuilds
// the monolithic generation order (forward accepts across shards in
// base order, then reverse), reapplies the cap at the same point, and
// sorts — byte-identical SAM downstream for the collapse-on (REPUTE)
// flow. The CORAL streaming flow re-verifies duplicate windows, and
// those duplicates consume monolithic cap slots before dedup; a
// cap-bound CORAL read can therefore differ — documented in DESIGN.md
// §5g.
//
// Scheduling: the static path walks shards in order per device
// (restaging the resident image between shards, double-buffered read
// chunks within a shard); the dynamic path flattens (shard, read) into
// one unit space for the work-stealing ChunkScheduler and keeps a
// per-device resident-shard affinity — a chunk whose shard is already
// resident skips the restage (shard.residency_hits), others pay it
// (shard.restages / shard.restage_bytes).

#include <memory>
#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "core/mapping.hpp"
#include "core/repute_mapper.hpp"
#include "filter/seed.hpp"
#include "genomics/sequence.hpp"
#include "index/fm_index.hpp"
#include "index/rixm.hpp"

namespace repute::core {

/// Non-owning view of one shard as the mapper consumes it. Local
/// coordinates index the shard's own text (owned slice + overhangs);
/// `text_offset` places local 0 in the concatenated reference.
struct ShardView {
    const genomics::Reference* reference = nullptr;
    const index::FmIndex* fm = nullptr;
    std::uint32_t text_offset = 0;
    std::uint32_t own_lo = 0; ///< local start of the owned range
    std::uint32_t own_hi = 0; ///< local end (exclusive)

    /// Global start of the owned range.
    std::uint32_t base() const noexcept { return text_offset + own_lo; }
    /// Device image bytes for this shard (packed text + index).
    std::uint64_t image_bytes() const noexcept {
        return reference->sequence().memory_bytes() + fm->memory_bytes();
    }
};

/// Views over an opened .rixm sharded index (which must outlive them).
std::vector<ShardView> shard_views_of(const index::ShardedIndex& index);

/// Deterministic per-read merge of per-shard mapping lists into the
/// monolithic result. Each entry of `per_shard` is one shard's kernel
/// output for the read — owned positions only, already shifted to
/// global coordinates, sorted by (position, strand) and deduplicated —
/// in shard base order. Rebuilds generation order (forward accepts
/// across shards, then reverse), truncates at `max_locations` exactly
/// where the monolithic kernel would, then sorts and deduplicates.
void merge_sharded_read(
    std::span<const std::span<const ReadMapping>> per_shard,
    std::uint32_t max_locations, std::vector<ReadMapping>& out);

class ShardedMapper final : public Mapper {
public:
    /// `shards` must be non-empty, ordered by base, and outlive the
    /// mapper (they are views). Shares behave as in HeterogeneousMapper.
    ShardedMapper(std::string display_name, std::vector<ShardView> shards,
                  std::unique_ptr<filter::Seeder> seeder,
                  HeterogeneousMapperConfig config,
                  std::vector<DeviceShare> shares);

    /// Maps the batch against every shard and merges. Throws
    /// std::invalid_argument when the shard overhangs are too small for
    /// this batch (needs overlap >= read_length + delta) — remapping
    /// with a bigger --overlap is the fix, not silent wrong output.
    MapResult map(const genomics::ReadBatch& batch,
                  std::uint32_t delta) override;

    std::string_view name() const noexcept override { return name_; }
    double power_scale() const noexcept override {
        return config_.power_scale;
    }

    std::size_t shard_count() const noexcept { return shards_.size(); }
    const HeterogeneousMapperConfig& config() const noexcept {
        return config_;
    }
    /// Largest per-shard device image — what the resident buffer holds
    /// (the per-device peak index residency).
    std::uint64_t max_image_bytes() const noexcept;

    /// Number of reads of `total` assigned to each share, in order
    /// (same arithmetic as HeterogeneousMapper::split_workload).
    std::vector<std::size_t> split_workload(std::size_t total) const;

private:
    MapResult map_static(const genomics::ReadBatch& batch,
                         std::uint32_t delta,
                         std::vector<std::vector<ReadMapping>>& slots,
                         std::vector<StageTotals>& unit_stages);
    MapResult map_dynamic(const genomics::ReadBatch& batch,
                          std::uint32_t delta,
                          std::vector<std::vector<ReadMapping>>& slots,
                          std::vector<StageTotals>& unit_stages);
    void validate_overhangs(const genomics::ReadBatch& batch,
                            std::uint32_t delta) const;
    KernelConfig shard_kernel(std::size_t shard) const;

    std::string name_;
    std::vector<ShardView> shards_;
    std::unique_ptr<filter::Seeder> seeder_;
    HeterogeneousMapperConfig config_;
    std::vector<DeviceShare> shares_;
};

/// REPUTE / CORAL factories over shard views — the sharded analogues of
/// make_repute / make_coral (same seeders, same kernel-config rules).
std::unique_ptr<ShardedMapper> make_sharded_repute(
    std::vector<ShardView> shards, std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config = {});
std::unique_ptr<ShardedMapper> make_sharded_coral(
    std::vector<ShardView> shards, std::vector<DeviceShare> shares,
    HeterogeneousMapperConfig config = {});

} // namespace repute::core
