#pragma once
// The REPUTE map kernel: filtration + verification for one read, both
// strands, expressed as an OpenCL-style work-item body.
//
// Kernel flow (paper §II): DP filtration chooses delta+1 k-mers; their
// FM-index hits become candidate diagonals; candidates are deduplicated
// and each window is verified with the Myers bit-vector kernel; accepted
// alignments are written into the first-n output slots. Candidates are
// verified directly from the diagonal list instead of materializing a
// per-read candidate table — the paper's "kernel flow modified to
// minimize the increase in memory footprint" point.
//
// Work accounting: every stage reports abstract operations, weighted so
// one unit is roughly one inner-loop step; the device model turns ops
// into modeled seconds (see ocl::Device).

#include <cstdint>
#include <span>
#include <vector>

#include "align/myers.hpp"
#include "align/myers_simd.hpp"
#include "align/prefilter.hpp"
#include "core/mapping.hpp"
#include "filter/candidates.hpp"
#include "filter/seed.hpp"
#include "genomics/sequence.hpp"
#include "index/fm_index.hpp"
#include "obs/stage_counters.hpp"

namespace repute::core {

/// Cost weights for the device time model (one unit ~ one inner-loop
/// step of the modeled kernel).
struct OpWeights {
    std::uint64_t fm_extend = 8;      ///< 2 occ queries + bookkeeping
    std::uint64_t dp_cell = 2;        ///< one DP min/add
    std::uint64_t qgram_lookup = 1;   ///< one jump-table load
    /// SA locate = base + step * (sa_sample - 1) / 2 (the average LF
    /// walk length grows with the sampling interval).
    std::uint64_t locate_base = 19;
    std::uint64_t locate_step = 14;
    std::uint64_t myers_word = 4;     ///< one 64-bit Myers column word
    /// One lane-batched Myers column word advanced across all
    /// MyersSimdEngine::kLanes candidates at once. Costlier than a
    /// scalar word (wider ALU op plus blend-based Eq lookup and
    /// bottom-row bookkeeping, ~3x measured) but amortized over 8
    /// lanes, so a full batch models ~2.5x cheaper per candidate.
    std::uint64_t simd_word = 13;
    std::uint64_t prefilter_word = 1; ///< one packed XOR/AND/popcount word
    std::uint64_t per_candidate = 48; ///< window fetch + dedup
};

struct KernelConfig {
    std::uint32_t s_min = 12;
    std::uint32_t max_locations_per_read = 100; ///< first-n output cap
    std::uint32_t max_hits_per_seed = 2048;
    /// REPUTE's modified kernel flow (true): gather candidates, collapse
    /// duplicate diagonals, verify once per window. CORAL's streaming
    /// flow (false): verify every seed hit as it comes — no cross-seed
    /// dedup, so windows shared by several seeds are re-verified; the
    /// duplicated work grows with delta+1 and is the main reason the DP
    /// filtration wins at long reads / high error budgets (§IV).
    bool collapse_candidates = true;
    /// Verification-funnel layers (DESIGN.md "Verification funnel").
    /// Each is output-neutral — mapping results are byte-identical with
    /// any combination toggled off; the toggles exist as debugging
    /// escape hatches and for before/after benchmarks.
    bool prefilter = true;           ///< bit-parallel pre-alignment reject
    bool banded_verification = true; ///< δ-banded early-exit Myers
    bool coalesce_windows = true;    ///< shared fetch of overlapping windows
    /// Lane-batched Myers verification: windows surviving the prefilter
    /// are queued, bucketed by clamped window length (so vector lanes
    /// never diverge), and verified MyersSimdEngine::kLanes at a time;
    /// partial buckets fall back to the scalar banded scan. Requires
    /// banded_verification (the engine replicates best_in_bounded);
    /// with it off this toggle is inert. Output-neutral like the other
    /// funnel layers.
    bool simd_verification = true;
    /// Ownership window for sharded mapping: only candidate diagonals in
    /// [report_lo, report_hi) are verified and reported. Shard kernels
    /// index overlapping reference slices so junction-straddling windows
    /// stay intact; the owning shard alone reports each position, and —
    /// because the filter runs *before* verification and the first-n cap
    /// counting — every shard's output list is exactly the monolithic
    /// list restricted to its owned range. Defaults cover everything
    /// (the monolithic path is untouched).
    std::uint32_t report_lo = 0;
    std::uint32_t report_hi = 0xFFFFFFFFu;
    OpWeights weights;
};

/// Per-stage accounting of one or more kernel executions: the shared
/// obs::StageCounters breakdown (filtration / locate / verify ops,
/// candidate windows) plus kernel-internal counters that only matter
/// inside the map kernel.
struct StageTotals : obs::StageCounters {
    std::uint64_t raw_hits = 0; ///< seed hits before diagonal collapse
    std::uint64_t accepted = 0; ///< mappings written (pre-merge)
    // Verification-funnel effectiveness.
    std::uint64_t prefilter_rejects = 0;  ///< windows killed before Myers
    std::uint64_t prefilter_exacts = 0;   ///< exact certificates, Myers skipped
    std::uint64_t myers_early_exits = 0;  ///< banded scans abandoned early
    std::uint64_t windows_coalesced = 0;  ///< windows sharing a fetch
    // Lane-batched verification effectiveness.
    std::uint64_t simd_batches = 0; ///< full-lane engine dispatches
    std::uint64_t simd_lanes = 0;   ///< windows verified inside batches
    std::uint64_t simd_tail = 0;    ///< partial-bucket windows gone scalar

    StageTotals& operator+=(const StageTotals& other) noexcept;
};

/// A Myers verification deferred for lane-batching: the candidate's
/// window bytes are staged in KernelScratch::simd_arena and the scan
/// result is filled in by the batched dispatch.
struct VerifyJob {
    std::uint32_t position = 0;  ///< candidate diagonal (mapping position)
    std::uint32_t arena_off = 0; ///< window start in simd_arena
    std::uint32_t win_len = 0;   ///< clamped window length (bucket key)
    std::uint32_t distance = 0;  ///< filled by dispatch
    bool early_exit = false;     ///< filled by dispatch
};

/// One would-be acceptance decision, recorded in candidate order so the
/// deferred batch results can be replayed into the output exactly where
/// the inline scalar loop would have pushed them (first-n cap
/// semantics included). job < 0 marks a prefilter exact certificate
/// (distance 0, no Myers scan).
struct VerifyDecision {
    std::uint32_t position = 0;
    std::int32_t job = -1;
};

/// Per-work-item reusable buffers: every transient the kernel needs —
/// seed plan, DP scratch, candidate set, verification window, RC codes,
/// Myers state. One KernelScratch per worker thread makes the
/// steady-state kernel allocation-free (buffers grow to the
/// read-parameter bound on the first read and are recycled after), the
/// host analogue of statically budgeted OpenCL private memory.
struct KernelScratch {
    filter::SeedPlan plan;
    filter::SeedScratch seeder;
    filter::CandidateSet candidates;
    std::vector<std::uint32_t> hits;   ///< per-seed locate buffer
    std::vector<std::uint8_t> window;  ///< candidate reference window
    std::vector<std::uint64_t> win_words; ///< 2-bit packed window (prefilter)
    std::vector<std::uint8_t> rc_codes;///< reverse-complemented read
    align::MyersMatcher matcher;
    align::Prefilter prefilter;
    // Lane-batched verification staging (simd_verification): group
    // windows land in the arena (still one fetch per coalesced group),
    // jobs/decisions record the deferred scans, and the bucket tables
    // drive the length-homogeneous dispatch. All reuse capacity — the
    // zero-allocation steady state holds with the batched path on.
    align::MyersSimdEngine simd_engine;
    std::vector<std::uint8_t> simd_arena;
    std::vector<VerifyJob> simd_jobs;
    std::vector<VerifyDecision> simd_decisions;
    std::vector<std::uint32_t> simd_job_lengths;
    std::vector<std::uint32_t> simd_order;
    std::vector<align::LengthBucket> simd_buckets;
    bool warm = false; ///< true once one read has sized the buffers
};

/// Full pipeline for one read (both strands). Fills `out` (cleared
/// first) with at most `config.max_locations_per_read` mappings sorted
/// by (position, strand), and returns the abstract ops consumed.
/// `reference` must be the sequence the `fm` index was built from.
/// When `stages` is non-null the per-stage breakdown is accumulated
/// into it (caller provides one per work-item or synchronizes).
std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                KernelScratch& scratch,
                                StageTotals* stages = nullptr);

/// Convenience overload allocating a fresh KernelScratch per call.
std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                StageTotals* stages = nullptr);

/// Static private-memory requirement per work-item for a launch with
/// these parameters (seeder scratch + verification window + Myers state
/// + dedup cache). Drives GPU occupancy and out-of-resource behavior.
/// The lane-batch staging buffers (simd_arena, jobs, decisions) are
/// host-side re-ordering scratch, not part of the modeled per-work-item
/// OpenCL private memory, so they are deliberately excluded.
std::uint64_t kernel_scratch_bytes(const filter::Seeder& seeder,
                                   std::size_t read_length,
                                   std::uint32_t delta);

} // namespace repute::core
