#include "core/report.hpp"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdio>

namespace repute::core {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
    char buffer[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    out += buffer;
}

} // namespace

std::string format_map_report(const genomics::ReadBatch& batch,
                              const MapResult& result) {
    std::string out;
    const std::size_t reads = batch.size();
    const std::size_t mapped = result.reads_mapped();
    appendf(out, "reads: %zu (length %zu), mapped %zu (%.1f%%), %llu "
                 "mappings, %.4f s modeled\n",
            reads, batch.read_length, mapped,
            reads ? 100.0 * static_cast<double>(mapped) /
                        static_cast<double>(reads)
                  : 0.0,
            static_cast<unsigned long long>(result.total_mappings()),
            result.mapping_seconds);

    // Mappings-per-read histogram: 0, 1, 2-9, 10-99, 100+.
    std::array<std::size_t, 5> histogram{};
    for (const auto& m : result.per_read) {
        const std::size_t count = m.size();
        const std::size_t bucket = count == 0   ? 0
                                   : count == 1 ? 1
                                   : count < 10 ? 2
                                   : count < 100 ? 3
                                                 : 4;
        ++histogram[bucket];
    }
    appendf(out, "mappings/read: 0:%zu  1:%zu  2-9:%zu  10-99:%zu  "
                 "100+:%zu\n",
            histogram[0], histogram[1], histogram[2], histogram[3],
            histogram[4]);

    for (const auto& run : result.device_runs) {
        appendf(out, "device %-12s %7zu reads  %.4f s  util %.2f",
                run.device_name.c_str(), run.reads, run.stats.seconds,
                run.stats.utilization);
        const auto total = run.stats.total_ops;
        if (total > 0 && run.stage.total_ops() > 0) {
            appendf(out, "  [filter %2.0f%% locate %2.0f%% verify %2.0f%%]",
                    100.0 * static_cast<double>(run.stage.filtration_ops) /
                        static_cast<double>(total),
                    100.0 * static_cast<double>(run.stage.locate_ops) /
                        static_cast<double>(total),
                    100.0 * static_cast<double>(run.stage.verify_ops) /
                        static_cast<double>(total));
        }
        out += '\n';
    }
    return out;
}

} // namespace repute::core
