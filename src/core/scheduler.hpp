#pragma once
// Dynamic chunked work-stealing scheduler for multi-device dispatch.
//
// The paper's host program (and HeterogeneousMapper's default path)
// commits each device to one contiguous slice of the read set up front;
// Fig. 3 shows how a mispredicted split turns straight into tail
// latency, and a device failing mid-batch loses its slice outright.
// This scheduler instead cuts the batch into chunks: each device's
// deque is seeded in proportion to a warm-start share (balanced_shares
// or tune_shares — the probe becomes a warm start, not a commitment),
// and a device that drains its own deque steals queued chunks from the
// most loaded peer, so fast devices absorb a slow device's backlog. A
// thief takes at most its own grain (the balance-chunk size planned for
// it), splitting the remainder back onto the victim's queue — a slow
// device stealing from a fast one cannot become the tail.
//
// Scheduling runs in *modeled* device time, not host time: because
// every simulated device executes on the same host cores, pull order is
// gated on the devices' modeled clocks (a device may take a chunk only
// while its clock is the fleet minimum), which reproduces the dispatch
// order real hardware of those speeds would exhibit. Host threads still
// overlap whenever clocks are close.
//
// Fault handling: a launch that throws OclError charges the dispatch
// overhead, and the chunk is requeued on the least-loaded surviving
// device with bounded retries. A device that fails several launches in
// a row is quarantined (its queued chunks are redistributed). When
// every device is quarantined — or a chunk exhausts its retries — the
// run fails with a clean OclError. Chunks are atomic: a failed launch
// wrote nothing, so re-running it elsewhere is always safe as long as
// work items own disjoint output slots.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ocl/device.hpp"

namespace repute::core {

struct SchedulerConfig {
    /// Fixed chunk size override; 0 = plan from the warm-start shares:
    /// each device leads with one chunk of `warm_start_commit` of its
    /// predicted share, and the rest is cut into ~`balance_chunks_per_
    /// device` smaller chunks that stealing can rebalance.
    std::size_t chunk_items = 0;
    double warm_start_commit = 0.5;
    std::size_t balance_chunks_per_device = 6;
    /// Ceiling on any chunk (callers derive it from the smallest device
    /// buffer budget so every chunk can run anywhere); 0 = unbounded.
    std::size_t max_chunk_items = 0;
    /// A chunk is requeued at most this many times before the run is
    /// declared failed.
    std::uint32_t max_chunk_retries = 3;
    /// Consecutive launch failures after which a device is quarantined.
    std::uint32_t quarantine_after = 2;
};

/// One completed chunk (reported in completion order, which depends on
/// the schedule; the union of [begin, begin+count) ranges is exactly
/// [0, total_items) with no overlap).
struct ChunkRecord {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::size_t device = 0;   ///< fleet index of the device that ran it
    std::size_t owner = 0;    ///< warm-start owner it was planned for
    std::uint32_t retries = 0;
    bool stolen = false;      ///< device != owner
};

struct DeviceScheduleStats {
    std::string device_name;
    std::size_t chunks = 0;   ///< chunks completed by this device
    std::size_t items = 0;
    std::size_t steals = 0;   ///< chunks it took from a peer's deque
    std::size_t failures = 0; ///< faulted launches observed on it
    bool quarantined = false;
    /// Modeled seconds the device was occupied (successful launches
    /// plus the dispatch overhead of failed ones). Pure execution time:
    /// queue-wait stalls live in stall_seconds, so busy / elapsed can no
    /// longer exceed 100%.
    double busy_seconds = 0.0;
    /// Modeled seconds launches sat idle waiting for wait-list
    /// dependencies (buffer staging/drain), plus the post-run drain
    /// tail the mapper adds. Elapsed device time = busy + stall.
    double stall_seconds = 0.0;
    ocl::LaunchStats stats;   ///< aggregate over its completed launches
};

struct ScheduleStats {
    std::size_t chunks = 0;
    std::size_t steals = 0;
    std::size_t retries = 0;  ///< total requeues after failures
    std::vector<DeviceScheduleStats> per_device;
    std::vector<ChunkRecord> records;

    /// Modeled wall time: devices drain in parallel, so the schedule
    /// finishes when the busiest device does (execution plus stalls).
    double makespan_seconds() const noexcept;
};

class ChunkScheduler {
public:
    /// Runs one chunk on one device; returns its modeled LaunchStats
    /// and throws OclError on a (possibly injected) launch failure.
    /// Called concurrently for different devices; a retried chunk must
    /// rewrite exactly the same outputs (disjoint per-item slots).
    using ChunkRunner = std::function<ocl::LaunchStats(
        ocl::Device&, std::size_t begin, std::size_t count)>;

    /// `devices` must be non-empty, non-null and outlive run().
    /// `warm_start` weights the initial deque assignment (normalized;
    /// empty = equal shares; size must otherwise match `devices`).
    ChunkScheduler(std::vector<ocl::Device*> devices,
                   std::vector<double> warm_start,
                   SchedulerConfig config = {});

    /// Blocking; spawns one host worker per device and completes every
    /// item of [0, total_items). Throws OclError when chunks remain
    /// after all devices were quarantined or a chunk ran out of
    /// retries; rethrows non-OclError runner exceptions verbatim.
    ScheduleStats run(std::size_t total_items, const ChunkRunner& runner);

    /// The chunk list run() will start from (for tests and for callers
    /// sizing per-chunk buffers): planned sizes honour chunk_items /
    /// warm_start_commit / max_chunk_items.
    std::vector<ChunkRecord> plan(std::size_t total_items) const;

private:
    std::vector<ocl::Device*> devices_;
    std::vector<double> warm_start_;
    SchedulerConfig config_;
};

} // namespace repute::core
