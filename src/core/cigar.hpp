#pragma once
// CIGAR annotation — the paper's announced extension ("future versions
// of REPUTE will deliver ... SAM output format", §IV).
//
// The mapping kernel reports candidate-diagonal positions and edit
// distances only (cheap, GPU-friendly). This host-side pass re-aligns
// each reported mapping with the full-traceback DP to recover the
// precise alignment start and the CIGAR string, upgrading the SAM-lite
// output to spec-level records. Cost is O(n * (n + 2*delta)) per
// mapping, paid only for the mappings actually emitted.

#include <optional>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "genomics/sequence.hpp"

namespace repute::core {

struct AnnotatedMapping {
    ReadMapping mapping;            ///< as reported by the kernel
    std::uint32_t precise_position; ///< exact 0-based alignment start
    std::string cigar;              ///< M/I/D operations
};

/// Re-aligns one mapping. Returns std::nullopt when the re-alignment
/// cannot reproduce a distance <= delta (should not happen for kernel
/// output; guards against stale results).
std::optional<AnnotatedMapping> annotate_mapping(
    const genomics::Reference& reference, const genomics::Read& read,
    const ReadMapping& mapping, std::uint32_t delta);

/// SAM export with precise positions and CIGAR strings. Unannotatable
/// mappings (see annotate_mapping) are dropped with a warning count in
/// `dropped` when non-null.
std::vector<genomics::SamRecord> to_sam_with_cigar(
    const genomics::ReadBatch& batch, const MapResult& result,
    const genomics::Reference& reference, std::uint32_t delta,
    std::size_t* dropped = nullptr);

} // namespace repute::core
