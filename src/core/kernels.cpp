#include "core/kernels.hpp"

#include <algorithm>

#include "align/myers.hpp"
#include "filter/candidates.hpp"
#include "obs/trace.hpp"
#include "util/packed_dna.hpp"

namespace repute::core {

StageTotals& StageTotals::operator+=(const StageTotals& other) noexcept {
    obs::StageCounters::operator+=(other);
    raw_hits += other.raw_hits;
    accepted += other.accepted;
    prefilter_rejects += other.prefilter_rejects;
    prefilter_exacts += other.prefilter_exacts;
    myers_early_exits += other.myers_early_exits;
    windows_coalesced += other.windows_coalesced;
    simd_batches += other.simd_batches;
    simd_lanes += other.simd_lanes;
    simd_tail += other.simd_tail;
    return *this;
}

namespace {

/// Filtration + verification of one strand's code sequence. Appends to
/// `out` until the first-n cap; accumulates per-stage ops into `stages`.
/// All transient state lives in `scratch`.
void map_strand(const index::FmIndex& fm,
                const genomics::Reference& reference,
                const filter::Seeder& seeder,
                std::span<const std::uint8_t> codes,
                genomics::Strand strand, std::uint32_t delta,
                const KernelConfig& config,
                std::vector<ReadMapping>& out, KernelScratch& scratch,
                StageTotals& stages) {
    const auto& w = config.weights;

    // --- Filtration: DP (or heuristic) seed selection.
    filter::SeedPlan& plan = scratch.plan;
    seeder.select(fm, codes, delta, plan, scratch.seeder);
    stages.filtration_ops += plan.fm_extends * w.fm_extend +
                             plan.dp_cells * w.dp_cell +
                             plan.qgram_jumps * w.qgram_lookup;

    // --- Candidate gathering: locate hits; REPUTE's modified flow also
    // collapses duplicate diagonals before verification.
    filter::CandidateConfig cand_config;
    cand_config.max_hits_per_seed = config.max_hits_per_seed;
    cand_config.collapse_diagonals = config.collapse_candidates;
    cand_config.coalesce_windows = config.coalesce_windows;
    filter::CandidateSet& candidates = scratch.candidates;
    filter::gather_candidates(fm, plan,
                              static_cast<std::uint32_t>(codes.size()),
                              delta, cand_config, candidates, scratch.hits);
    const std::uint64_t locate_cost =
        w.locate_base + w.locate_step * (fm.sa_sample() - 1) / 2;
    stages.locate_ops += candidates.located_hits * locate_cost;
    stages.verify_ops += candidates.raw_hits * w.per_candidate;
    stages.raw_hits += candidates.raw_hits;
    stages.candidates += candidates.positions.size();

    // --- Verification: three-layer funnel over each candidate window.
    // Layer 1 (prefilter) kills most false candidates with packed
    // XOR/AND/popcount words; layer 2 (banded Myers) verifies survivors
    // touching only the words inside the δ-band and bailing once the
    // decision is provably fixed; layer 3 (coalescing) lets overlapping
    // windows share one reference fetch. Every layer is output-neutral:
    // the accept decisions, distances, and order match the plain
    // best_in() loop exactly.
    align::MyersMatcher& matcher = scratch.matcher;
    // Deferred until a candidate actually reaches Myers: on workloads
    // where the prefilter settles every window (reject or exact
    // certificate) the Peq build is pure overhead.
    bool matcher_set = false;
    if (config.prefilter) {
        scratch.prefilter.set_pattern(codes);
    } else {
        matcher.set_pattern(codes);
        matcher_set = true;
    }
    const auto n = static_cast<std::uint32_t>(codes.size());
    const auto text_len = static_cast<std::uint32_t>(fm.size());
    std::vector<std::uint8_t>& window = scratch.window;
    window.reserve(n + 2 * delta);

    // Lane-batched verification: instead of scanning each surviving
    // window inline, stage its bytes and queue a VerifyJob, then
    // dispatch jobs bucketed by clamped window length so every lane of
    // a batch shares one band schedule. Decisions are replayed in
    // candidate order afterwards, so output (accept set, distances,
    // first-n cap point) is byte-identical to the inline loop. Only
    // meaningful on top of the banded scan — the engine replicates
    // best_in_bounded, not the unbounded best_in.
    const bool use_simd =
        config.simd_verification && config.banded_verification;
    std::vector<std::uint8_t>& arena = scratch.simd_arena;
    std::vector<VerifyJob>& jobs = scratch.simd_jobs;
    std::vector<VerifyDecision>& decisions = scratch.simd_decisions;
    if (use_simd) {
        arena.clear();
        jobs.clear();
        decisions.clear();
    }
    bool engine_set = false;

    const bool grouped =
        config.coalesce_windows && !candidates.groups.empty();
    if (grouped) {
        stages.windows_coalesced +=
            candidates.positions.size() - candidates.groups.size();
    }
    const std::size_t n_groups =
        grouped ? candidates.groups.size() : candidates.positions.size();

    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        if (out.size() >= config.max_locations_per_read) break; // first-n

        filter::CandidateSet::WindowGroup group;
        if (grouped) {
            group = candidates.groups[gi];
        } else {
            // Singleton fallback: the candidate's own window is the
            // group span.
            const std::uint32_t start = candidates.positions[gi];
            const std::uint32_t lo = start >= delta ? start - delta : 0;
            if (lo >= text_len) continue;
            group = {static_cast<std::uint32_t>(gi), 1, lo,
                     std::min<std::uint32_t>(n + 2 * delta,
                                             text_len - lo)};
        }

        // Both extractions are lazy: the packed words only when the
        // prefilter runs, the byte window only once a candidate
        // survives to Myers. In batched mode the byte fetch goes
        // straight into the arena (still one fetch per group) because
        // `window` is recycled before the deferred scans run.
        bool have_words = false;
        bool have_bytes = false;
        std::uint32_t group_arena_off = 0;

        for (std::uint32_t ci = 0; ci < group.count; ++ci) {
            if (out.size() >= config.max_locations_per_read) break;
            const std::uint32_t start =
                candidates.positions[group.first + ci];
            // Sharded ownership filter: drop non-owned diagonals before
            // any verification or cap accounting (see KernelConfig).
            if (start < config.report_lo || start >= config.report_hi) {
                continue;
            }
            const std::uint32_t win_lo =
                start >= delta ? start - delta : 0;
            if (win_lo >= text_len) continue;
            const std::uint32_t win_len =
                std::min<std::uint32_t>(n + 2 * delta, text_len - win_lo);
            if (win_len + delta < n) continue; // window cannot fit read
            const std::uint32_t off = win_lo - group.lo;

            bool certified_exact = false;
            if (config.prefilter) {
                if (!have_words) {
                    scratch.win_words.resize(
                        util::PackedDna::packed_word_count(group.len));
                    reference.sequence().extract_words(
                        group.lo, group.len, scratch.win_words.data());
                    have_words = true;
                }
                const bool admit = scratch.prefilter.admits(
                    scratch.win_words.data(), off, win_len, delta);
                stages.verify_ops +=
                    scratch.prefilter.last_word_ops() * w.prefilter_word;
                if (!admit) {
                    ++stages.prefilter_rejects;
                    continue;
                }
                certified_exact = scratch.prefilter.last_exact();
            }

            std::uint32_t distance;
            if (certified_exact) {
                // The prefilter found the full pattern verbatim in the
                // window: best_in() would return distance 0, so skip
                // the Myers scan entirely.
                distance = 0;
                ++stages.prefilter_exacts;
                if (use_simd) {
                    // Defer even the certain accept: decisions replay
                    // in candidate order, and an inline push here would
                    // jump the queue ahead of earlier pending jobs.
                    decisions.push_back({start, -1});
                    continue;
                }
            } else if (use_simd) {
                if (!have_bytes) {
                    group_arena_off =
                        static_cast<std::uint32_t>(arena.size());
                    arena.resize(arena.size() + group.len);
                    reference.sequence().extract(
                        group.lo, group.len,
                        arena.data() + group_arena_off);
                    have_bytes = true;
                }
                jobs.push_back(
                    {start, group_arena_off + off, win_len, 0, false});
                decisions.push_back(
                    {start, static_cast<std::int32_t>(jobs.size()) - 1});
                continue;
            } else {
                if (!have_bytes) {
                    window.resize(group.len);
                    reference.sequence().extract(group.lo, group.len,
                                                 window.data());
                    have_bytes = true;
                }
                const std::span<const std::uint8_t> text{
                    window.data() + off, win_len};
                if (!matcher_set) {
                    matcher.set_pattern(codes);
                    matcher_set = true;
                }
                if (config.banded_verification) {
                    const auto hit = matcher.best_in_bounded(text, delta);
                    if (hit.early_exit) ++stages.myers_early_exits;
                    distance = hit.distance;
                } else {
                    distance = matcher.best_in(text).distance;
                }
                stages.verify_ops += matcher.last_word_ops() * w.myers_word;
            }

            if (distance <= delta) {
                ReadMapping m;
                // Report the candidate diagonal (clamped): the
                // alignment start lies within +-delta of it, and every
                // mapper in the comparison uses the same convention, so
                // the accuracy protocols compare like with like.
                m.position = start;
                m.edit_distance = static_cast<std::uint16_t>(distance);
                m.strand = strand;
                out.push_back(m);
                ++stages.accepted;
            }
        }
    }

    if (use_simd && !jobs.empty()) {
        // --- Batched dispatch: bucket jobs by clamped window length
        // (m and δ are fixed within a strand call, so equal-length
        // windows share the whole band schedule — zero lane
        // divergence), run full batches through the engine, and hand
        // partial-bucket tails to the scalar banded scan.
        constexpr std::size_t kLanes = align::MyersSimdEngine::kLanes;
        std::vector<std::uint32_t>& lengths = scratch.simd_job_lengths;
        lengths.clear();
        for (const VerifyJob& job : jobs) lengths.push_back(job.win_len);
        align::bucket_by_length(lengths, scratch.simd_order,
                                scratch.simd_buckets);
        const std::uint8_t* texts[kLanes];
        align::MyersMatcher::BoundedHit hits[kLanes];
        for (const align::LengthBucket& bucket : scratch.simd_buckets) {
            std::uint32_t i = 0;
            while (bucket.count - i >= kLanes) {
                for (std::size_t k = 0; k < kLanes; ++k) {
                    const VerifyJob& job =
                        jobs[scratch.simd_order[bucket.first + i + k]];
                    texts[k] = arena.data() + job.arena_off;
                }
                if (!engine_set) {
                    scratch.simd_engine.set_pattern(codes);
                    engine_set = true;
                }
                scratch.simd_engine.best_in_bounded_multi(
                    texts, kLanes, bucket.length, delta, hits);
                stages.verify_ops +=
                    scratch.simd_engine.last_word_ops() * w.simd_word;
                ++stages.simd_batches;
                stages.simd_lanes += kLanes;
                for (std::size_t k = 0; k < kLanes; ++k) {
                    VerifyJob& job =
                        jobs[scratch.simd_order[bucket.first + i + k]];
                    job.distance = hits[k].distance;
                    job.early_exit = hits[k].early_exit;
                    if (job.early_exit) ++stages.myers_early_exits;
                }
                i += kLanes;
            }
            for (; i < bucket.count; ++i) {
                VerifyJob& job = jobs[scratch.simd_order[bucket.first + i]];
                const std::span<const std::uint8_t> text{
                    arena.data() + job.arena_off, job.win_len};
                if (!matcher_set) {
                    matcher.set_pattern(codes);
                    matcher_set = true;
                }
                const auto hit = matcher.best_in_bounded(text, delta);
                job.distance = hit.distance;
                job.early_exit = hit.early_exit;
                if (job.early_exit) ++stages.myers_early_exits;
                stages.verify_ops += matcher.last_word_ops() * w.myers_word;
                ++stages.simd_tail;
            }
        }
    }
    if (use_simd) {
        // --- Replay decisions in candidate order: identical pushes,
        // identical first-n cap point, as if each scan had run inline.
        for (const VerifyDecision& decision : decisions) {
            if (out.size() >= config.max_locations_per_read) break;
            const std::uint32_t distance =
                decision.job < 0
                    ? 0
                    : jobs[static_cast<std::size_t>(decision.job)].distance;
            if (distance <= delta) {
                ReadMapping m;
                m.position = decision.position;
                m.edit_distance = static_cast<std::uint16_t>(distance);
                m.strand = strand;
                out.push_back(m);
                ++stages.accepted;
            }
        }
    }
}

} // namespace

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                KernelScratch& scratch,
                                StageTotals* stages) {
    out.clear();
    StageTotals local;
    const std::uint64_t occ_words_before =
        index::FmIndex::thread_occ_words();
    map_strand(fm, reference, seeder, read.codes,
               genomics::Strand::Forward, delta, config, out, scratch,
               local);
    read.reverse_complement(scratch.rc_codes);
    map_strand(fm, reference, seeder, scratch.rc_codes,
               genomics::Strand::Reverse, delta, config, out, scratch,
               local);
    std::sort(out.begin(), out.end(),
              [](const ReadMapping& a, const ReadMapping& b) {
                  return a.position != b.position
                             ? a.position < b.position
                             : a.strand < b.strand;
              });
    // Streaming flows can verify (and accept) the same window through
    // several seeds; the host-side merge removes the duplicates.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ReadMapping& a, const ReadMapping& b) {
                              return a.position == b.position &&
                                     a.strand == b.strand;
                          }),
              out.end());
    if (stages != nullptr) *stages += local;
    if (auto* m = obs::metrics()) {
        m->histogram("kernel.candidates_per_read")
            .observe(static_cast<double>(local.candidates));
        m->counter("kernel.raw_seed_hits").add(local.raw_hits);
        m->counter("kernel.candidate_windows").add(local.candidates);
        m->counter("kernel.mappings_accepted").add(local.accepted);
        m->counter("kernel.prefilter_rejects").add(local.prefilter_rejects);
        m->counter("kernel.prefilter_exacts").add(local.prefilter_exacts);
        m->counter("kernel.myers_early_exits").add(local.myers_early_exits);
        m->counter("kernel.windows_coalesced").add(local.windows_coalesced);
        m->counter("kernel.simd_batches").add(local.simd_batches);
        if (local.simd_lanes + local.simd_tail > 0) {
            // Fraction of this read's Myers-verified windows that ran
            // inside full lane batches (the rest were partial-bucket
            // tails verified scalar). Low values mean the candidate
            // windows fragmented across many distinct clamped lengths.
            m->histogram("kernel.simd_lane_occupancy")
                .observe(static_cast<double>(local.simd_lanes) /
                         static_cast<double>(local.simd_lanes +
                                             local.simd_tail));
        }
        m->counter("index.occ_words_scanned")
            .add(index::FmIndex::thread_occ_words() - occ_words_before);
        if (scratch.warm) m->counter("kernel.scratch_reuses").add(1);
        if (local.raw_hits > 0) {
            // Diagonal-collapse effectiveness: verified windows per raw
            // seed hit (1.0 = no duplicate work removed).
            m->histogram("kernel.dedup_ratio")
                .observe(static_cast<double>(local.candidates) /
                         static_cast<double>(local.raw_hits));
        }
    }
    scratch.warm = true;
    return local.total_ops();
}

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                StageTotals* stages) {
    KernelScratch scratch;
    return map_read_workitem(fm, reference, seeder, read, delta, config,
                             out, scratch, stages);
}

std::uint64_t kernel_scratch_bytes(const filter::Seeder& seeder,
                                   std::size_t read_length,
                                   std::uint32_t delta) {
    const std::uint64_t window_bytes = read_length + 2 * delta;
    const std::uint64_t myers_words = (read_length + 63) / 64;
    const std::uint64_t myers_bytes = myers_words * 8 * (4 + 4); // Peq+state
    // Prefilter: packed pattern + packed window + one mask block and
    // its suffix array (2-bit packed words; the sliding registers and
    // running prefix live in kernel-private registers).
    const std::uint64_t packed_words = (read_length + 31) / 32;
    const std::uint64_t prefilter_bytes =
        (packed_words                      // pattern
         + (window_bytes + 31) / 32        // packed window
         + 2 * (delta + 1) * packed_words) // block + suffix
        * 8;
    const std::uint64_t dedup_cache = 64 * 4; // recent-diagonal ring
    return seeder.scratch_bound(read_length, delta) + window_bytes +
           myers_bytes + prefilter_bytes + dedup_cache +
           128 /*misc locals*/;
}

} // namespace repute::core
