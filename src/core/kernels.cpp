#include "core/kernels.hpp"

#include <algorithm>

#include "align/myers.hpp"
#include "filter/candidates.hpp"
#include "obs/trace.hpp"
#include "util/packed_dna.hpp"

namespace repute::core {

StageTotals& StageTotals::operator+=(const StageTotals& other) noexcept {
    obs::StageCounters::operator+=(other);
    raw_hits += other.raw_hits;
    accepted += other.accepted;
    prefilter_rejects += other.prefilter_rejects;
    prefilter_exacts += other.prefilter_exacts;
    myers_early_exits += other.myers_early_exits;
    windows_coalesced += other.windows_coalesced;
    return *this;
}

namespace {

/// Filtration + verification of one strand's code sequence. Appends to
/// `out` until the first-n cap; accumulates per-stage ops into `stages`.
/// All transient state lives in `scratch`.
void map_strand(const index::FmIndex& fm,
                const genomics::Reference& reference,
                const filter::Seeder& seeder,
                std::span<const std::uint8_t> codes,
                genomics::Strand strand, std::uint32_t delta,
                const KernelConfig& config,
                std::vector<ReadMapping>& out, KernelScratch& scratch,
                StageTotals& stages) {
    const auto& w = config.weights;

    // --- Filtration: DP (or heuristic) seed selection.
    filter::SeedPlan& plan = scratch.plan;
    seeder.select(fm, codes, delta, plan, scratch.seeder);
    stages.filtration_ops += plan.fm_extends * w.fm_extend +
                             plan.dp_cells * w.dp_cell +
                             plan.qgram_jumps * w.qgram_lookup;

    // --- Candidate gathering: locate hits; REPUTE's modified flow also
    // collapses duplicate diagonals before verification.
    filter::CandidateConfig cand_config;
    cand_config.max_hits_per_seed = config.max_hits_per_seed;
    cand_config.collapse_diagonals = config.collapse_candidates;
    cand_config.coalesce_windows = config.coalesce_windows;
    filter::CandidateSet& candidates = scratch.candidates;
    filter::gather_candidates(fm, plan,
                              static_cast<std::uint32_t>(codes.size()),
                              delta, cand_config, candidates, scratch.hits);
    const std::uint64_t locate_cost =
        w.locate_base + w.locate_step * (fm.sa_sample() - 1) / 2;
    stages.locate_ops += candidates.located_hits * locate_cost;
    stages.verify_ops += candidates.raw_hits * w.per_candidate;
    stages.raw_hits += candidates.raw_hits;
    stages.candidates += candidates.positions.size();

    // --- Verification: three-layer funnel over each candidate window.
    // Layer 1 (prefilter) kills most false candidates with packed
    // XOR/AND/popcount words; layer 2 (banded Myers) verifies survivors
    // touching only the words inside the δ-band and bailing once the
    // decision is provably fixed; layer 3 (coalescing) lets overlapping
    // windows share one reference fetch. Every layer is output-neutral:
    // the accept decisions, distances, and order match the plain
    // best_in() loop exactly.
    align::MyersMatcher& matcher = scratch.matcher;
    // Deferred until a candidate actually reaches Myers: on workloads
    // where the prefilter settles every window (reject or exact
    // certificate) the Peq build is pure overhead.
    bool matcher_set = false;
    if (config.prefilter) {
        scratch.prefilter.set_pattern(codes);
    } else {
        matcher.set_pattern(codes);
        matcher_set = true;
    }
    const auto n = static_cast<std::uint32_t>(codes.size());
    const auto text_len = static_cast<std::uint32_t>(fm.size());
    std::vector<std::uint8_t>& window = scratch.window;
    window.reserve(n + 2 * delta);

    const bool grouped =
        config.coalesce_windows && !candidates.groups.empty();
    if (grouped) {
        stages.windows_coalesced +=
            candidates.positions.size() - candidates.groups.size();
    }
    const std::size_t n_groups =
        grouped ? candidates.groups.size() : candidates.positions.size();

    for (std::size_t gi = 0; gi < n_groups; ++gi) {
        if (out.size() >= config.max_locations_per_read) break; // first-n

        filter::CandidateSet::WindowGroup group;
        if (grouped) {
            group = candidates.groups[gi];
        } else {
            // Singleton fallback: the candidate's own window is the
            // group span.
            const std::uint32_t start = candidates.positions[gi];
            const std::uint32_t lo = start >= delta ? start - delta : 0;
            if (lo >= text_len) continue;
            group = {static_cast<std::uint32_t>(gi), 1, lo,
                     std::min<std::uint32_t>(n + 2 * delta,
                                             text_len - lo)};
        }

        // Both extractions are lazy: the packed words only when the
        // prefilter runs, the byte window only once a candidate
        // survives to Myers.
        bool have_words = false;
        bool have_bytes = false;

        for (std::uint32_t ci = 0; ci < group.count; ++ci) {
            if (out.size() >= config.max_locations_per_read) break;
            const std::uint32_t start =
                candidates.positions[group.first + ci];
            const std::uint32_t win_lo =
                start >= delta ? start - delta : 0;
            if (win_lo >= text_len) continue;
            const std::uint32_t win_len =
                std::min<std::uint32_t>(n + 2 * delta, text_len - win_lo);
            if (win_len + delta < n) continue; // window cannot fit read
            const std::uint32_t off = win_lo - group.lo;

            bool certified_exact = false;
            if (config.prefilter) {
                if (!have_words) {
                    scratch.win_words.resize(
                        util::PackedDna::packed_word_count(group.len));
                    reference.sequence().extract_words(
                        group.lo, group.len, scratch.win_words.data());
                    have_words = true;
                }
                const bool admit = scratch.prefilter.admits(
                    scratch.win_words.data(), off, win_len, delta);
                stages.verify_ops +=
                    scratch.prefilter.last_word_ops() * w.prefilter_word;
                if (!admit) {
                    ++stages.prefilter_rejects;
                    continue;
                }
                certified_exact = scratch.prefilter.last_exact();
            }

            std::uint32_t distance;
            if (certified_exact) {
                // The prefilter found the full pattern verbatim in the
                // window: best_in() would return distance 0, so skip
                // the Myers scan entirely.
                distance = 0;
                ++stages.prefilter_exacts;
            } else {
                if (!have_bytes) {
                    window.resize(group.len);
                    reference.sequence().extract(group.lo, group.len,
                                                 window.data());
                    have_bytes = true;
                }
                const std::span<const std::uint8_t> text{
                    window.data() + off, win_len};
                if (!matcher_set) {
                    matcher.set_pattern(codes);
                    matcher_set = true;
                }
                if (config.banded_verification) {
                    const auto hit = matcher.best_in_bounded(text, delta);
                    if (hit.early_exit) ++stages.myers_early_exits;
                    distance = hit.distance;
                } else {
                    distance = matcher.best_in(text).distance;
                }
                stages.verify_ops += matcher.last_word_ops() * w.myers_word;
            }

            if (distance <= delta) {
                ReadMapping m;
                // Report the candidate diagonal (clamped): the
                // alignment start lies within +-delta of it, and every
                // mapper in the comparison uses the same convention, so
                // the accuracy protocols compare like with like.
                m.position = start;
                m.edit_distance = static_cast<std::uint16_t>(distance);
                m.strand = strand;
                out.push_back(m);
                ++stages.accepted;
            }
        }
    }
}

} // namespace

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                KernelScratch& scratch,
                                StageTotals* stages) {
    out.clear();
    StageTotals local;
    const std::uint64_t occ_words_before =
        index::FmIndex::thread_occ_words();
    map_strand(fm, reference, seeder, read.codes,
               genomics::Strand::Forward, delta, config, out, scratch,
               local);
    read.reverse_complement(scratch.rc_codes);
    map_strand(fm, reference, seeder, scratch.rc_codes,
               genomics::Strand::Reverse, delta, config, out, scratch,
               local);
    std::sort(out.begin(), out.end(),
              [](const ReadMapping& a, const ReadMapping& b) {
                  return a.position != b.position
                             ? a.position < b.position
                             : a.strand < b.strand;
              });
    // Streaming flows can verify (and accept) the same window through
    // several seeds; the host-side merge removes the duplicates.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ReadMapping& a, const ReadMapping& b) {
                              return a.position == b.position &&
                                     a.strand == b.strand;
                          }),
              out.end());
    if (stages != nullptr) *stages += local;
    if (auto* m = obs::metrics()) {
        m->histogram("kernel.candidates_per_read")
            .observe(static_cast<double>(local.candidates));
        m->counter("kernel.raw_seed_hits").add(local.raw_hits);
        m->counter("kernel.candidate_windows").add(local.candidates);
        m->counter("kernel.mappings_accepted").add(local.accepted);
        m->counter("kernel.prefilter_rejects").add(local.prefilter_rejects);
        m->counter("kernel.prefilter_exacts").add(local.prefilter_exacts);
        m->counter("kernel.myers_early_exits").add(local.myers_early_exits);
        m->counter("kernel.windows_coalesced").add(local.windows_coalesced);
        m->counter("index.occ_words_scanned")
            .add(index::FmIndex::thread_occ_words() - occ_words_before);
        if (scratch.warm) m->counter("kernel.scratch_reuses").add(1);
        if (local.raw_hits > 0) {
            // Diagonal-collapse effectiveness: verified windows per raw
            // seed hit (1.0 = no duplicate work removed).
            m->histogram("kernel.dedup_ratio")
                .observe(static_cast<double>(local.candidates) /
                         static_cast<double>(local.raw_hits));
        }
    }
    scratch.warm = true;
    return local.total_ops();
}

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                StageTotals* stages) {
    KernelScratch scratch;
    return map_read_workitem(fm, reference, seeder, read, delta, config,
                             out, scratch, stages);
}

std::uint64_t kernel_scratch_bytes(const filter::Seeder& seeder,
                                   std::size_t read_length,
                                   std::uint32_t delta) {
    const std::uint64_t window_bytes = read_length + 2 * delta;
    const std::uint64_t myers_words = (read_length + 63) / 64;
    const std::uint64_t myers_bytes = myers_words * 8 * (4 + 4); // Peq+state
    // Prefilter: packed pattern + packed window + one mask block and
    // its suffix array (2-bit packed words; the sliding registers and
    // running prefix live in kernel-private registers).
    const std::uint64_t packed_words = (read_length + 31) / 32;
    const std::uint64_t prefilter_bytes =
        (packed_words                      // pattern
         + (window_bytes + 31) / 32        // packed window
         + 2 * (delta + 1) * packed_words) // block + suffix
        * 8;
    const std::uint64_t dedup_cache = 64 * 4; // recent-diagonal ring
    return seeder.scratch_bound(read_length, delta) + window_bytes +
           myers_bytes + prefilter_bytes + dedup_cache +
           128 /*misc locals*/;
}

} // namespace repute::core
