#include "core/kernels.hpp"

#include <algorithm>

#include "align/myers.hpp"
#include "filter/candidates.hpp"
#include "obs/trace.hpp"
#include "util/packed_dna.hpp"

namespace repute::core {

StageTotals& StageTotals::operator+=(const StageTotals& other) noexcept {
    obs::StageCounters::operator+=(other);
    raw_hits += other.raw_hits;
    accepted += other.accepted;
    return *this;
}

namespace {

/// Filtration + verification of one strand's code sequence. Appends to
/// `out` until the first-n cap; accumulates per-stage ops into `stages`.
/// All transient state lives in `scratch`.
void map_strand(const index::FmIndex& fm,
                const genomics::Reference& reference,
                const filter::Seeder& seeder,
                std::span<const std::uint8_t> codes,
                genomics::Strand strand, std::uint32_t delta,
                const KernelConfig& config,
                std::vector<ReadMapping>& out, KernelScratch& scratch,
                StageTotals& stages) {
    const auto& w = config.weights;

    // --- Filtration: DP (or heuristic) seed selection.
    filter::SeedPlan& plan = scratch.plan;
    seeder.select(fm, codes, delta, plan, scratch.seeder);
    stages.filtration_ops += plan.fm_extends * w.fm_extend +
                             plan.dp_cells * w.dp_cell +
                             plan.qgram_jumps * w.qgram_lookup;

    // --- Candidate gathering: locate hits; REPUTE's modified flow also
    // collapses duplicate diagonals before verification.
    filter::CandidateConfig cand_config;
    cand_config.max_hits_per_seed = config.max_hits_per_seed;
    cand_config.collapse_diagonals = config.collapse_candidates;
    filter::CandidateSet& candidates = scratch.candidates;
    filter::gather_candidates(fm, plan,
                              static_cast<std::uint32_t>(codes.size()),
                              delta, cand_config, candidates, scratch.hits);
    const std::uint64_t locate_cost =
        w.locate_base + w.locate_step * (fm.sa_sample() - 1) / 2;
    stages.locate_ops += candidates.located_hits * locate_cost;
    stages.verify_ops += candidates.raw_hits * w.per_candidate;
    stages.raw_hits += candidates.raw_hits;
    stages.candidates += candidates.positions.size();

    // --- Verification: Myers bit-vector over each candidate window.
    align::MyersMatcher& matcher = scratch.matcher;
    matcher.set_pattern(codes);
    const auto n = static_cast<std::uint32_t>(codes.size());
    const auto text_len = static_cast<std::uint32_t>(fm.size());
    std::vector<std::uint8_t>& window = scratch.window;
    window.reserve(n + 2 * delta);

    for (const std::uint32_t start : candidates.positions) {
        if (out.size() >= config.max_locations_per_read) break; // first-n
        const std::uint32_t win_lo = start >= delta ? start - delta : 0;
        if (win_lo >= text_len) continue;
        const std::uint32_t win_len =
            std::min<std::uint32_t>(n + 2 * delta, text_len - win_lo);
        if (win_len + delta < n) continue; // window cannot fit the read

        window.resize(win_len);
        reference.sequence().extract(win_lo, win_len, window.data());
        const auto hit = matcher.best_in(window);
        stages.verify_ops += matcher.scan_cost(win_len) * w.myers_word;

        if (hit.distance <= delta) {
            ReadMapping m;
            // Report the candidate diagonal (clamped): the alignment
            // start lies within +-delta of it, and every mapper in the
            // comparison uses the same convention, so the accuracy
            // protocols compare like with like.
            m.position = start;
            m.edit_distance = static_cast<std::uint16_t>(hit.distance);
            m.strand = strand;
            out.push_back(m);
            ++stages.accepted;
        }
    }
}

} // namespace

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                KernelScratch& scratch,
                                StageTotals* stages) {
    out.clear();
    StageTotals local;
    const std::uint64_t occ_words_before =
        index::FmIndex::thread_occ_words();
    map_strand(fm, reference, seeder, read.codes,
               genomics::Strand::Forward, delta, config, out, scratch,
               local);
    read.reverse_complement(scratch.rc_codes);
    map_strand(fm, reference, seeder, scratch.rc_codes,
               genomics::Strand::Reverse, delta, config, out, scratch,
               local);
    std::sort(out.begin(), out.end(),
              [](const ReadMapping& a, const ReadMapping& b) {
                  return a.position != b.position
                             ? a.position < b.position
                             : a.strand < b.strand;
              });
    // Streaming flows can verify (and accept) the same window through
    // several seeds; the host-side merge removes the duplicates.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ReadMapping& a, const ReadMapping& b) {
                              return a.position == b.position &&
                                     a.strand == b.strand;
                          }),
              out.end());
    if (stages != nullptr) *stages += local;
    if (auto* m = obs::metrics()) {
        m->histogram("kernel.candidates_per_read")
            .observe(static_cast<double>(local.candidates));
        m->counter("kernel.raw_seed_hits").add(local.raw_hits);
        m->counter("kernel.candidate_windows").add(local.candidates);
        m->counter("kernel.mappings_accepted").add(local.accepted);
        m->counter("index.occ_words_scanned")
            .add(index::FmIndex::thread_occ_words() - occ_words_before);
        if (scratch.warm) m->counter("kernel.scratch_reuses").add(1);
        if (local.raw_hits > 0) {
            // Diagonal-collapse effectiveness: verified windows per raw
            // seed hit (1.0 = no duplicate work removed).
            m->histogram("kernel.dedup_ratio")
                .observe(static_cast<double>(local.candidates) /
                         static_cast<double>(local.raw_hits));
        }
    }
    scratch.warm = true;
    return local.total_ops();
}

std::uint64_t map_read_workitem(const index::FmIndex& fm,
                                const genomics::Reference& reference,
                                const filter::Seeder& seeder,
                                const genomics::Read& read,
                                std::uint32_t delta,
                                const KernelConfig& config,
                                std::vector<ReadMapping>& out,
                                StageTotals* stages) {
    KernelScratch scratch;
    return map_read_workitem(fm, reference, seeder, read, delta, config,
                             out, scratch, stages);
}

std::uint64_t kernel_scratch_bytes(const filter::Seeder& seeder,
                                   std::size_t read_length,
                                   std::uint32_t delta) {
    const std::uint64_t window_bytes = read_length + 2 * delta;
    const std::uint64_t myers_words = (read_length + 63) / 64;
    const std::uint64_t myers_bytes = myers_words * 8 * (4 + 4); // Peq+state
    const std::uint64_t dedup_cache = 64 * 4; // recent-diagonal ring
    return seeder.scratch_bound(read_length, delta) + window_bytes +
           myers_bytes + dedup_cache + 128 /*misc locals*/;
}

} // namespace repute::core
