#include "core/cigar.hpp"

#include <algorithm>

#include "align/edit_distance.hpp"
#include "util/packed_dna.hpp"

namespace repute::core {

std::optional<AnnotatedMapping> annotate_mapping(
    const genomics::Reference& reference, const genomics::Read& read,
    const ReadMapping& mapping, std::uint32_t delta) {
    const auto n = static_cast<std::uint32_t>(read.length());
    const auto text_len = static_cast<std::uint32_t>(reference.size());

    const std::uint32_t win_lo =
        mapping.position >= delta ? mapping.position - delta : 0;
    if (win_lo >= text_len) return std::nullopt;
    const std::uint32_t win_len =
        std::min<std::uint32_t>(n + 2 * delta, text_len - win_lo);

    const std::vector<std::uint8_t> pattern =
        mapping.strand == genomics::Strand::Reverse
            ? read.reverse_complement()
            : read.codes;
    const auto window = reference.sequence().extract(win_lo, win_len);

    const auto alignment = align::semiglobal_align(pattern, window, delta);
    if (!alignment.has_value()) return std::nullopt;

    AnnotatedMapping out;
    out.mapping = mapping;
    out.mapping.edit_distance =
        static_cast<std::uint16_t>(alignment->distance);
    out.precise_position = win_lo + alignment->text_start;
    out.cigar = alignment->cigar;
    return out;
}

std::vector<genomics::SamRecord> to_sam_with_cigar(
    const genomics::ReadBatch& batch, const MapResult& result,
    const genomics::Reference& reference, std::uint32_t delta,
    std::size_t* dropped) {
    std::vector<genomics::SamRecord> records;
    records.reserve(batch.size());
    std::size_t n_dropped = 0;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto& read = batch.reads[i];
        const auto& mappings = i < result.per_read.size()
                                   ? result.per_read[i]
                                   : std::vector<ReadMapping>{};
        if (mappings.empty()) {
            genomics::SamRecord rec;
            rec.qname = read.name;
            rec.flag = genomics::SamRecord::kFlagUnmapped;
            rec.rname = "*";
            records.push_back(std::move(rec));
            continue;
        }

        std::vector<AnnotatedMapping> annotated;
        annotated.reserve(mappings.size());
        for (const auto& m : mappings) {
            if (auto a = annotate_mapping(reference, read, m, delta)) {
                annotated.push_back(std::move(*a));
            } else {
                ++n_dropped;
            }
        }
        if (annotated.empty()) {
            genomics::SamRecord rec;
            rec.qname = read.name;
            rec.flag = genomics::SamRecord::kFlagUnmapped;
            rec.rname = "*";
            records.push_back(std::move(rec));
            continue;
        }

        const auto best = std::min_element(
            annotated.begin(), annotated.end(),
            [](const AnnotatedMapping& a, const AnnotatedMapping& b) {
                return a.mapping.edit_distance < b.mapping.edit_distance;
            });
        for (const auto& a : annotated) {
            genomics::SamRecord rec;
            rec.qname = read.name;
            rec.rname = reference.name();
            rec.pos = a.precise_position + 1; // SAM is 1-based
            rec.cigar = a.cigar;
            rec.edit_distance = a.mapping.edit_distance;
            rec.mapq = static_cast<std::uint8_t>(
                a.mapping.edit_distance == best->mapping.edit_distance
                    ? 60
                    : 0);
            if (a.mapping.strand == genomics::Strand::Reverse) {
                rec.flag |= genomics::SamRecord::kFlagReverse;
            }
            if (&a != &*best) {
                rec.flag |= genomics::SamRecord::kFlagSecondary;
            }
            rec.seq = read.to_string();
            records.push_back(std::move(rec));
        }
    }
    if (dropped != nullptr) *dropped = n_dropped;
    return records;
}

} // namespace repute::core
