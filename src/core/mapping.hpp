#pragma once
// Mapping result types and the Mapper interface every tool in the
// comparison implements (REPUTE, CORAL and the five baseline mappers).
//
// A mapping is the paper's output tuple: reference position, edit
// distance and strand (§IV: "REPUTE gives the mapping positions, edit
// distance and strand"). first-n semantics: each read stores at most
// max_locations_per_read mappings, the cap imposed by static OpenCL
// output buffers.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler.hpp"
#include "genomics/sam_lite.hpp"
#include "genomics/sequence.hpp"
#include "obs/stage_counters.hpp"
#include "ocl/device.hpp"

namespace repute::core {

struct ReadMapping {
    std::uint32_t position = 0; ///< 0-based read start on forward strand
    std::uint16_t edit_distance = 0;
    genomics::Strand strand = genomics::Strand::Forward;

    bool operator==(const ReadMapping&) const noexcept = default;
};

struct StageTotals; // kernels.hpp

/// Per-device execution record attached to a map run.
struct DeviceRun {
    std::string device_name;
    std::size_t reads = 0;
    ocl::LaunchStats stats;
    double power_scale = 1.0;
    /// Per-stage op breakdown (filtration / locate / verify) — filled by
    /// mappers that instrument their kernels (REPUTE/CORAL do).
    obs::StageCounters stage;
    /// Host-to-device bytes staged for this run (resident image + read
    /// chunks) and device-to-host bytes drained (output chunks). Counted
    /// even when the device's TransferSpec is unmodeled.
    std::uint64_t bytes_staged = 0;
    std::uint64_t bytes_drained = 0;
    /// Modeled DMA seconds (h2d + d2h) and the compute-timeline stalls
    /// transfers forced (kernel queue waits plus the final drain tail).
    /// Zero when transfers are unmodeled.
    double transfer_seconds = 0.0;
    double stall_seconds = 0.0;
};

struct MapResult {
    /// per_read[i] holds the (<= cap) mappings of read i, sorted by
    /// (position, strand).
    std::vector<std::vector<ReadMapping>> per_read;
    /// End-to-end modeled mapping time: devices run task-parallel, so
    /// this is the slowest device's total plus merge overhead.
    double mapping_seconds = 0.0;
    std::vector<DeviceRun> device_runs;
    /// Chunk-level accounting when the run used the dynamic scheduler
    /// (ScheduleMode::Dynamic); nullopt for static splits.
    std::optional<ScheduleStats> schedule;

    /// True when the run was dispatched by the dynamic work-stealing
    /// scheduler (and `schedule` holds its chunk-level accounting).
    bool used_dynamic_schedule() const noexcept {
        return schedule.has_value();
    }

    std::uint64_t total_mappings() const noexcept;
    std::size_t reads_mapped() const noexcept; ///< reads with >= 1 mapping

    /// Total bytes staged/drained across devices this run.
    std::uint64_t bytes_staged() const noexcept;
    std::uint64_t bytes_drained() const noexcept;
    /// Fraction of modeled transfer time hidden behind kernel execution:
    /// 1 - stalls/transfer, clamped to [0, 1]. A fully serialized
    /// stage+compute+drain loop scores near 0, perfect double buffering
    /// scores 1. Returns 1 when the run had no modeled transfer time.
    double transfer_overlap_ratio() const noexcept;
};

class Mapper {
public:
    virtual ~Mapper() = default;

    /// Maps every read of `batch` at edit-distance budget `delta`.
    virtual MapResult map(const genomics::ReadBatch& batch,
                          std::uint32_t delta) = 0;

    virtual std::string_view name() const noexcept = 0;

    /// Fraction of device active power this mapper draws (see
    /// energy::DeviceUsage::power_scale).
    virtual double power_scale() const noexcept { return 1.0; }
};

/// Converts a map result to SAM-lite records (primary = lowest edit
/// distance; others flagged secondary).
std::vector<genomics::SamRecord> to_sam(const genomics::ReadBatch& batch,
                                        const MapResult& result,
                                        const std::string& reference_name);

} // namespace repute::core
