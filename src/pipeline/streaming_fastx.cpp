#include "pipeline/streaming_fastx.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "pipeline/pipeline_stats.hpp"
#include "util/packed_dna.hpp"

namespace repute::pipeline {

namespace {

std::unique_ptr<std::ifstream> open_or_throw(const std::string& path) {
    auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*in) throw std::runtime_error("cannot open file: " + path);
    return in;
}

/// Class ceiling for a read of length `len` under `config`'s grid.
/// Fixed mode (read_length != 0) is handled by the callers' filters.
std::size_t class_ceiling(std::size_t len,
                          const StreamingReaderConfig& config) {
    const std::size_t grid =
        config.length_grid == 0 ? 1 : config.length_grid;
    return (len + grid - 1) / grid * grid;
}

genomics::Read make_read(const genomics::FastqRecord& record,
                         std::size_t id) {
    genomics::Read read;
    read.id = static_cast<std::uint32_t>(id);
    read.name = record.name;
    read.quality = record.quality;
    read.codes.resize(record.sequence.size());
    for (std::size_t i = 0; i < record.sequence.size(); ++i) {
        read.codes[i] = util::base_to_code(record.sequence[i]);
    }
    return read;
}

} // namespace

StreamingFastxReader::StreamingFastxReader(std::istream& in,
                                           StreamingReaderConfig config)
    : stream_(in, config.format), config_(config) {
    stats_.read_length = config_.read_length;
}

StreamingFastxReader::StreamingFastxReader(const std::string& path,
                                           StreamingReaderConfig config)
    : owned_(open_or_throw(path)),
      stream_(*owned_, config.format),
      config_(config) {
    stats_.read_length = config_.read_length;
}

bool StreamingFastxReader::next_batch(genomics::ReadBatch& out) {
    out.reads.clear();
    out.read_length = stats_.read_length;

    genomics::FastqRecord record;
    std::string error;
    while (out.reads.size() < config_.batch_size) {
        const auto status = stream_.next(record, &error);
        if (status == genomics::FastxRecordStream::Status::End) break;
        if (status == genomics::FastxRecordStream::Status::Malformed) {
            if (config_.on_malformed == OnMalformed::Fail) {
                throw std::runtime_error("record " +
                                         std::to_string(
                                             stream_.records_seen()) +
                                         ": " + error);
            }
            ++stats_.dropped_malformed;
            stats_.last_error = error;
            continue;
        }
        if (stats_.read_length == 0) {
            // First well-formed record locks the batch read length.
            stats_.read_length = record.sequence.size();
            out.read_length = stats_.read_length;
        }
        if (record.sequence.size() != stats_.read_length) {
            ++stats_.dropped_length;
            continue;
        }
        genomics::Read read;
        read.id = static_cast<std::uint32_t>(out.reads.size());
        read.name = record.name;
        read.quality = record.quality;
        read.codes.resize(record.sequence.size());
        for (std::size_t i = 0; i < record.sequence.size(); ++i) {
            read.codes[i] = util::base_to_code(record.sequence[i]);
        }
        out.reads.push_back(std::move(read));
        ++stats_.records;
    }

    if (out.reads.empty()) return false;
    ++stats_.batches;
    return true;
}

void StreamingFastxReader::flush_bucket(std::size_t ceiling) {
    auto it = buckets_.find(ceiling);
    if (it == buckets_.end()) return;
    Bucket& bucket = it->second;
    detail::hist_observe("pipeline.bucket_occupancy",
                         static_cast<double>(bucket.batch.reads.size()) /
                             static_cast<double>(config_.batch_size));
    detail::counter_add("pipeline.pad_bases", bucket.pad_bases);
    buffered_ -= bucket.batch.reads.size();
    ready_.push_back({std::move(bucket.batch), std::move(bucket.ordinals)});
    buckets_.erase(it);
}

void StreamingFastxReader::flush_oldest() {
    std::size_t oldest_key = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [key, bucket] : buckets_) {
        if (!bucket.ordinals.empty() && bucket.ordinals.front() < oldest) {
            oldest = bucket.ordinals.front();
            oldest_key = key;
        }
    }
    if (oldest != std::numeric_limits<std::uint64_t>::max()) {
        flush_bucket(oldest_key);
    }
}

bool StreamingFastxReader::next_bucket(OrderedBatch& out) {
    const std::size_t span_limit =
        config_.batch_size *
        (config_.max_deferred_batches == 0 ? 1
                                           : config_.max_deferred_batches);
    genomics::FastqRecord record;
    std::string error;
    while (ready_.empty() && !input_done_) {
        const auto status = stream_.next(record, &error);
        if (status == genomics::FastxRecordStream::Status::End) {
            input_done_ = true;
            // Flush surviving buckets oldest-record-first so downstream
            // reordering stays shallow.
            while (!buckets_.empty()) flush_oldest();
            break;
        }
        if (status == genomics::FastxRecordStream::Status::Malformed) {
            if (config_.on_malformed == OnMalformed::Fail) {
                throw std::runtime_error(
                    "record " + std::to_string(stream_.records_seen()) +
                    ": " + error);
            }
            ++stats_.dropped_malformed;
            stats_.last_error = error;
            continue;
        }
        const std::size_t len = record.sequence.size();
        if (len == 0 || (config_.read_length != 0 &&
                         len != config_.read_length)) {
            ++stats_.dropped_length;
            continue;
        }
        const std::size_t ceiling = config_.read_length != 0
                                        ? config_.read_length
                                        : class_ceiling(len, config_);
        if (classes_seen_.insert(ceiling).second) {
            stats_.length_classes = classes_seen_.size();
        }
        if (ceiling > stats_.read_length) stats_.read_length = ceiling;
        Bucket& bucket = buckets_[ceiling];
        bucket.batch.read_length = ceiling; // virtual pad: scratch size
        bucket.pad_bases += ceiling - len;  // codes stay true-length
        bucket.ordinals.push_back(next_ordinal_++);
        bucket.batch.reads.push_back(
            make_read(record, bucket.batch.reads.size()));
        ++buffered_;
        ++stats_.records;
        stats_.pad_bases += ceiling - len;
        if (bucket.batch.reads.size() >= config_.batch_size) {
            flush_bucket(ceiling);
        } else if (buffered_ > span_limit) {
            flush_oldest();
        }
    }

    if (ready_.empty()) return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    ++stats_.batches;
    return true;
}

PairedStreamingReader::PairedStreamingReader(std::istream& in1,
                                             std::istream& in2,
                                             StreamingReaderConfig config)
    : stream1_(in1, config.format),
      stream2_(in2, config.format),
      config_(config) {}

PairedStreamingReader::PairedStreamingReader(const std::string& path1,
                                             const std::string& path2,
                                             StreamingReaderConfig config)
    : owned1_(open_or_throw(path1)),
      owned2_(open_or_throw(path2)),
      stream1_(*owned1_, config.format),
      stream2_(*owned2_, config.format),
      config_(config) {}

void PairedStreamingReader::flush_bucket(std::uint64_t key) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    PairBucket& bucket = it->second;
    detail::hist_observe("pipeline.bucket_occupancy",
                         static_cast<double>(bucket.first.reads.size()) /
                             static_cast<double>(config_.batch_size));
    detail::counter_add("pipeline.pad_bases", bucket.pad_bases);
    buffered_ -= bucket.first.reads.size();
    ready_.push_back({std::move(bucket.first), std::move(bucket.second),
                      std::move(bucket.ordinals)});
    buckets_.erase(it);
}

void PairedStreamingReader::flush_oldest() {
    std::uint64_t oldest_key = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [key, bucket] : buckets_) {
        if (!bucket.ordinals.empty() && bucket.ordinals.front() < oldest) {
            oldest = bucket.ordinals.front();
            oldest_key = key;
        }
    }
    if (oldest != std::numeric_limits<std::uint64_t>::max()) {
        flush_bucket(oldest_key);
    }
}

bool PairedStreamingReader::next_bucket(OrderedPairBatch& out) {
    const std::size_t span_limit =
        config_.batch_size *
        (config_.max_deferred_batches == 0 ? 1
                                           : config_.max_deferred_batches);
    genomics::FastqRecord r1, r2;
    std::string e1, e2;
    using Status = genomics::FastxRecordStream::Status;
    while (ready_.empty() && !input_done_) {
        const auto s1 = stream1_.next(r1, &e1);
        const auto s2 = stream2_.next(r2, &e2);
        if (s1 == Status::End || s2 == Status::End) {
            if (s1 != s2) {
                throw std::runtime_error(
                    "paired inputs desynchronized: mate files yield "
                    "different record counts");
            }
            input_done_ = true;
            while (!buckets_.empty()) flush_oldest();
            break;
        }
        if (s1 == Status::Malformed || s2 == Status::Malformed) {
            // Drop the whole pair so the files stay record-synchronized.
            if (config_.on_malformed == OnMalformed::Fail) {
                const bool first_bad = s1 == Status::Malformed;
                throw std::runtime_error(
                    "record " +
                    std::to_string(first_bad ? stream1_.records_seen()
                                             : stream2_.records_seen()) +
                    (first_bad ? " (mate 1): " : " (mate 2): ") +
                    (first_bad ? e1 : e2));
            }
            ++stats_.dropped_malformed;
            stats_.last_error = s1 == Status::Malformed ? e1 : e2;
            continue;
        }
        const std::size_t len1 = r1.sequence.size();
        const std::size_t len2 = r2.sequence.size();
        if (len1 == 0 || len2 == 0 ||
            (config_.read_length != 0 &&
             (len1 != config_.read_length ||
              len2 != config_.read_length))) {
            ++stats_.dropped_length;
            continue;
        }
        const std::size_t c1 = config_.read_length != 0
                                   ? config_.read_length
                                   : class_ceiling(len1, config_);
        const std::size_t c2 = config_.read_length != 0
                                   ? config_.read_length
                                   : class_ceiling(len2, config_);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(c1) << 32) |
            static_cast<std::uint64_t>(c2);
        if (classes_seen_.insert(key).second) {
            stats_.length_classes = classes_seen_.size();
        }
        const std::size_t widest = c1 > c2 ? c1 : c2;
        if (widest > stats_.read_length) stats_.read_length = widest;
        PairBucket& bucket = buckets_[key];
        bucket.first.read_length = c1;
        bucket.second.read_length = c2;
        bucket.pad_bases += (c1 - len1) + (c2 - len2);
        bucket.ordinals.push_back(next_ordinal_++);
        bucket.first.reads.push_back(
            make_read(r1, bucket.first.reads.size()));
        bucket.second.reads.push_back(
            make_read(r2, bucket.second.reads.size()));
        ++buffered_;
        ++stats_.records; // pairs
        stats_.pad_bases += (c1 - len1) + (c2 - len2);
        if (bucket.first.reads.size() >= config_.batch_size) {
            flush_bucket(key);
        } else if (buffered_ > span_limit) {
            flush_oldest();
        }
    }

    if (ready_.empty()) return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    ++stats_.batches;
    return true;
}

} // namespace repute::pipeline
