#include "pipeline/streaming_fastx.hpp"

#include <stdexcept>

#include "util/packed_dna.hpp"

namespace repute::pipeline {

namespace {

std::unique_ptr<std::ifstream> open_or_throw(const std::string& path) {
    auto in = std::make_unique<std::ifstream>(path);
    if (!*in) throw std::runtime_error("cannot open file: " + path);
    return in;
}

} // namespace

StreamingFastxReader::StreamingFastxReader(std::istream& in,
                                           StreamingReaderConfig config)
    : stream_(in, config.format), config_(config) {
    stats_.read_length = config_.read_length;
}

StreamingFastxReader::StreamingFastxReader(const std::string& path,
                                           StreamingReaderConfig config)
    : owned_(open_or_throw(path)),
      stream_(*owned_, config.format),
      config_(config) {
    stats_.read_length = config_.read_length;
}

bool StreamingFastxReader::next_batch(genomics::ReadBatch& out) {
    out.reads.clear();
    out.read_length = stats_.read_length;

    genomics::FastqRecord record;
    std::string error;
    while (out.reads.size() < config_.batch_size) {
        const auto status = stream_.next(record, &error);
        if (status == genomics::FastxRecordStream::Status::End) break;
        if (status == genomics::FastxRecordStream::Status::Malformed) {
            if (config_.on_malformed == OnMalformed::Fail) {
                throw std::runtime_error("record " +
                                         std::to_string(
                                             stream_.records_seen()) +
                                         ": " + error);
            }
            ++stats_.dropped_malformed;
            stats_.last_error = error;
            continue;
        }
        if (stats_.read_length == 0) {
            // First well-formed record locks the batch read length.
            stats_.read_length = record.sequence.size();
            out.read_length = stats_.read_length;
        }
        if (record.sequence.size() != stats_.read_length) {
            ++stats_.dropped_length;
            continue;
        }
        genomics::Read read;
        read.id = static_cast<std::uint32_t>(out.reads.size());
        read.name = record.name;
        read.quality = record.quality;
        read.codes.resize(record.sequence.size());
        for (std::size_t i = 0; i < record.sequence.size(); ++i) {
            read.codes[i] = util::base_to_code(record.sequence[i]);
        }
        out.reads.push_back(std::move(read));
        ++stats_.records;
    }

    if (out.reads.empty()) return false;
    ++stats_.batches;
    return true;
}

} // namespace repute::pipeline
