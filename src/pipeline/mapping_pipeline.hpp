#pragma once
// Concrete mapping front-ends over the generic BatchPipeline: stream a
// FASTQ/FASTA file (or a lockstep pair of them) through one or more
// mappers into an ordered sink. These are the functions the repute CLI,
// the pipeline_throughput bench and the streaming tests call; they wire
// the reader/map/sink callbacks and keep per-worker mapper ownership at
// the caller.

#include <functional>
#include <span>

#include "core/mapping.hpp"
#include "core/paired.hpp"
#include "pipeline/batch_pipeline.hpp"
#include "pipeline/streaming_fastx.hpp"

namespace repute::pipeline {

/// Ordered single-end sink: batches arrive with consecutive `seq`
/// starting at 0, in input order.
using BatchSink = std::function<void(std::size_t seq,
                                     const genomics::ReadBatch& batch,
                                     const core::MapResult& result)>;

/// Streams `reader` through `mappers` (one map worker per mapper; each
/// worker calls only its own mapper, so mappers need not be shareable)
/// at edit budget `delta` into `sink`. Returns the stage accounting.
PipelineStats run_mapping_pipeline(StreamingFastxReader& reader,
                                   std::span<core::Mapper* const> mappers,
                                   std::uint32_t delta,
                                   const BatchSink& sink,
                                   PipelineConfig config = {});

/// A lockstep pair of mate batches (first.reads[i] pairs with
/// second.reads[i]).
struct PairedUnit {
    genomics::ReadBatch first;
    genomics::ReadBatch second;
};

using PairedSink = std::function<void(std::size_t seq,
                                      const PairedUnit& unit,
                                      const core::PairedResult& result)>;

/// Paired-end variant: `reader1`/`reader2` stream the mate files in
/// lockstep (same batch size enforced; a record-count mismatch between
/// the files throws — run with OnMalformed::Fail to keep mates
/// synchronized in the presence of malformed records).
PipelineStats run_paired_pipeline(
    StreamingFastxReader& reader1, StreamingFastxReader& reader2,
    std::span<core::PairedMapper* const> mappers, std::uint32_t delta,
    const PairedSink& sink, PipelineConfig config = {});

/// Ordered bucketed sink: buckets arrive with consecutive `seq` in
/// *dispatch* order. That is not input record order — buckets of
/// different length classes interleave — so sinks that need input
/// order replay unit.ordinals through a RecordReorderWriter.
using OrderedBatchSink = std::function<void(
    std::size_t seq, const OrderedBatch& unit,
    const core::MapResult& result)>;

/// Mixed-length variant of run_mapping_pipeline: streams length-class
/// buckets from reader.next_bucket() through the same engine. Each
/// bucket is internally uniform (read_length = class ceiling), so any
/// fixed-scratch Mapper maps it exactly like a uniform batch.
PipelineStats run_bucketed_pipeline(
    StreamingFastxReader& reader, std::span<core::Mapper* const> mappers,
    std::uint32_t delta, const OrderedBatchSink& sink,
    PipelineConfig config = {});

using OrderedPairSink = std::function<void(
    std::size_t seq, const OrderedPairBatch& unit,
    const core::PairedResult& result)>;

/// Mixed-length paired variant over a lockstep PairedStreamingReader
/// (desync detection lives in the reader).
PipelineStats run_bucketed_paired_pipeline(
    PairedStreamingReader& reader,
    std::span<core::PairedMapper* const> mappers, std::uint32_t delta,
    const OrderedPairSink& sink, PipelineConfig config = {});

} // namespace repute::pipeline
